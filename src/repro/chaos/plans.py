"""Canned fault plans the chaos suite and ``repro chaos`` run.

Three plans, each aimed at one stage of the sense→store→infer→react
pipeline; rates are high enough that a 90-second tiny-campus day fires
every armed fault kind many times, so degradation accounting has signal.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec


def _lossy_tap(seed: int) -> FaultPlan:
    """Impaired capture: drops, duplicates, reorders, skew, stalls."""
    return FaultPlan(name="lossy-tap", seed=seed, specs=(
        FaultSpec(FaultKind.TAP_DROP, rate=0.08),
        FaultSpec(FaultKind.TAP_DUPLICATE, rate=0.02),
        FaultSpec(FaultKind.TAP_REORDER, rate=0.05),
        FaultSpec(FaultKind.CLOCK_SKEW, rate=0.02, magnitude=0.25),
        FaultSpec(FaultKind.SENSOR_STALL, rate=0.05),
    ))


def _slow_store(seed: int) -> FaultPlan:
    """Struggling data store: slow and transiently failing ingest, plus
    a crashing exporter (recovered by the atomic export protocol)."""
    return FaultPlan(name="slow-store", seed=seed, specs=(
        FaultSpec(FaultKind.STORE_LATENCY, rate=0.3, magnitude=0.01),
        FaultSpec(FaultKind.STORE_TRANSIENT, rate=0.15),
        FaultSpec(FaultKind.PERSIST_TORN_WRITE, rate=0.6, limit=2),
    ))


def _flaky_switch(seed: int) -> FaultPlan:
    """Misbehaving data plane: table misses, register corruption, and
    failing mitigation installs (drives the react circuit breaker)."""
    return FaultPlan(name="flaky-switch", seed=seed, specs=(
        FaultSpec(FaultKind.SWITCH_TABLE_MISS, rate=0.15),
        FaultSpec(FaultKind.SWITCH_REGISTER_CORRUPT, rate=0.05,
                  magnitude=1_000_000),
        FaultSpec(FaultKind.SWITCH_REACT_FAIL, rate=0.6),
    ))


def _flaky_site(seed: int) -> FaultPlan:
    """Unreliable federation member: the site eventually goes dark for
    the rest of the run, and until then individual gateway calls are
    lost or answered late (drives the coordinator's quorum path)."""
    return FaultPlan(name="flaky-site", seed=seed, specs=(
        FaultSpec(FaultKind.SITE_OUTAGE, rate=0.05),
        FaultSpec(FaultKind.SITE_PARTITION, rate=0.1),
        FaultSpec(FaultKind.SITE_SLOW, rate=0.2, magnitude=5.0),
    ))


FAULT_PLANS = {
    "lossy-tap": _lossy_tap,
    "slow-store": _slow_store,
    "flaky-switch": _flaky_switch,
    "flaky-site": _flaky_site,
}


def make_fault_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build a canned plan by name (``lossy-tap`` | ``slow-store`` |
    ``flaky-switch`` | ``flaky-site``)."""
    try:
        factory = FAULT_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PLANS))
        raise KeyError(f"unknown fault plan {name!r}; one of {known}") from None
    return factory(seed)
