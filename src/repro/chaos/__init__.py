"""Deterministic fault injection + resilience for the campus pipeline.

The paper sells *continuous, lossless* capture on a production campus;
this subpackage is how the reproduction earns the adjective under
failure.  It has two halves:

* :mod:`repro.chaos.faults` — seedable :class:`FaultPlan` /
  :class:`FaultInjector`: tap packet drop/duplication/reorder, clock
  skew, sensor stalls, store latency and transient errors, torn
  persistence writes, switch table misses, register corruption, and
  failing mitigation installs.  Same seed ⇒ bit-identical schedule.
* :mod:`repro.chaos.resilience` — the recovery toolkit the platform
  wires against those faults: :func:`retry` with exponential backoff on
  an injectable clock, :class:`Deadline`, :class:`CircuitBreaker`, and
  the per-stage :class:`DegradationLedger`.

:func:`run_chaos_scenario` (lazy-loaded, heavy) drives a full pipeline
run under a named plan and returns a degradation report; ``repro
chaos`` is its CLI.
"""

from repro.chaos.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    MitigationError,
    SensorStallError,
    TapPerturbation,
    TornWriteError,
)
from repro.chaos.plans import FAULT_PLANS, make_fault_plan
from repro.chaos.resilience import (
    BreakerOpenError,
    CallableClock,
    CircuitBreaker,
    Clock,
    Deadline,
    DeadlineExceeded,
    Degradation,
    DegradationLedger,
    MonotonicClock,
    RetryPolicy,
    TransientError,
    VirtualClock,
    retry,
    retrying,
)

__all__ = [
    "FAULT_PLANS",
    "BreakerOpenError",
    "CallableClock",
    "ChaosRunReport",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DeadlineExceeded",
    "Degradation",
    "DegradationLedger",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "MitigationError",
    "MonotonicClock",
    "RetryPolicy",
    "SensorStallError",
    "TapPerturbation",
    "TornWriteError",
    "TransientError",
    "VirtualClock",
    "make_fault_plan",
    "retry",
    "retrying",
    "run_chaos_scenario",
]


def __getattr__(name):
    # run_chaos_scenario / ChaosRunReport pull in the whole platform;
    # load them on first touch so `import repro.chaos` stays light and
    # free of import cycles (capture/datastore import repro.chaos too).
    if name in ("run_chaos_scenario", "ChaosRunReport", "StageOutcome"):
        from repro.chaos import scenario
        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
