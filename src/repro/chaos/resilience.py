"""Resilience toolkit: retries, deadlines, circuit breakers, degradation.

Every policy here is driven by an injectable :class:`Clock`, so the same
code paths run against wall time in long-lived processes and against a
:class:`VirtualClock` in tests and simulations — retries back off without
real sleeping, and schedules are bit-identical across machines.  When an
:class:`~repro.core.eventbus.EventBus` is supplied, every recovery action
is published under ``resilience:*`` topics, making a chaos run auditable
from its event log alone.

The pieces compose into the platform's failure model (DESIGN.md,
"Failure model & chaos testing"):

* :func:`retry` / :func:`retrying` — bounded re-execution of transient
  failures with exponential backoff, deterministic jitter, and an
  optional overall :class:`Deadline`.
* :class:`CircuitBreaker` — closed → open → half-open protection for a
  repeatedly failing dependency (the switch react step, in this repo).
* :class:`DegradationLedger` — the per-stage graceful-degradation
  record: which pipeline stage shed what work, when, and why.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple, Type

import numpy as np


class TransientError(Exception):
    """An operation failure that may succeed if simply re-run."""


class DeadlineExceeded(Exception):
    """Raised by :meth:`Deadline.check` once the budget is spent."""


class BreakerOpenError(Exception):
    """Raised by :meth:`CircuitBreaker.call` while the breaker is open."""


# -- clocks ----------------------------------------------------------------


class Clock:
    """Time source + sleep primitive the resilience policies run on."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall-clock adapter (monotonic; immune to NTP steps)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class VirtualClock(Clock):
    """Manually advanced clock: ``sleep`` moves time, instantly.

    The default for every policy in this repo — backoff schedules cost
    zero wall time and are exactly reproducible.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias for :meth:`sleep`, for test readability."""
        self.sleep(seconds)


class CallableClock(Clock):
    """Adapts an external time source (e.g. the DES simulator's ``now``).

    ``sleep`` is a no-op unless a sleep function is supplied: advancing
    somebody else's clock is not this adapter's call to make.
    """

    def __init__(self, now_fn: Callable[[], float],
                 sleep_fn: Optional[Callable[[float], None]] = None):
        self._now_fn = now_fn
        self._sleep_fn = sleep_fn

    def now(self) -> float:
        return float(self._now_fn())

    def sleep(self, seconds: float) -> None:
        if self._sleep_fn is not None:
            self._sleep_fn(seconds)


# -- deadlines -------------------------------------------------------------


class Deadline:
    """A fixed time budget measured on a clock."""

    def __init__(self, clock: Clock, seconds: float):
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        self.clock = clock
        self.started_at = clock.now()
        self.expires_at = self.started_at + float(seconds)

    def remaining(self) -> float:
        return self.expires_at - self.clock.now()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")


# -- retry -----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``deadline_s`` bounds the whole retry loop: no backoff sleep is ever
    taken that would land past the deadline, and once it cannot fit, the
    last error is re-raised immediately (the caller sees the real
    failure, never a synthetic timeout).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1          # +/- fraction applied to each delay
    deadline_s: Optional[float] = None
    seed: int = 0                # jitter stream; fixed seed = fixed schedule

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> Iterator[float]:
        """The backoff schedule between attempts (``max_attempts - 1``)."""
        rng = np.random.default_rng(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay_s,
                        self.base_delay_s * self.multiplier ** attempt)
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)


def retry(fn: Callable[[], object], policy: Optional[RetryPolicy] = None,
          clock: Optional[Clock] = None,
          retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
          bus=None, site: str = "call"):
    """Run ``fn`` under ``policy``, backing off between transient failures.

    Non-matching exceptions propagate immediately.  When attempts or the
    deadline run out, the *last* matching error is re-raised.  With a
    ``bus``, publishes ``resilience:retry`` per backoff,
    ``resilience:retry_recovered`` on late success, and
    ``resilience:retry_exhausted`` on final failure.
    """
    policy = policy or RetryPolicy()
    clock = clock or VirtualClock()
    deadline = (Deadline(clock, policy.deadline_s)
                if policy.deadline_s is not None else None)
    schedule = policy.delays()
    attempt = 0
    while True:
        attempt += 1
        try:
            result = fn()
        except retry_on as exc:
            delay = next(schedule, None)
            out_of_time = deadline is not None and (
                deadline.expired or delay is None
                or delay > deadline.remaining())
            if delay is None or out_of_time:
                if bus is not None:
                    bus.publish("resilience:retry_exhausted", site=site,
                                attempts=attempt, error=repr(exc))
                raise
            if bus is not None:
                bus.publish("resilience:retry", site=site, attempt=attempt,
                            delay_s=delay)
            clock.sleep(delay)
        else:
            if attempt > 1 and bus is not None:
                bus.publish("resilience:retry_recovered", site=site,
                            attempts=attempt)
            return result


def retrying(policy: Optional[RetryPolicy] = None,
             clock: Optional[Clock] = None,
             retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
             bus=None, site: Optional[str] = None):
    """Decorator form of :func:`retry` for multi-argument callables."""
    def wrap(fn):
        where = site or getattr(fn, "__qualname__", "call")

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            return retry(lambda: fn(*args, **kwargs), policy=policy,
                         clock=clock, retry_on=retry_on, bus=bus, site=where)
        return inner
    return wrap


# -- circuit breaker -------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open protection for a failing dependency.

    * **closed** — calls flow; ``failure_threshold`` consecutive
      failures open the breaker.
    * **open** — calls are shed until ``recovery_s`` has elapsed.
    * **half-open** — up to ``half_open_max`` probe calls are admitted;
      one success closes the breaker, one failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, recovery_s: float = 30.0,
                 half_open_max: int = 1, clock: Optional[Clock] = None,
                 bus=None, name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_s <= 0:
            raise ValueError("recovery_s must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = float(recovery_s)
        self.half_open_max = half_open_max
        self.clock = clock or VirtualClock()
        self.bus = bus
        self.name = name
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probes = 0
        self.times_opened = 0
        self.calls_shed = 0

    def _publish(self, topic: str, **payload) -> None:
        if self.bus is not None:
            self.bus.publish(topic, breaker=self.name, **payload)

    def _transition(self, state: str) -> None:
        self._state = state
        self._publish(f"resilience:breaker_{state}")

    @property
    def state(self) -> str:
        """Current state; lazily moves open → half-open on the clock."""
        if self._state == self.OPEN and self._opened_at is not None and \
                self.clock.now() >= self._opened_at + self.recovery_s:
            self._probes = 0
            self._transition(self.HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits probes.)"""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.OPEN:
            self.calls_shed += 1
            return False
        if self._probes < self.half_open_max:
            self._probes += 1
            return True
        self.calls_shed += 1
        return False

    def record_success(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._failures = 0
            self._transition(self.CLOSED)
        elif state == self.CLOSED:
            self._failures = 0
        # success while open: stale result from before the trip; ignore

    def record_failure(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._open()
        elif state == self.CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._open()
        # failure while open: the breaker is already shedding; ignore

    def _open(self) -> None:
        self._opened_at = self.clock.now()
        self._failures = 0
        self.times_opened += 1
        self._transition(self.OPEN)

    def call(self, fn: Callable[[], object]):
        """Guarded invocation: shed when open, record the outcome."""
        if not self.allow():
            raise BreakerOpenError(f"{self.name} is open")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


# -- graceful degradation --------------------------------------------------


@dataclass
class Degradation:
    """One stage shedding work instead of failing the pipeline."""

    stage: str           # e.g. "capture", "store", "react"
    mode: str            # e.g. "shed-batch", "shed-react", "skip-log"
    reason: str
    at: float


class DegradationLedger:
    """Per-stage record of graceful degradation across a run.

    Stages call :meth:`degrade` instead of raising when they shed work;
    the ledger is what turns "it didn't crash" into an auditable claim
    about *what* was lost.  Entries publish ``resilience:degraded``.
    """

    def __init__(self, clock: Optional[Clock] = None, bus=None):
        self.clock = clock or VirtualClock()
        self.bus = bus
        self.entries: List[Degradation] = []

    def degrade(self, stage: str, mode: str, reason: str) -> Degradation:
        entry = Degradation(stage=stage, mode=mode, reason=reason,
                            at=self.clock.now())
        self.entries.append(entry)
        if self.bus is not None:
            self.bus.publish("resilience:degraded", stage=stage, mode=mode,
                            reason=reason)
        return entry

    def degraded(self, stage: Optional[str] = None) -> bool:
        if stage is None:
            return bool(self.entries)
        return any(entry.stage == stage for entry in self.entries)

    def stages(self) -> List[str]:
        seen: List[str] = []
        for entry in self.entries:
            if entry.stage not in seen:
                seen.append(entry.stage)
        return seen

    def by_stage(self) -> dict:
        out: dict = {}
        for entry in self.entries:
            out.setdefault(entry.stage, []).append(entry)
        return out
