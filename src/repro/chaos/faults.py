"""Deterministic, seedable fault injection for the capture pipeline.

A :class:`FaultPlan` names a set of :class:`FaultSpec` entries (what can
go wrong, how often, how hard); a :class:`FaultInjector` built from the
plan hands out the individual failure decisions.  Determinism is the
whole point: each fault kind draws from its own seeded substream, so a
plan with a fixed seed replays a bit-identical fault schedule for the
same pipeline run — chaos tests assert on exact event logs, not on
"something probably broke".

Instrumented layers ask the injector two questions:

* :meth:`FaultInjector.should_fire` — a per-opportunity coin flip for a
  fault kind (store ingest, switch lookup, sensor read, export write);
* :meth:`FaultInjector.perturb_packets` — the tap-level faults (drop,
  duplicate, reorder, clock skew) applied to a packet batch in one pass.

Every fired fault is appended to the injector's event log and, when a
bus is bound, published under ``chaos:<kind>`` topics.
"""

from __future__ import annotations

import copy
import enum
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.resilience import TransientError


class FaultKind(str, enum.Enum):
    """Everything this platform knows how to break on purpose."""

    TAP_DROP = "tap.drop"                      # packet lost at the tap
    TAP_DUPLICATE = "tap.duplicate"            # packet delivered twice
    TAP_REORDER = "tap.reorder"                # batch-local reordering
    CLOCK_SKEW = "tap.clock_skew"              # timestamps shifted
    SENSOR_STALL = "sensor.stall"              # sensor read stalls
    STORE_LATENCY = "store.latency"            # slow ingest
    STORE_TRANSIENT = "store.transient"        # ingest raises transiently
    PERSIST_TORN_WRITE = "persist.torn_write"  # crash mid-export
    SWITCH_TABLE_MISS = "switch.table_miss"    # lookup yields no verdict
    SWITCH_REGISTER_CORRUPT = "switch.register_corrupt"  # SRAM bit-rot
    SWITCH_REACT_FAIL = "switch.react_fail"    # mitigation install fails
    # append-only below: _KIND_STREAMS indexes are part of the replay format
    WORKER_CRASH = "parallel.worker_crash"     # parallel worker task dies
    COMPACT_CRASH = "compact.crash"            # compactor dies mid-merge
    QUEUE_STALL = "ingest.queue_stall"         # ingest queue refuses a batch
    SITE_OUTAGE = "site.outage"                # federated site goes dark
    SITE_PARTITION = "site.partition"          # one gateway call is lost
    SITE_SLOW = "site.slow"                    # gateway answers late


class SensorStallError(TransientError):
    """A sensor/tap read stalled; the read can be retried."""


class MitigationError(TransientError):
    """Installing a mitigation failed; the react step can be retried."""


class TornWriteError(TransientError):
    """A persistence write crashed mid-file.

    Transient from the orchestrator's viewpoint: the atomic export
    protocol never exposes the torn temp directory, so re-running the
    export is safe and usually succeeds.
    """


class CompactorCrashError(TransientError):
    """The background compactor died mid-compaction.

    Transient in the same sense as :class:`TornWriteError`: the
    compaction protocol publishes its output in one atomic step, so a
    crash at any earlier step leaves the input segments authoritative
    and the compaction can simply be retried.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a given rate.

    ``rate`` is the probability per opportunity (per packet for tap
    drop/duplicate, per batch for reorder/skew, per call elsewhere).
    ``magnitude`` means seconds for latency/skew faults and a counter
    delta for register corruption.  ``limit`` caps total firings.
    ``skip`` exempts the first N opportunities entirely (no rng draw),
    so ``rate=1.0, skip=k, limit=1`` addresses exactly the k-th
    opportunity — how chaos tests crash a compactor at a chosen step.
    """

    kind: FaultKind
    rate: float
    magnitude: float = 0.0
    limit: Optional[int] = None
    skip: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.skip < 0:
            raise ValueError("skip must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seedable set of armed faults."""

    name: str
    seed: int
    specs: Tuple[FaultSpec, ...]

    def __post_init__(self):
        kinds = [spec.kind for spec in self.specs]
        if len(kinds) != len(set(kinds)):
            raise ValueError(f"plan {self.name!r} arms a fault kind twice")

    def injector(self, bus=None) -> "FaultInjector":
        return FaultInjector(self, bus=bus)

    def describe(self) -> str:
        lines = [f"fault plan {self.name!r} (seed {self.seed})"]
        for spec in self.specs:
            extra = ""
            if spec.magnitude:
                extra += f" magnitude={spec.magnitude:g}"
            if spec.limit is not None:
                extra += f" limit={spec.limit}"
            lines.append(f"  {spec.kind.value:<24s} rate={spec.rate:g}{extra}")
        return "\n".join(lines)


@dataclass
class FaultEvent:
    """One fired fault (or one perturbed batch, for tap faults)."""

    seq: int
    kind: str
    detail: Dict = field(default_factory=dict)


@dataclass
class TapPerturbation:
    """Accounting for one batch through :meth:`perturb_packets`."""

    offered: int = 0      # wire packets entering the tap
    dropped: int = 0      # lost at the tap
    duplicated: int = 0   # extra copies delivered
    reordered: int = 0    # packets displaced from wire order
    skewed: int = 0       # packets with shifted timestamps


#: stable per-kind substream indexes (enum order is part of the format)
_KIND_STREAMS = {kind: index for index, kind in enumerate(FaultKind)}


class FaultInjector:
    """Hands out deterministic failure decisions for one run.

    Each armed kind owns an independent ``np.random.default_rng([seed,
    stream])`` substream, so the decision sequence at one injection site
    never depends on how calls interleave at other sites — two runs of
    the same pipeline replay the same schedule exactly.
    """

    def __init__(self, plan: FaultPlan, bus=None):
        self.plan = plan
        self.bus = bus
        self._specs: Dict[FaultKind, FaultSpec] = {
            spec.kind: spec for spec in plan.specs
        }
        self._rngs: Dict[FaultKind, np.random.Generator] = {
            kind: np.random.default_rng([plan.seed, _KIND_STREAMS[kind]])
            for kind in self._specs
        }
        self._seq = itertools.count(1)
        self.events: List[FaultEvent] = []
        self.fired: Dict[FaultKind, int] = {k: 0 for k in self._specs}
        self.opportunities: Dict[FaultKind, int] = {k: 0 for k in self._specs}

    def bind_bus(self, bus) -> None:
        """Attach a bus after construction (the platform binds its own)."""
        if self.bus is None:
            self.bus = bus

    # -- decisions ---------------------------------------------------------

    def armed(self, kind: FaultKind) -> bool:
        return kind in self._specs

    def magnitude(self, kind: FaultKind) -> float:
        spec = self._specs.get(kind)
        return spec.magnitude if spec is not None else 0.0

    def _exhausted(self, spec: FaultSpec) -> bool:
        return spec.limit is not None and self.fired[spec.kind] >= spec.limit

    def _record(self, kind: FaultKind, count: int = 1, **detail) -> None:
        self.fired[kind] += count
        event = FaultEvent(seq=next(self._seq), kind=kind.value,
                           detail=dict(detail))
        self.events.append(event)
        if self.bus is not None:
            self.bus.publish(f"chaos:{kind.value}", seq=event.seq, **detail)

    def should_fire(self, kind: FaultKind, **detail) -> bool:
        """Per-opportunity decision for ``kind``; logs when it fires."""
        spec = self._specs.get(kind)
        if spec is None:
            return False
        self.opportunities[kind] += 1
        if self.opportunities[kind] <= spec.skip:
            return False
        if self._exhausted(spec):
            return False
        if self._rngs[kind].random() >= spec.rate:
            return False
        self._record(kind, **detail)
        return True

    def corruption_site(self, shape: Sequence[int]) -> Tuple[int, ...]:
        """Deterministic register coordinates for a corruption fault."""
        rng = self._rngs[FaultKind.SWITCH_REGISTER_CORRUPT]
        return tuple(int(rng.integers(0, dim)) for dim in shape)

    # -- tap faults --------------------------------------------------------

    def _mask(self, kind: FaultKind, n: int) -> Optional[np.ndarray]:
        """Per-packet fire mask for ``kind``, honoring the firing limit."""
        spec = self._specs.get(kind)
        if spec is None or n == 0:
            return None
        seen = self.opportunities[kind]
        self.opportunities[kind] += n
        if self._exhausted(spec):
            return None
        skip_left = max(0, spec.skip - seen)
        if skip_left >= n:
            return None
        mask = self._rngs[kind].random(n) < spec.rate
        if skip_left:
            mask[:skip_left] = False
        if spec.limit is not None:
            headroom = spec.limit - self.fired[kind]
            hits = np.flatnonzero(mask)
            if len(hits) > headroom:
                mask[hits[headroom:]] = False
        return mask if mask.any() else None

    def perturb_packets(self, packets: List) -> Tuple[List, TapPerturbation]:
        """Apply the armed tap faults to one batch, in wire order.

        Order of operations: drop → duplicate → clock skew → reorder.
        Mutated packets (skewed timestamps) and duplicates are copies —
        the originals may be shared with other packet observers.
        """
        stats = TapPerturbation(offered=len(packets))
        if not packets:
            return packets, stats
        out = packets

        mask = self._mask(FaultKind.TAP_DROP, len(out))
        if mask is not None:
            out = [p for p, dead in zip(out, mask) if not dead]
            stats.dropped = int(mask.sum())
            self._record(FaultKind.TAP_DROP, count=stats.dropped,
                         dropped=stats.dropped, offered=stats.offered)
            if not out:
                return out, stats

        mask = self._mask(FaultKind.TAP_DUPLICATE, len(out))
        if mask is not None:
            duplicated = []
            for packet, dup in zip(out, mask):
                duplicated.append(packet)
                if dup:
                    duplicated.append(copy.copy(packet))
            stats.duplicated = int(mask.sum())
            out = duplicated
            self._record(FaultKind.TAP_DUPLICATE, count=stats.duplicated,
                         duplicated=stats.duplicated)

        if self.should_fire(FaultKind.CLOCK_SKEW, batch=len(out)):
            skew = self.magnitude(FaultKind.CLOCK_SKEW)
            skewed = []
            for packet in out:
                shifted = copy.copy(packet)
                shifted.timestamp += skew
                skewed.append(shifted)
            out = skewed
            stats.skewed = len(out)

        if len(out) > 1 and self.should_fire(FaultKind.TAP_REORDER,
                                             batch=len(out)):
            rng = self._rngs[FaultKind.TAP_REORDER]
            width = int(rng.integers(2, min(8, len(out)) + 1))
            start = int(rng.integers(0, len(out) - width + 1))
            out = list(out)
            out[start:start + width] = reversed(out[start:start + width])
            stats.reordered = width

        return out, stats

    # -- audit -------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return {kind.value: n for kind, n in self.fired.items()}

    def signature(self) -> str:
        """Digest of the full event log; equal signatures = equal runs."""
        payload = json.dumps(
            [[e.seq, e.kind, sorted(e.detail.items())] for e in self.events],
            default=str, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {
            kind.value: {"fired": self.fired[kind],
                         "opportunities": self.opportunities[kind]}
            for kind in self._specs
        }
