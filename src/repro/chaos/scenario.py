"""Run a full pipeline scenario under a named fault plan.

The chaos runner is the ``repro chaos`` CLI's engine and the e2e chaos
suite's harness: it builds an instrumented campus with a
:class:`~repro.chaos.faults.FaultInjector` wired through every layer,
collects an attack day, develops a small tool, closes the fast control
loop, and round-trips the store through persistence — all while the
plan fires faults — then reports what degraded and what recovered.

The contract the chaos suite asserts: the runner always produces a
:class:`ChaosRunReport` (no injected fault may escape as an exception),
degradation is *flagged* rather than hidden, and a fixed plan seed
replays a bit-identical ``chaos:*`` event schedule.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.chaos.faults import FaultKind, FaultPlan, TornWriteError
from repro.chaos.plans import make_fault_plan
from repro.chaos.resilience import CircuitBreaker, RetryPolicy, \
    VirtualClock, retry

#: the positive class the canned scenario develops a detector for
_POSITIVE_CLASS = "ddos-dns-amp"


@dataclass
class StageOutcome:
    """What one pipeline stage experienced under the plan."""

    stage: str
    degraded: bool
    detail: Dict = field(default_factory=dict)


@dataclass
class ChaosRunReport:
    """Degradation report for one chaos scenario run."""

    plan: str
    seed: int
    profile: str
    duration_s: float
    completed: bool                      # the loop still produced a report
    signature: str                       # digest of the fault event log
    fault_counts: Dict[str, int]
    stages: List[StageOutcome]
    chaos_events: int
    resilience_events: int
    dead_letters: int
    notes: List[str] = field(default_factory=list)

    def degraded(self, stage: Optional[str] = None) -> bool:
        if stage is None:
            return any(s.degraded for s in self.stages)
        return any(s.stage == stage and s.degraded for s in self.stages)

    def stage(self, name: str) -> StageOutcome:
        for outcome in self.stages:
            if outcome.stage == name:
                return outcome
        raise KeyError(f"no stage {name!r} in report")

    def to_dict(self) -> Dict:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "profile": self.profile,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "signature": self.signature,
            "fault_counts": self.fault_counts,
            "stages": [{"stage": s.stage, "degraded": s.degraded,
                        "detail": s.detail} for s in self.stages],
            "chaos_events": self.chaos_events,
            "resilience_events": self.resilience_events,
            "dead_letters": self.dead_letters,
            "notes": self.notes,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def render(self) -> str:
        lines = [
            f"chaos run: plan={self.plan} seed={self.seed} "
            f"profile={self.profile} duration={self.duration_s:g}s",
            f"fault schedule signature: {self.signature}",
            f"events: {self.chaos_events} chaos, "
            f"{self.resilience_events} resilience, "
            f"{self.dead_letters} dead-lettered",
            "",
            "injected faults:",
        ]
        if self.fault_counts:
            for kind, count in sorted(self.fault_counts.items()):
                lines.append(f"  {kind:<24s} fired {count}")
        else:
            lines.append("  (none fired)")
        lines += ["", f"{'stage':<12s} {'degraded':<9s} detail"]
        for outcome in self.stages:
            detail = ", ".join(f"{k}={v}" for k, v in
                               sorted(outcome.detail.items()))
            flag = "yes" if outcome.degraded else "no"
            lines.append(f"{outcome.stage:<12s} {flag:<9s} {detail}")
        for note in self.notes:
            lines.append(f"note: {note}")
        verdict = "DEGRADED-BUT-ALIVE" if self.degraded() else "CLEAN"
        if not self.completed:
            verdict = "INCOMPLETE"
        lines += ["", f"verdict: {verdict} "
                      f"(report produced: {self.completed})"]
        return "\n".join(lines)


def _fmt(value: float) -> float:
    return round(float(value), 4)


def run_chaos_scenario(plan: Union[str, FaultPlan], profile: str = "tiny",
                       seed: int = 0, duration_s: float = 90.0,
                       export_dir: Optional[Union[str, Path]] = None) \
        -> ChaosRunReport:
    """Exercise capture → store → develop → control loop → persistence
    under ``plan``; return the degradation report.

    Heavy imports happen here, not at module import time, so the chaos
    package stays cheap to import.
    """
    from repro.core import CampusPlatform, DevelopmentLoop, \
        ControlLoopHarness, PlatformConfig
    from repro.datastore import export_store, import_store
    from repro.events import make_scenario

    if isinstance(plan, str):
        plan = make_fault_plan(plan, seed=seed)
    injector = plan.injector()
    platform = CampusPlatform(
        PlatformConfig(campus_profile=profile, seed=seed),
        fault_injector=injector)
    bus = platform.bus
    stages: List[StageOutcome] = []
    notes: List[str] = []
    completed = True

    # -- capture + store: collect one attack day under faults -------------
    collection = platform.collect(make_scenario("ddos", duration_s),
                                  seed=seed)
    stats = platform.capture.stats
    stages.append(StageOutcome(
        stage="capture",
        degraded=bool(stats.packets_fault_dropped or stats.packets_skewed
                      or platform.tap.batches_shed),
        detail={
            "fault_dropped": stats.packets_fault_dropped,
            "fault_drop_rate": _fmt(stats.fault_drop_rate),
            "duplicated": stats.packets_duplicated,
            "reordered": stats.packets_reordered,
            "skewed": stats.packets_skewed,
            "stalls": platform.tap.stalls,
            "batches_shed": platform.tap.batches_shed,
            "captured": collection.packets_captured,
        }))
    stages.append(StageOutcome(
        stage="store",
        degraded=platform.degradation.degraded("store"),
        detail={
            "transient_errors": platform.store.transient_errors,
            "injected_latency_s": _fmt(platform.store.injected_latency_s),
            "batches_shed": sum(1 for e in platform.degradation.entries
                                if e.stage == "store"),
            "records": platform.store.count("packets"),
        }))
    stages.append(StageOutcome(
        stage="sensors",
        degraded=platform.degradation.degraded("sensors"),
        detail={
            "logs_stored": platform.store.count("logs"),
            "records_shed": sum(1 for e in platform.degradation.entries
                                if e.stage == "sensors"),
        }))

    # -- develop a small tool off the (possibly degraded) store -----------
    tool = None
    try:
        dataset = platform.build_dataset()
        if _POSITIVE_CLASS in dataset.class_names:
            loop = DevelopmentLoop(teacher_name="tree",
                                   student_max_depth=3)
            tool, _ = loop.develop(dataset.binarize(_POSITIVE_CLASS),
                                   tool_name=f"chaos-{plan.name}",
                                   seed=seed)
        else:
            notes.append(f"no {_POSITIVE_CLASS!r} windows survived the "
                         f"faults; control loop skipped")
    except Exception as exc:   # degraded input may break training
        notes.append(f"development degraded: {exc!r}")

    # -- fast control loop under faults ------------------------------------
    control_detail: Dict = {}
    control_degraded = False
    if tool is not None:
        try:
            harness = ControlLoopHarness(
                tool, lambda s: make_scenario("ddos", duration_s),
                lambda s: platform.fresh_network(s),
                fault_injector=injector, bus=bus)
            live = harness.run(seed=seed + 1)
            control_detail = dict(live.resilience)
            control_detail["detections"] = live.detections
            control_detail["attack_admitted"] = _fmt(
                live.attack_admitted_fraction)
            control_degraded = live.degraded
        except Exception as exc:
            completed = False
            notes.append(f"control loop failed to report: {exc!r}")
    stages.append(StageOutcome(stage="control", degraded=control_degraded,
                               detail=control_detail))

    # -- persistence: atomic export under torn-write faults ----------------
    persist_detail: Dict = {}
    persist_degraded = False
    target = Path(export_dir) if export_dir is not None else \
        Path(tempfile.mkdtemp(prefix="repro-chaos-")) / "store"
    try:
        retry(lambda: export_store(platform.store, target,
                                   fault_injector=injector),
              policy=RetryPolicy(max_attempts=5, base_delay_s=0.01),
              clock=VirtualClock(), retry_on=(TornWriteError,), bus=bus,
              site="persistence.export")
        restored = import_store(target)
        persist_detail["round_trip_records"] = restored.count("packets")
    except Exception as exc:
        persist_degraded = True
        notes.append(f"persistence degraded: {exc!r}")
    finally:
        persist_detail["export_crashes"] = \
            injector.fired.get(FaultKind.PERSIST_TORN_WRITE, 0)
        if export_dir is None:
            shutil.rmtree(target.parent, ignore_errors=True)
    persist_degraded = persist_degraded or \
        injector.fired.get(FaultKind.PERSIST_TORN_WRITE, 0) > 0
    stages.append(StageOutcome(stage="persistence",
                               degraded=persist_degraded,
                               detail=persist_detail))

    chaos_events = sum(1 for t in bus.topics_seen()
                       if t.startswith("chaos:"))
    resilience_events = sum(1 for t in bus.topics_seen()
                            if t.startswith("resilience:"))
    return ChaosRunReport(
        plan=plan.name,
        seed=plan.seed,
        profile=profile,
        duration_s=duration_s,
        completed=completed,
        signature=injector.signature(),
        fault_counts=injector.counts(),
        stages=stages,
        chaos_events=chaos_events,
        resilience_events=resilience_events,
        dead_letters=bus.dead_letter_count,
        notes=notes,
    )
