"""Bottom-up vs top-down researcher workflow cost model.

§2 contrasts today's bottom-up workflow — design an experiment,
collect, extract, notice the features are wrong, repeat — with the
top-down workflow a populated data store allows, where every feature
iteration is just another query.  Experiment E10 measures both on the
same task; this module supplies the cost accounting.

Costs are expressed in *campus-days of data collection* plus measured
compute seconds, because wall-clock collection time is the quantity
the paper argues dominates researchers' time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class IterationCost:
    """Cost of one complete feature-engineering campaign."""

    iterations: int
    collection_runs: int          # how many times traffic was (re)captured
    collection_days: float        # simulated days of traffic gathered
    compute_seconds: float        # actual featurize+train time
    notes: str = ""

    @property
    def dominated_by_collection(self) -> bool:
        return self.collection_runs > 1


def bottom_up_iteration_cost(iterations: int, day_length_s: float,
                             compute_seconds: float) -> IterationCost:
    """Ad-hoc workflow: every iteration re-runs collection."""
    return IterationCost(
        iterations=iterations,
        collection_runs=iterations,
        collection_days=iterations * day_length_s / 86_400.0,
        compute_seconds=compute_seconds,
        notes="each feature change triggered a new measurement experiment",
    )


def top_down_iteration_cost(iterations: int, day_length_s: float,
                            compute_seconds: float) -> IterationCost:
    """Data-store workflow: collect once, query forever."""
    return IterationCost(
        iterations=iterations,
        collection_runs=1,
        collection_days=day_length_s / 86_400.0,
        compute_seconds=compute_seconds,
        notes="all iterations re-queried the existing data store",
    )
