"""Static-threshold detection — the pre-ML operator playbook.

A :class:`ThresholdDetector` is a tiny hand-written rule set over the
same window features the learned models consume, so comparisons are
apples-to-apples.  It also satisfies the ``predict`` interface, which
lets the rest of the pipeline (switch compiler included — thresholds
are trivially compilable) treat it as a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.learning.features import FEATURE_NAMES


@dataclass
class ThresholdRule:
    """fire when feature >= threshold (or <= when inverted)."""

    feature: str
    threshold: float
    invert: bool = False

    def fires(self, vector: Sequence[float],
              feature_index: Dict[str, int]) -> bool:
        value = vector[feature_index[self.feature]]
        return value <= self.threshold if self.invert \
            else value >= self.threshold


class ThresholdDetector:
    """AND-combined threshold rules -> binary verdict.

    The default rule set is the classic DNS-amplification playbook:
    high inbound DNS response share plus a lopsided in/out byte ratio.
    """

    def __init__(self, rules: Optional[List[ThresholdRule]] = None,
                 feature_names: Optional[List[str]] = None):
        self.feature_names = list(feature_names or FEATURE_NAMES)
        self._index = {name: i for i, name in enumerate(self.feature_names)}
        self.rules = rules if rules is not None else [
            ThresholdRule("dns_fraction", 0.8),
            ThresholdRule("bytes_in_out_ratio", 20.0),
            ThresholdRule("pkt_rate", 50.0),
        ]
        for rule in self.rules:
            if rule.feature not in self._index:
                raise KeyError(f"unknown feature {rule.feature!r}")
        self.n_classes_ = 2

    def fit(self, X, y):
        """No-op: thresholds are hand-tuned, that is the point."""
        return self

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.zeros(len(X), dtype=int)
        for i, row in enumerate(X):
            out[i] = int(all(rule.fires(row, self._index)
                             for rule in self.rules))
        return out

    def predict_proba(self, X) -> np.ndarray:
        pred = self.predict(X)
        proba = np.zeros((len(pred), 2))
        proba[np.arange(len(pred)), pred] = 1.0
        return proba
