"""Sampled NetFlow instead of full-packet capture.

Most campuses run 1:N packet-sampled NetFlow today.  The sampler
thins the packet stream deterministically-pseudo-randomly, discards
payloads (NetFlow has none), and the featurizer then sees only the
sampled, payload-less stream — experiment E11 sweeps N and watches
detection quality decay, quantifying what §5's full-capture proposal
buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.netsim.packets import PacketRecord


class NetFlowSampler:
    """1:N pseudo-random packet sampling with payload removal."""

    def __init__(self, sampling_rate: int = 1, seed: int = 0):
        if sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1 (1 = keep all)")
        self.sampling_rate = int(sampling_rate)
        self.rng = np.random.default_rng(seed)
        self.packets_seen = 0
        self.packets_kept = 0

    def sample(self, packets: Iterable[PacketRecord]) -> List[PacketRecord]:
        kept: List[PacketRecord] = []
        for packet in packets:
            self.packets_seen += 1
            if self.sampling_rate == 1 or \
                    self.rng.integers(self.sampling_rate) == 0:
                self.packets_kept += 1
                packet.payload = b""     # NetFlow carries no payload
                kept.append(packet)
        return kept


def sampled_dataset(packets: List[PacketRecord], ground_truth,
                    sampling_rate: int, window_s: float = 5.0,
                    class_names: Optional[List[str]] = None,
                    seed: int = 0,
                    scale_counts: bool = True):
    """Featurize a 1:N-sampled view of a packet list.

    ``scale_counts`` multiplies count/byte features back up by N (the
    standard NetFlow estimator), so models trained on full capture are
    at least seeing comparable magnitudes.
    """
    sampler = NetFlowSampler(sampling_rate, seed=seed)
    kept = sampler.sample(list(packets))
    featurizer = SourceWindowFeaturizer(FeatureConfig(
        window_s=window_s,
        min_packets=1,
        use_payload_features=False,
    ))
    examples = featurizer.aggregate((p, {}) for p in kept)
    if scale_counts and sampling_rate > 1:
        for example in examples:
            example.pkts *= sampling_rate
            example.bytes *= sampling_rate
            example.bytes_in *= sampling_rate
            example.bytes_out *= sampling_rate
            example.ttl_sum *= sampling_rate
            example.udp_pkts *= sampling_rate
            example.dns_pkts *= sampling_rate
            example.dns_responses *= sampling_rate
            example.syns *= sampling_rate
            example.port53_src *= sampling_rate
            example.wellknown_dport *= sampling_rate
    return featurizer.to_dataset(examples, ground_truth=ground_truth,
                                 class_names=class_names)
