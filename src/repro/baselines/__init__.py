"""Comparison approaches the community already had.

Every experiment reports who wins against what existed before the
platform:

* :mod:`repro.baselines.threshold` — hand-tuned static thresholds
  (today's operator practice).
* :mod:`repro.baselines.netflow` — sampled NetFlow collection instead
  of full-packet capture (what most campuses actually run).
* :mod:`repro.baselines.offline` — the bottom-up, ad-hoc measurement
  workflow (re-collect data for every feature iteration).
"""

from repro.baselines.threshold import ThresholdDetector, ThresholdRule
from repro.baselines.netflow import NetFlowSampler, sampled_dataset
from repro.baselines.offline import (
    IterationCost,
    bottom_up_iteration_cost,
    top_down_iteration_cost,
)

__all__ = [
    "ThresholdDetector",
    "ThresholdRule",
    "NetFlowSampler",
    "sampled_dataset",
    "IterationCost",
    "bottom_up_iteration_cost",
    "top_down_iteration_cost",
]
