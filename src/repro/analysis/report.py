"""Campus network report generation.

The weekly artifact a campus IT organisation actually circulates:
capture health, traffic composition, top external endpoints, labeled
security events, and sensor activity — all computed from the data
store through the same query engine researchers use.  Rendered as
Markdown so it drops into a wiki or ticket.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datastore.query import Aggregation, Query
from repro.privacy import CryptoPan

#: Default Crypto-PAn key for report pseudonyms.  The report is the
#: one artifact that leaves the enclave (wiki, tickets), so endpoint
#: addresses never appear raw; a fixed key keeps pseudonyms stable
#: across weekly reports so trends remain comparable.
_REPORT_KEY = b"campus-report-pseudonym-key-0001"


@dataclass
class CampusReport:
    """Structured report; ``render()`` emits Markdown."""

    store_summary: Dict
    traffic_by_service: Dict[str, float]
    top_endpoints: List[Tuple[str, float]]
    event_counts: Dict[str, int]
    log_counts: Dict[str, int]

    def render(self) -> str:
        lines: List[str] = ["# Campus network report", ""]

        lines.append("## Capture health")
        for collection, stats in sorted(self.store_summary.items()):
            span = "-"
            if stats["min_time"] is not None:
                span = (f"{stats['max_time'] - stats['min_time']:.0f}s "
                        f"of traffic")
            lines.append(f"- **{collection}**: {stats['records']} records "
                         f"in {stats['segments']} segments "
                         f"({stats['bytes'] / 1e6:.1f} MB, {span})")
        lines.append("")

        lines.append("## Traffic by service (bytes on the wire)")
        total = sum(self.traffic_by_service.values()) or 1.0
        for service, volume in sorted(self.traffic_by_service.items(),
                                      key=lambda kv: -kv[1]):
            lines.append(f"- {service}: {volume / 1e6:.1f} MB "
                         f"({volume / total:.1%})")
        lines.append("")

        lines.append("## Top external endpoints (bytes, "
                     "Crypto-PAn pseudonyms)")
        for endpoint, volume in self.top_endpoints:
            lines.append(f"- {endpoint}: {volume / 1e6:.1f} MB")
        lines.append("")

        lines.append("## Labeled security events (packet windows)")
        if any(label != "benign" for label in self.event_counts):
            for label, count in sorted(self.event_counts.items(),
                                       key=lambda kv: -kv[1]):
                if label != "benign":
                    lines.append(f"- {label}: {count} packets")
        else:
            lines.append("- none recorded")
        lines.append("")

        lines.append("## Sensor activity")
        if self.log_counts:
            for kind, count in sorted(self.log_counts.items(),
                                      key=lambda kv: -kv[1]):
                lines.append(f"- {kind}: {count} records")
        else:
            lines.append("- no sensor records")
        return "\n".join(lines) + "\n"


def generate_report(store, top_n: int = 5,
                    cryptopan: Optional[CryptoPan] = None) -> CampusReport:
    """Build a :class:`CampusReport` from a data store.

    Endpoint addresses are pseudonymized with Crypto-PAn before they
    enter the report; pass a keyed ``cryptopan`` to control the
    pseudonym mapping (defaults to a fixed key so pseudonyms are
    stable across report runs).
    """
    if cryptopan is None:
        cryptopan = CryptoPan(_REPORT_KEY)

    def external_side(stored):
        record = stored.record
        raw = record.src_ip if record.direction == "in" else record.dst_ip
        return cryptopan.anonymize(raw)

    traffic = store.aggregate(
        Query(collection="packets", order_by_time=False),
        Aggregation(key_fn=lambda s: s.tags.get("service", "other"),
                    value_fn=lambda s: float(s.record.size),
                    reducer="sum"),
    )
    by_endpoint = store.aggregate(
        Query(collection="packets", order_by_time=False),
        Aggregation(key_fn=external_side,
                    value_fn=lambda s: float(s.record.size),
                    reducer="sum"),
    )
    top = sorted(by_endpoint.items(), key=lambda kv: -kv[1])[:top_n]

    labels: Counter = Counter()
    for stored in store.query(Query(collection="packets",
                                    order_by_time=False)):
        labels[stored.label or stored.record.label] += 1

    logs = store.aggregate(
        Query(collection="logs", order_by_time=False),
        Aggregation(key_fn=lambda s: s.record.kind, reducer="count"),
    )

    return CampusReport(
        store_summary=store.summary(),
        traffic_by_service={str(k): float(v) for k, v in traffic.items()},
        top_endpoints=[(str(k), float(v)) for k, v in top],
        event_counts={str(k): int(v) for k, v in labels.items()},
        log_counts={str(k): int(v) for k, v in logs.items()},
    )
