"""Plain-text result tables (every bench prints one of these)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Number = Union[int, float]


def format_number(value, precision: int = 3) -> str:
    """Compact numeric formatting with unit-scale suffixes."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        if abs(value) >= 1_000_000_000:
            return f"{value / 1e9:.2f}G"
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.2f}M"
        if abs(value) >= 10_000:
            return f"{value / 1e3:.1f}k"
        return str(value)
    if isinstance(value, float):
        if value != 0 and abs(value) < 10 ** -precision:
            return f"{value:.2e}"
        if abs(value) >= 1_000_000:
            return f"{value / 1e6:.2f}M"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


class Table:
    """An aligned ASCII table with a title.

    >>> t = Table("demo", ["a", "b"])
    >>> t.row(1, 2.5)
    >>> print(t.render())  # doctest: +ELLIPSIS
    === demo ===...
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_number(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            for row in self.rows
        ]
        return "\n".join([f"=== {self.title} ===", header, rule, *body])

    def print(self) -> None:
        print()
        print(self.render())
