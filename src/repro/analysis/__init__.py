"""Reporting tables and statistics helpers for the benchmarks."""

from repro.analysis.tables import Table, format_number
from repro.analysis.stats import bootstrap_ci, mean_std, summarize
from repro.analysis.report import CampusReport, generate_report

__all__ = ["Table", "format_number", "bootstrap_ci", "mean_std",
           "summarize", "CampusReport", "generate_report"]
