"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    return float(arr.mean()), float(arr.std(ddof=1) if arr.size > 1 else 0.0)


def bootstrap_ci(values: Sequence[float], confidence: float = 0.95,
                 n_resamples: int = 2000, seed: int = 0) -> \
        Tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0,
                "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1) if arr.size > 1 else 0.0),
        "min": float(arr.min()),
        "p50": float(np.quantile(arr, 0.5)),
        "p95": float(np.quantile(arr, 0.95)),
        "max": float(arr.max()),
    }
