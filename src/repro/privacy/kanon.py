"""k-anonymity auditing over stored records.

Before any internal release of a derived dataset, the IT organisation
audits whether combinations of quasi-identifiers isolate individual
users.  A record set is k-anonymous w.r.t. a quasi-identifier tuple if
every observed combination occurs at least k times.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class KAnonymityReport:
    """Audit outcome for one record set."""

    k: int
    quasi_identifiers: Tuple[str, ...]
    total_records: int
    distinct_combinations: int
    violating_combinations: int
    violating_records: int
    min_group_size: int

    @property
    def satisfied(self) -> bool:
        return self.violating_combinations == 0


class KAnonymityAuditor:
    """Audits (and optionally suppresses) quasi-identifier groups."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def _combination(self, record, quasi_identifiers: Sequence[str],
                     getter: Callable) -> Tuple:
        return tuple(getter(record, q) for q in quasi_identifiers)

    def audit(self, records: Sequence, quasi_identifiers: Sequence[str],
              getter: Callable = getattr) -> KAnonymityReport:
        """Count quasi-identifier combinations occurring fewer than k times."""
        counts: Counter = Counter(
            self._combination(r, quasi_identifiers, getter) for r in records
        )
        violating = {c: n for c, n in counts.items() if n < self.k}
        return KAnonymityReport(
            k=self.k,
            quasi_identifiers=tuple(quasi_identifiers),
            total_records=len(records),
            distinct_combinations=len(counts),
            violating_combinations=len(violating),
            violating_records=sum(violating.values()),
            min_group_size=min(counts.values()) if counts else 0,
        )

    def suppress(self, records: Sequence, quasi_identifiers: Sequence[str],
                 getter: Callable = getattr) -> List:
        """Drop records whose combination occurs fewer than k times."""
        counts: Counter = Counter(
            self._combination(r, quasi_identifiers, getter) for r in records
        )
        return [
            r for r in records
            if counts[self._combination(r, quasi_identifiers, getter)] >= self.k
        ]
