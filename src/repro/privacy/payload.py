"""Payload collection policies.

Full-packet capture collects "full payload, with no sampling" (§5) —
which is exactly what makes the privacy question acute.  A
:class:`PayloadPolicy` decides, per packet, what of the payload enters
the store: everything, a truncated prefix, a salted hash (joinable but
unreadable), or nothing.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.netsim.packets import PacketRecord


class PayloadMode(enum.Enum):
    KEEP = "keep"
    TRUNCATE = "truncate"
    HASH = "hash"
    STRIP = "strip"


@dataclass
class PayloadPolicy:
    """How payload bytes are stored.

    ``exempt_services`` keeps full payload for protocol machinery the
    IT organisation needs readable (e.g. DNS for security work) even
    under restrictive modes.
    """

    mode: PayloadMode = PayloadMode.KEEP
    truncate_bytes: int = 16
    salt: bytes = b"campus-payload-salt"
    exempt_services: frozenset = frozenset({"dns"})

    def apply(self, packet: PacketRecord, service: Optional[str] = None) -> \
            PacketRecord:
        """Return a packet with payload transformed per policy.

        The input record is mutated in place (capture owns the object
        at this point in the pipeline) and returned for convenience.
        """
        if self.mode is PayloadMode.KEEP:
            return packet
        if service is not None and service in self.exempt_services:
            return packet
        if self.mode is PayloadMode.TRUNCATE:
            packet.payload = packet.payload[: self.truncate_bytes]
        elif self.mode is PayloadMode.HASH:
            digest = hashlib.sha256(self.salt + packet.payload).digest()
            packet.payload = digest[:16]
        elif self.mode is PayloadMode.STRIP:
            packet.payload = b""
        return packet
