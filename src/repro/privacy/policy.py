"""Composable privacy policies applied at data-store ingest.

A :class:`PrivacyPolicy` bundles the address anonymizer and the
payload policy into a single ingest transform
(:func:`make_ingest_transform`) the store runs on every record.  The
named :class:`PrivacyLevel` presets are what experiment E6 sweeps when
measuring the privacy/utility trade-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.privacy.cryptopan import CryptoPan
from repro.privacy.payload import PayloadMode, PayloadPolicy


class PrivacyLevel(enum.Enum):
    """Preset policy strengths, weakest to strongest."""

    NONE = "none"                      # raw addresses, full payload
    PREFIX_PRESERVING = "prefix"       # Crypto-PAn addresses, full payload
    PAYLOAD_STRIPPED = "stripped"      # Crypto-PAn + payload removed
    AGGREGATES_ONLY = "aggregates"     # nothing row-level leaves the enclave


# Tags whose values embed user-identifying strings; dropped whenever
# payloads are not kept verbatim.
SENSITIVE_TAGS = ("dns_qname", "tls_sni", "http_host", "http_path",
                  "ssh_banner")


@dataclass
class PrivacyPolicy:
    """The concrete transform configuration for one privacy level."""

    level: PrivacyLevel
    cryptopan: Optional[CryptoPan] = None
    payload_policy: PayloadPolicy = field(default_factory=PayloadPolicy)
    anonymize_internal_only: bool = True

    @classmethod
    def preset(cls, level: PrivacyLevel,
               key: bytes = b"campus-privacy-key-0123456789ab") -> \
            "PrivacyPolicy":
        if level is PrivacyLevel.NONE:
            return cls(level=level, cryptopan=None,
                       payload_policy=PayloadPolicy(PayloadMode.KEEP))
        if level is PrivacyLevel.PREFIX_PRESERVING:
            return cls(level=level, cryptopan=CryptoPan(key),
                       payload_policy=PayloadPolicy(PayloadMode.KEEP))
        if level is PrivacyLevel.PAYLOAD_STRIPPED:
            return cls(level=level, cryptopan=CryptoPan(key),
                       payload_policy=PayloadPolicy(
                           PayloadMode.STRIP, exempt_services=frozenset()))
        if level is PrivacyLevel.AGGREGATES_ONLY:
            return cls(level=level, cryptopan=CryptoPan(key),
                       payload_policy=PayloadPolicy(
                           PayloadMode.STRIP, exempt_services=frozenset()))
        raise ValueError(f"unknown privacy level: {level}")

    def anonymize_ip(self, ip: str, is_internal: bool) -> str:
        if self.cryptopan is None:
            return ip
        if self.anonymize_internal_only and not is_internal:
            return ip
        return self.cryptopan.anonymize(ip)


def make_ingest_transform(policy: PrivacyPolicy,
                          is_internal: Callable[[str], bool]) -> Callable:
    """Build a store ingest transform from a policy.

    The returned callable has the
    ``(collection, record, tags) -> (record, tags)`` signature
    :meth:`repro.datastore.store.DataStore.add_ingest_transform`
    expects.
    """

    strip_tags = policy.payload_policy.mode is not PayloadMode.KEEP

    def transform(collection: str, record, tags: Dict[str, str]) -> Tuple:
        if policy.level is PrivacyLevel.AGGREGATES_ONLY and collection in (
            "packets", "logs"
        ):
            return None, None
        if collection == "packets":
            record.src_ip = policy.anonymize_ip(
                record.src_ip, is_internal(record.src_ip))
            record.dst_ip = policy.anonymize_ip(
                record.dst_ip, is_internal(record.dst_ip))
            service = tags.get("service") if tags else None
            policy.payload_policy.apply(record, service=service)
        elif collection == "flows":
            record.src_ip = policy.anonymize_ip(
                record.src_ip, is_internal(record.src_ip))
            record.dst_ip = policy.anonymize_ip(
                record.dst_ip, is_internal(record.dst_ip))
        elif collection == "logs":
            for key in ("src_ip", "dst_ip"):
                value = record.attrs.get(key)
                if value:
                    record.attrs[key] = policy.anonymize_ip(
                        value, is_internal(value))
        if tags and strip_tags:
            tags = {k: v for k, v in tags.items() if k not in SENSITIVE_TAGS}
        return record, tags

    return transform
