"""Role-based access arbitration for the data store.

§5: the IT organisation arbitrates "what data can or cannot be made
available to which of the university's many different constituents".
The arbiter wraps a :class:`~repro.datastore.store.DataStore` and
enforces per-role collection access, time-depth limits, and row-level
redaction; every access lands in an audit log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.datastore.query import Query


class Role(enum.Enum):
    IT_OPERATOR = "it_operator"          # full access
    SECURITY_ANALYST = "security_analyst"  # packets+flows+logs, 30 days
    RESEARCHER = "researcher"            # flows + anonymized packets, 7 days
    STUDENT = "student"                  # aggregate queries only
    EXTERNAL = "external"                # nothing


class AccessDenied(Exception):
    """Raised when a role is not entitled to the requested data."""


@dataclass
class _RolePolicy:
    collections: Set[str]
    max_age_s: Optional[float]
    aggregates_only: bool = False


_DEFAULT_POLICIES: Dict[Role, _RolePolicy] = {
    Role.IT_OPERATOR: _RolePolicy(
        collections={"packets", "flows", "logs"}, max_age_s=None),
    Role.SECURITY_ANALYST: _RolePolicy(
        collections={"packets", "flows", "logs"}, max_age_s=30 * 86400.0),
    Role.RESEARCHER: _RolePolicy(
        collections={"packets", "flows"}, max_age_s=7 * 86400.0),
    Role.STUDENT: _RolePolicy(
        collections={"flows"}, max_age_s=86400.0, aggregates_only=True),
    Role.EXTERNAL: _RolePolicy(collections=set(), max_age_s=0.0),
}


@dataclass
class AuditEntry:
    role: Role
    user: str
    collection: str
    granted: bool
    reason: str = ""
    records_returned: int = 0


class AccessArbiter:
    """Gatekeeper between constituents and the data store."""

    def __init__(self, store, now_fn, policies: Optional[Dict] = None):
        self.store = store
        self.now_fn = now_fn
        self.policies = dict(policies or _DEFAULT_POLICIES)
        self.audit_log: List[AuditEntry] = []

    def _check(self, role: Role, user: str, query: Query,
               aggregate: bool) -> Query:
        policy = self.policies.get(role)
        if policy is None or query.collection not in policy.collections:
            entry = AuditEntry(role, user, query.collection, granted=False,
                               reason="collection not permitted")
            self.audit_log.append(entry)
            raise AccessDenied(
                f"{role.value} may not read {query.collection!r}"
            )
        if policy.aggregates_only and not aggregate:
            entry = AuditEntry(role, user, query.collection, granted=False,
                               reason="row-level access not permitted")
            self.audit_log.append(entry)
            raise AccessDenied(f"{role.value} is limited to aggregates")
        if policy.max_age_s is not None:
            horizon = self.now_fn() - policy.max_age_s
            start, end = query.time_range or (None, None)
            start = horizon if start is None else max(start, horizon)
            query = Query(
                collection=query.collection,
                time_range=(start, end),
                where=query.where, tags=query.tags,
                predicate=query.predicate, limit=query.limit,
                order_by_time=query.order_by_time,
            )
        return query

    def query(self, role: Role, user: str, query: Query) -> List:
        query = self._check(role, user, query, aggregate=False)
        records = self.store.query(query)
        self.audit_log.append(AuditEntry(
            role, user, query.collection, granted=True,
            records_returned=len(records)))
        return records

    def aggregate(self, role: Role, user: str, query: Query,
                  aggregation) -> Dict:
        query = self._check(role, user, query, aggregate=True)
        result = self.store.aggregate(query, aggregation)
        self.audit_log.append(AuditEntry(
            role, user, query.collection, granted=True,
            records_returned=len(result)))
        return result
