"""Privacy-preserving data collection and access control.

§3/§5: the data store is for *internal* use only; the IT organisation
"is responsible for safeguarding the resulting data store, protecting
user privacy, deciding on what data can/should not be collected and/or
stored (and in what form), and arbitrating what data can or cannot be
made available to which ... constituents".  This subpackage makes that
an executable policy stack:

* :mod:`repro.privacy.cryptopan` — prefix-preserving IP anonymization
  (Crypto-PAn construction with a keyed PRF).
* :mod:`repro.privacy.payload` — payload collection policies (keep /
  truncate / hash / strip).
* :mod:`repro.privacy.kanon` — k-anonymity auditing of quasi-identifiers.
* :mod:`repro.privacy.dp` — differentially private aggregate release
  with an epsilon budget ledger.
* :mod:`repro.privacy.policy` — composable ingest transforms for the
  data store.
* :mod:`repro.privacy.arbiter` — role-based access arbitration.
"""

from repro.privacy.cryptopan import CryptoPan
from repro.privacy.payload import PayloadPolicy, PayloadMode
from repro.privacy.kanon import KAnonymityAuditor, KAnonymityReport
from repro.privacy.dp import DpAccountant, DpBudgetExceeded, laplace_noise
from repro.privacy.policy import PrivacyPolicy, PrivacyLevel, make_ingest_transform
from repro.privacy.arbiter import AccessArbiter, AccessDenied, Role

__all__ = [
    "CryptoPan",
    "PayloadPolicy",
    "PayloadMode",
    "KAnonymityAuditor",
    "KAnonymityReport",
    "DpAccountant",
    "DpBudgetExceeded",
    "laplace_noise",
    "PrivacyPolicy",
    "PrivacyLevel",
    "make_ingest_transform",
    "AccessArbiter",
    "AccessDenied",
    "Role",
]
