"""Differentially private aggregate release.

Aggregate statistics (per-department volumes, top services, ...) may
leave the IT organisation's enclave only through the Laplace mechanism
with an explicit epsilon ledger: once a release budget is spent,
further queries are refused rather than silently degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class DpBudgetExceeded(Exception):
    """Raised when a release would exceed the epsilon budget."""


def laplace_noise(rng: np.random.Generator, sensitivity: float,
                  epsilon: float) -> float:
    """One sample of Laplace(sensitivity / epsilon) noise."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    return float(rng.laplace(loc=0.0, scale=sensitivity / epsilon))


@dataclass
class _LedgerEntry:
    description: str
    epsilon: float


class DpAccountant:
    """Epsilon budget ledger + Laplace release mechanism."""

    def __init__(self, total_epsilon: float = 1.0, seed: int = 0):
        if total_epsilon <= 0:
            raise ValueError("total epsilon budget must be positive")
        self.total_epsilon = float(total_epsilon)
        self.rng = np.random.default_rng(seed)
        self.ledger: List[_LedgerEntry] = []

    @property
    def spent(self) -> float:
        return sum(entry.epsilon for entry in self.ledger)

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self.spent

    def release_count(self, true_count: float, epsilon: float,
                      description: str = "count",
                      sensitivity: float = 1.0) -> float:
        """Release a noisy count, charging ``epsilon`` to the budget."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.spent + epsilon > self.total_epsilon + 1e-12:
            raise DpBudgetExceeded(
                f"release needs eps={epsilon}, only {self.remaining:.4f} left"
            )
        self.ledger.append(_LedgerEntry(description, epsilon))
        return float(true_count) + laplace_noise(self.rng, sensitivity, epsilon)

    def release_histogram(self, histogram: Dict, epsilon: float,
                          description: str = "histogram",
                          sensitivity: float = 1.0) -> Dict:
        """Release a histogram under one epsilon charge.

        Disjoint-bin histograms have parallel composition, so a single
        charge covers all bins.
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.spent + epsilon > self.total_epsilon + 1e-12:
            raise DpBudgetExceeded(
                f"release needs eps={epsilon}, only {self.remaining:.4f} left"
            )
        self.ledger.append(_LedgerEntry(description, epsilon))
        return {
            key: float(value) + laplace_noise(self.rng, sensitivity, epsilon)
            for key, value in histogram.items()
        }
