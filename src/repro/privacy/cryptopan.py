"""Prefix-preserving IP address anonymization (Crypto-PAn).

Implements the Xu et al. Crypto-PAn construction: the i-th anonymized
bit is the i-th plaintext bit XOR f(P_{i-1}), where P_{i-1} is the
plaintext prefix of length i-1 and f is a keyed pseudo-random function
with one-bit output.  The defining property — two addresses sharing a
k-bit prefix map to anonymized addresses sharing exactly a k-bit
prefix — is what keeps subnet structure (and therefore most learning
features) intact.  We use HMAC-SHA256 as the PRF instead of the
original AES; the property proof only requires a PRF.

Property-tested in ``tests/privacy/test_cryptopan.py``.
"""

from __future__ import annotations

import hashlib
import hmac
import socket
import struct
from functools import lru_cache
from typing import Dict


def _ip_to_int(ip: str) -> int:
    return struct.unpack("!I", socket.inet_aton(ip))[0]


def _int_to_ip(value: int) -> str:
    return socket.inet_ntoa(struct.pack("!I", value & 0xFFFFFFFF))


class CryptoPan:
    """Deterministic, key-driven, prefix-preserving IPv4 anonymizer.

    >>> pan = CryptoPan(b"a 32-byte key for the anonymizer")
    >>> a = pan.anonymize("10.1.2.3")
    >>> b = pan.anonymize("10.1.2.77")
    >>> a.split(".")[:3] == b.split(".")[:3]
    True
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("CryptoPan key must be at least 16 bytes")
        self._key = bytes(key)
        self._cache: Dict[int, int] = {}

    def _prf_bit(self, prefix: int, length: int) -> int:
        """One pseudo-random bit for a ``length``-bit prefix value."""
        message = struct.pack("!IB", prefix, length)
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def _anonymize_int(self, addr: int) -> int:
        cached = self._cache.get(addr)
        if cached is not None:
            return cached
        result = 0
        for i in range(32):
            # Plaintext prefix of length i (the top i bits).
            prefix = addr >> (32 - i) if i > 0 else 0
            flip = self._prf_bit(prefix, i)
            bit = (addr >> (31 - i)) & 1
            result = (result << 1) | (bit ^ flip)
        self._cache[addr] = result
        return result

    def anonymize(self, ip: str) -> str:
        """Anonymize one dotted-quad IPv4 address."""
        return _int_to_ip(self._anonymize_int(_ip_to_int(ip)))

    def shared_prefix_len(self, ip_a: str, ip_b: str) -> int:
        """Length of the common prefix of two addresses, in bits."""
        a, b = _ip_to_int(ip_a), _ip_to_int(ip_b)
        xor = a ^ b
        if xor == 0:
            return 32
        return 32 - xor.bit_length()
