"""Decision trees as ordered rule lists.

Operators read rules, not trees.  Each root-to-leaf path becomes one
rule; rules are ordered by leaf support so the most common behaviours
read first.  The rule list is also the canonical intermediate form on
the way to match-action tables (:mod:`repro.deploy.compiler` consumes
the same paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.models.tree import DecisionTreeClassifier, TreeNode


@dataclass(frozen=True)
class Condition:
    """One clause: feature <= threshold or feature > threshold."""

    feature: int
    op: str          # "<=" or ">"
    threshold: float

    def render(self, feature_names: Optional[Sequence[str]] = None) -> str:
        name = (feature_names[self.feature]
                if feature_names is not None else f"x{self.feature}")
        return f"{name} {self.op} {self.threshold:.4g}"

    def matches(self, x) -> bool:
        value = x[self.feature]
        return value <= self.threshold if self.op == "<=" \
            else value > self.threshold


@dataclass
class Rule:
    """Conjunction of conditions implying a class."""

    conditions: Tuple[Condition, ...]
    predicted_class: int
    support: int
    confidence: float

    def matches(self, x) -> bool:
        return all(c.matches(x) for c in self.conditions)

    def render(self, feature_names: Optional[Sequence[str]] = None,
               class_names: Optional[Sequence[str]] = None) -> str:
        if self.conditions:
            body = " AND ".join(c.render(feature_names)
                                for c in self.conditions)
        else:
            body = "TRUE"
        target = (class_names[self.predicted_class]
                  if class_names is not None else str(self.predicted_class))
        return (f"IF {body} THEN {target} "
                f"(support={self.support}, conf={self.confidence:.2f})")


@dataclass
class RuleList:
    """Ordered rules; first match wins (rules from one tree are disjoint)."""

    rules: List[Rule]
    feature_names: Optional[List[str]] = None
    class_names: Optional[List[str]] = None

    def predict_one(self, x) -> int:
        for rule in self.rules:
            if rule.matches(x):
                return rule.predicted_class
        # Disjoint total rules from a tree always match; this is for
        # hand-edited lists.
        return self.rules[-1].predicted_class if self.rules else 0

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return np.asarray([self.predict_one(x) for x in X], dtype=int)

    def render(self) -> str:
        return "\n".join(
            rule.render(self.feature_names, self.class_names)
            for rule in self.rules
        )

    def __len__(self) -> int:
        return len(self.rules)


def tree_to_rules(tree: DecisionTreeClassifier,
                  feature_names: Optional[Sequence[str]] = None,
                  class_names: Optional[Sequence[str]] = None) -> RuleList:
    """Convert a fitted tree into a support-ordered rule list."""
    rules: List[Rule] = []

    def walk(node: TreeNode, conditions: Tuple[Condition, ...]) -> None:
        if node.is_leaf:
            counts = node.value
            total = counts.sum()
            predicted = int(np.argmax(counts))
            confidence = float(counts[predicted] / total) if total > 0 else 0.0
            rules.append(Rule(
                conditions=conditions,
                predicted_class=predicted,
                support=int(node.n_samples),
                confidence=confidence,
            ))
            return
        walk(node.left, conditions + (
            Condition(node.feature, "<=", node.threshold),))
        walk(node.right, conditions + (
            Condition(node.feature, ">", node.threshold),))

    walk(tree.root_, ())
    rules.sort(key=lambda r: r.support, reverse=True)
    return RuleList(
        rules=rules,
        feature_names=list(feature_names) if feature_names else None,
        class_names=list(class_names) if class_names else None,
    )
