"""Teacher/student decision-tree extraction.

Following the model-extraction recipe of Bastani et al.: label a large
pool of inputs with the *teacher's* predictions (not ground truth) and
fit a small CART student to those labels.  The pool is the training
data plus synthetic points drawn around it (Gaussian jitter per
feature plus uniform draws over the observed box), so the student sees
the teacher's behaviour off the data manifold too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.learning.models.tree import DecisionTreeClassifier
from repro.xai.fidelity import fidelity


@dataclass
class DistillationResult:
    """The extracted student plus extraction quality numbers."""

    student: DecisionTreeClassifier
    train_fidelity: float          # agreement with teacher on the pool
    n_pool: int
    n_leaves: int
    depth: int


def _augment_pool(X: np.ndarray, rng: np.random.Generator,
                  synthetic_factor: float, jitter_scale: float) -> np.ndarray:
    """Teacher-query pool: data + jittered copies + uniform box samples."""
    n_synthetic = int(len(X) * synthetic_factor)
    if n_synthetic == 0:
        return X
    lo = X.min(axis=0)
    hi = X.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)
    n_jitter = n_synthetic // 2
    base = X[rng.integers(0, len(X), size=n_jitter)]
    jittered = base + rng.normal(0.0, jitter_scale, size=base.shape) * span
    uniform = rng.uniform(lo, hi, size=(n_synthetic - n_jitter, X.shape[1]))
    pool = np.vstack([X, jittered, uniform])
    # Network features are non-negative counts/ratios; stay in domain.
    return np.maximum(pool, 0.0)


def distill_tree(teacher, X: np.ndarray, max_depth: int = 4,
                 min_samples_leaf: int = 5, synthetic_factor: float = 2.0,
                 jitter_scale: float = 0.05, seed: int = 0,
                 n_classes: Optional[int] = None) -> DistillationResult:
    """Extract a depth-bounded tree student from any fitted teacher.

    Parameters
    ----------
    teacher:
        Fitted classifier with ``predict``.
    X:
        Training inputs the teacher was fit on (defines the data
        manifold to query around).
    max_depth / min_samples_leaf:
        Student capacity — the deployability knob experiment E7 sweeps.
    synthetic_factor:
        Synthetic teacher queries per real sample.
    """
    X = np.asarray(X, dtype=float)
    if len(X) == 0:
        raise ValueError("cannot distill from an empty dataset")
    rng = np.random.default_rng(seed)
    pool = _augment_pool(X, rng, synthetic_factor, jitter_scale)
    teacher_labels = np.asarray(teacher.predict(pool), dtype=int)
    resolved_classes = n_classes or getattr(teacher, "n_classes_", None) \
        or int(teacher_labels.max()) + 1
    student = DecisionTreeClassifier(max_depth=max_depth,
                                     min_samples_leaf=min_samples_leaf)
    student.fit(pool, teacher_labels, n_classes=resolved_classes)
    agreement = fidelity(teacher_labels, student.predict(pool))
    return DistillationResult(
        student=student,
        train_fidelity=agreement,
        n_pool=len(pool),
        n_leaves=student.n_leaves,
        depth=student.depth,
    )
