"""Per-decision evidence lists for operators.

§5 envisions a model "that could be routinely queried for the list of
pieces of evidence that the model used to arrive at its decisions" —
and operator trust growing when reviewing that evidence.  For a tree
student, the evidence is exact: the root-to-leaf path, each clause
annotated with the sample's value, the threshold, and the training
support behind the step.  The testbed's trust model
(:mod:`repro.testbed.trust`) consumes these objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.learning.models.tree import DecisionTreeClassifier


@dataclass
class EvidenceClause:
    """One step of the decision path."""

    feature: int
    feature_name: str
    observed_value: float
    op: str
    threshold: float
    training_support: int       # samples that reached this node in training
    class_shift: float          # how much this step moved P(predicted class)

    def render(self) -> str:
        return (f"{self.feature_name} = {self.observed_value:.4g} "
                f"{self.op} {self.threshold:.4g} "
                f"[support={self.training_support}, "
                f"shift={self.class_shift:+.2f}]")


@dataclass
class DecisionEvidence:
    """Everything an operator reviews about one decision."""

    predicted_class: int
    predicted_label: str
    confidence: float
    clauses: List[EvidenceClause]
    leaf_support: int

    def render(self) -> str:
        lines = [f"decision: {self.predicted_label} "
                 f"(confidence {self.confidence:.2f}, "
                 f"leaf support {self.leaf_support})"]
        lines.extend(f"  because {clause.render()}"
                     for clause in self.clauses)
        return "\n".join(lines)

    @property
    def strength(self) -> float:
        """Scalar evidence quality: confidence weighted by support depth.

        Used by the trust model; higher means the model can point to
        well-supported, decisive steps.
        """
        if not self.clauses:
            return self.confidence
        support_term = min(self.leaf_support / 30.0, 1.0)
        return self.confidence * (0.5 + 0.5 * support_term)


def explain_decision(tree: DecisionTreeClassifier, x,
                     feature_names: Optional[Sequence[str]] = None,
                     class_names: Optional[Sequence[str]] = None) -> \
        DecisionEvidence:
    """Build the evidence list for one sample."""
    x = np.asarray(x, dtype=float)
    path = tree.decision_path(x)
    leaf = path[-1]
    counts = leaf.value
    total = counts.sum()
    predicted = int(np.argmax(counts))
    confidence = float(counts[predicted] / total) if total > 0 else 0.0

    def proba_of(node, cls) -> float:
        node_total = node.value.sum()
        return float(node.value[cls] / node_total) if node_total > 0 else 0.0

    clauses: List[EvidenceClause] = []
    for parent, child in zip(path[:-1], path[1:]):
        went_left = child is parent.left
        op = "<=" if went_left else ">"
        name = (feature_names[parent.feature] if feature_names is not None
                else f"x{parent.feature}")
        clauses.append(EvidenceClause(
            feature=parent.feature,
            feature_name=name,
            observed_value=float(x[parent.feature]),
            op=op,
            threshold=float(parent.threshold),
            training_support=int(child.n_samples),
            class_shift=proba_of(child, predicted) - proba_of(parent,
                                                              predicted),
        ))
    label = (class_names[predicted] if class_names is not None
             else str(predicted))
    return DecisionEvidence(
        predicted_class=predicted,
        predicted_label=label,
        confidence=confidence,
        clauses=clauses,
        leaf_support=int(leaf.n_samples),
    )
