"""VIPER-style policy extraction (Bastani, Pu, Solar-Lezama, NeurIPS'18).

Extracts a decision-tree *policy* from a trained Q-learning teacher by
DAgger-style iteration: roll out the current student, relabel every
visited state with the teacher's greedy action, weight states by the
teacher's Q-value gap (states where the action choice matters most),
and refit.  The result is a verifiable, compilable controller — the
paper's "deployable learning model" for control tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.learning.models.tree import DecisionTreeClassifier
from repro.learning.rl.env import Env


@dataclass
class ViperResult:
    """Extracted tree policy plus extraction diagnostics."""

    student: DecisionTreeClassifier
    iterations: int
    dataset_size: int
    action_fidelity: float        # agreement with teacher on final dataset
    per_iteration_reward: List[float] = field(default_factory=list)


def _rollout(env: Env, act_fn, rng: np.random.Generator, episodes: int,
             seed_offset: int):
    """Collect (observation, total_reward) trajectories under act_fn."""
    observations = []
    total_rewards = []
    for episode in range(episodes):
        obs = env.reset(seed=seed_offset + episode)
        done = False
        total = 0.0
        while not done:
            observations.append(np.asarray(obs, dtype=float))
            obs, reward, done, _ = env.step(act_fn(obs))
            total += reward
        total_rewards.append(total)
    return observations, float(np.mean(total_rewards))


def viper_extract(teacher_agent, env: Env, iterations: int = 6,
                  episodes_per_iter: int = 10, max_depth: int = 3,
                  min_samples_leaf: int = 10, seed: int = 0) -> ViperResult:
    """Run the DAgger loop and return the best tree policy.

    ``teacher_agent`` must expose ``act(obs, greedy=True)`` and
    ``q_values(obs)`` (satisfied by
    :class:`repro.learning.rl.qlearning.QLearningAgent`).
    """
    rng = np.random.default_rng(seed)
    n_actions = env.action_space.n
    aggregated_X: List[np.ndarray] = []
    aggregated_y: List[int] = []
    aggregated_w: List[float] = []
    rewards: List[float] = []
    student: Optional[DecisionTreeClassifier] = None

    for iteration in range(iterations):
        if student is None:
            act_fn = lambda obs: teacher_agent.act(obs, greedy=True)
        else:
            current = student
            act_fn = lambda obs: int(current.predict(
                np.asarray(obs, dtype=float).reshape(1, -1))[0])
        observations, mean_reward = _rollout(
            env, act_fn, rng, episodes_per_iter,
            seed_offset=seed * 10_000 + iteration * 1_000,
        )
        rewards.append(mean_reward)
        for obs in observations:
            q = teacher_agent.q_values(obs)
            teacher_action = int(np.argmax(q))
            # VIPER weight: how costly a wrong action is in this state.
            gap = float(q.max() - q.min()) if len(q) > 1 else 1.0
            aggregated_X.append(obs)
            aggregated_y.append(teacher_action)
            aggregated_w.append(max(gap, 1e-3))

        X = np.asarray(aggregated_X)
        y = np.asarray(aggregated_y, dtype=int)
        w = np.asarray(aggregated_w, dtype=float)
        student = DecisionTreeClassifier(max_depth=max_depth,
                                         min_samples_leaf=min_samples_leaf)
        student.fit(X, y, sample_weight=w, n_classes=n_actions)

    final_pred = student.predict(np.asarray(aggregated_X))
    action_fidelity = float(np.mean(final_pred == np.asarray(aggregated_y)))
    return ViperResult(
        student=student,
        iterations=iterations,
        dataset_size=len(aggregated_X),
        action_fidelity=action_fidelity,
        per_iteration_reward=rewards,
    )
