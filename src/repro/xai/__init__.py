"""Explainable AI: model extraction, fidelity, rules, evidence.

Step (ii) of the paper's road to deployment (Fig. 2): "replace the
learning model ... with a deployable learning model (i.e., a learning
model that is explainable or interpretable, lightweight and closely
approximates the original model)", citing Bastani et al.'s model
extraction and VIPER lines of work; and step (iv): "explain to the
network operator how a given deployable learning model works".

* :mod:`repro.xai.distill` — teacher/student decision-tree extraction
  with synthetic query augmentation (Bastani-style).
* :mod:`repro.xai.viper` — DAgger-style policy extraction from a
  Q-learning teacher into a decision-tree policy.
* :mod:`repro.xai.fidelity` — agreement metrics between teacher and
  student.
* :mod:`repro.xai.rules` — tree-to-ordered-rule-list conversion.
* :mod:`repro.xai.evidence` — per-decision evidence lists for the
  operator ("the list of pieces of evidence that the model used to
  arrive at its decisions").
"""

from repro.xai.distill import DistillationResult, distill_tree
from repro.xai.viper import ViperResult, viper_extract
from repro.xai.fidelity import fidelity, proba_fidelity, FidelityReport, \
    fidelity_report
from repro.xai.rules import Rule, RuleList, tree_to_rules
from repro.xai.evidence import DecisionEvidence, EvidenceClause, explain_decision

__all__ = [
    "distill_tree",
    "DistillationResult",
    "viper_extract",
    "ViperResult",
    "fidelity",
    "proba_fidelity",
    "FidelityReport",
    "fidelity_report",
    "Rule",
    "RuleList",
    "tree_to_rules",
    "DecisionEvidence",
    "EvidenceClause",
    "explain_decision",
]
