"""Teacher/student agreement metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def fidelity(teacher_predictions, student_predictions) -> float:
    """Fraction of inputs where student matches teacher."""
    teacher = np.asarray(teacher_predictions)
    student = np.asarray(student_predictions)
    if teacher.shape != student.shape:
        raise ValueError("prediction shape mismatch")
    if len(teacher) == 0:
        return 0.0
    return float(np.mean(teacher == student))


def proba_fidelity(teacher_proba, student_proba) -> float:
    """1 - mean total-variation distance between probability outputs."""
    teacher = np.asarray(teacher_proba, dtype=float)
    student = np.asarray(student_proba, dtype=float)
    if teacher.shape != student.shape:
        raise ValueError("probability shape mismatch")
    if len(teacher) == 0:
        return 0.0
    tv = 0.5 * np.abs(teacher - student).sum(axis=1)
    return float(1.0 - tv.mean())


@dataclass
class FidelityReport:
    """Holdout comparison of teacher vs extracted student."""

    label_fidelity: float
    probability_fidelity: float
    teacher_accuracy: Optional[float]
    student_accuracy: Optional[float]

    @property
    def accuracy_gap(self) -> Optional[float]:
        if self.teacher_accuracy is None or self.student_accuracy is None:
            return None
        return self.teacher_accuracy - self.student_accuracy


def fidelity_report(teacher, student, X, y=None) -> FidelityReport:
    """Evaluate the extraction on held-out inputs (optionally labeled)."""
    X = np.asarray(X, dtype=float)
    teacher_pred = np.asarray(teacher.predict(X), dtype=int)
    student_pred = np.asarray(student.predict(X), dtype=int)
    teacher_acc = student_acc = None
    if y is not None:
        y = np.asarray(y, dtype=int)
        teacher_acc = float(np.mean(teacher_pred == y))
        student_acc = float(np.mean(student_pred == y))
    try:
        p_fid = proba_fidelity(teacher.predict_proba(X),
                               student.predict_proba(X))
    except (AttributeError, ValueError):
        p_fid = fidelity(teacher_pred, student_pred)
    return FidelityReport(
        label_fidelity=fidelity(teacher_pred, student_pred),
        probability_fidelity=p_fid,
        teacher_accuracy=teacher_acc,
        student_accuracy=student_acc,
    )
