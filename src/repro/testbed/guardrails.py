"""SLO guardrails with rollback semantics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class GuardrailViolation:
    """One tripped guardrail."""

    guardrail: str
    observed: float
    limit: float
    message: str


@dataclass
class Guardrail:
    """A named bound on one phase metric.

    ``metric`` pulls a float out of the phase metrics dict;
    ``comparator`` is "max" (violation when observed > limit) or "min"
    (violation when observed < limit).
    """

    name: str
    metric: str
    limit: float
    comparator: str = "max"

    def check(self, metrics: Dict[str, float]) -> Optional[GuardrailViolation]:
        observed = metrics.get(self.metric)
        if observed is None:
            return None
        violated = (observed > self.limit if self.comparator == "max"
                    else observed < self.limit)
        if not violated:
            return None
        op = ">" if self.comparator == "max" else "<"
        return GuardrailViolation(
            guardrail=self.name,
            observed=float(observed),
            limit=self.limit,
            message=(f"{self.name}: {self.metric}={observed:.4f} "
                     f"{op} limit {self.limit:.4f}"),
        )


def standard_guardrails(max_false_positive_rate: float = 0.1,
                        min_recall: float = 0.5,
                        max_collateral_fraction: float = 0.02) -> \
        List[Guardrail]:
    """The IT organisation's default promotion criteria."""
    return [
        Guardrail("precision-floor", "false_positive_rate",
                  max_false_positive_rate, comparator="max"),
        Guardrail("recall-floor", "recall", min_recall, comparator="min"),
        Guardrail("collateral-ceiling", "collateral_fraction",
                  max_collateral_fraction, comparator="max"),
    ]
