"""The staged road-testing pipeline.

Each phase runs the candidate tool against a *fresh* day of campus
traffic (new seed, same scenario family):

1. **shadow** — the tool observes and decides but never acts; its
   would-be verdicts are scored against ground truth.
2. **canary** — the tool acts, but with a conservative binding
   (rate-limit instead of drop) and short mitigation lifetimes.
3. **full** — the tool's intended bindings.

After every phase the guardrails run over the measured metrics; any
violation stops the pipeline and reports a rollback — the tool never
reaches the next phase.  This is the contract that makes operators
willing to host researcher code (§4).
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.deploy.switch import SwitchConfig
from repro.testbed.guardrails import Guardrail, GuardrailViolation
from repro.testbed.slo import evaluate_detections, measure_collateral


class DeploymentPhase(enum.Enum):
    SHADOW = "shadow"
    CANARY = "canary"
    FULL = "full"


@dataclass
class PhaseResult:
    """Metrics and verdict for one phase."""

    phase: DeploymentPhase
    metrics: Dict[str, float]
    violations: List[GuardrailViolation]
    detections: int

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass
class RoadTestReport:
    """The full pipeline outcome."""

    phases: List[PhaseResult] = field(default_factory=list)
    deployed: bool = False
    rolled_back_at: Optional[DeploymentPhase] = None

    def phase(self, phase: DeploymentPhase) -> Optional[PhaseResult]:
        for result in self.phases:
            if result.phase == phase:
                return result
        return None


class RoadTestPipeline:
    """Runs a candidate deployment through shadow/canary/full.

    Parameters
    ----------
    run_factory:
        ``run_factory(seed) -> (network, scenario)`` building a fresh
        campus + scenario; the pipeline runs the scenario itself.
    deploy_fn:
        ``deploy_fn(network, config) -> EmulatedSwitch`` installing the
        candidate tool with the given runtime config.
    base_config:
        The tool's intended (full-deployment) configuration.
    guardrails:
        Promotion criteria applied after every phase.
    """

    def __init__(self, run_factory: Callable, deploy_fn: Callable,
                 base_config: SwitchConfig, guardrails: List[Guardrail],
                 run_scenario_fn: Optional[Callable] = None):
        from repro.events.scenario import run_scenario as default_runner

        self.run_factory = run_factory
        self.deploy_fn = deploy_fn
        self.base_config = base_config
        self.guardrails = guardrails
        self._run_scenario = run_scenario_fn or default_runner

    def _config_for(self, phase: DeploymentPhase) -> SwitchConfig:
        config = copy.deepcopy(self.base_config)
        if phase is DeploymentPhase.SHADOW:
            config.shadow = True
        elif phase is DeploymentPhase.CANARY:
            config.shadow = False
            config.bindings = {"*": ("rate_limit", 5_000_000.0)}
            config.mitigation_duration_s = min(
                config.mitigation_duration_s, 10.0)
        return config

    def _run_phase(self, phase: DeploymentPhase, seed: int) -> PhaseResult:
        network, scenario = self.run_factory(seed)
        flows: List = []
        network.add_flow_observer(flows.append)
        switch = self.deploy_fn(network, self._config_for(phase))
        ground_truth = self._run_scenario(network, scenario, seed=seed)

        quality = evaluate_detections(switch.detections, ground_truth)
        all_flows = flows + list(network.flows.blocked_flows)
        collateral = measure_collateral(all_flows, switch.mitigation_log)
        metrics: Dict[str, float] = {
            "precision": quality.precision,
            "recall": quality.recall,
            "f1": quality.f1,
            "false_positive_rate": 1.0 - quality.precision
            if switch.detections else 0.0,
            "collateral_fraction": collateral.collateral_fraction,
            "attack_coverage": collateral.attack_coverage,
            "detections": float(len(switch.detections)),
        }
        if quality.detection_delay_s is not None:
            metrics["detection_delay_s"] = quality.detection_delay_s
        violations = [
            violation for guardrail in self.guardrails
            if (violation := guardrail.check(metrics)) is not None
        ]
        return PhaseResult(
            phase=phase,
            metrics=metrics,
            violations=violations,
            detections=len(switch.detections),
        )

    def run(self, seed: int = 0) -> RoadTestReport:
        """Execute all phases, stopping at the first violation."""
        report = RoadTestReport()
        for offset, phase in enumerate(DeploymentPhase):
            result = self._run_phase(phase, seed + 1000 * (offset + 1))
            report.phases.append(result)
            if not result.passed:
                report.rolled_back_at = phase
                return report
        report.deployed = True
        return report
