"""Operator trust model.

§5 sketches the trust dynamic precisely: reviewing evidence the
operator agrees with raises trust; evidence describing scenarios the
operator did not know about — later recognised as correct — raises it
even more ("a learning model that teaches operators things they know
they didn't know"); incorrect decisions hurt badly.  The model is a
bounded score driven by reviewed decisions and their evidence quality;
experiment E9 tracks its trajectory across a road-test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class ReviewOutcome(enum.Enum):
    AGREED = "agreed"                 # operator would have done the same
    SURPRISED_CORRECT = "surprised_correct"   # new-to-operator, and right
    INCORRECT = "incorrect"           # the model was wrong


@dataclass
class ReviewEvent:
    outcome: ReviewOutcome
    evidence_strength: float
    trust_after: float


class OperatorTrustModel:
    """Bounded trust score updated by evidence review.

    Update rule (all gains scaled by evidence strength in [0, 1]):

    * AGREED: +gain_agree * strength * (1 - trust)
    * SURPRISED_CORRECT: +gain_surprise * strength * (1 - trust)
    * INCORRECT: -loss_incorrect * trust

    Asymmetric by design — trust is slow to build, fast to lose.
    """

    def __init__(self, initial_trust: float = 0.2, gain_agree: float = 0.05,
                 gain_surprise: float = 0.15, loss_incorrect: float = 0.35,
                 deploy_threshold: float = 0.7):
        if not 0 <= initial_trust <= 1:
            raise ValueError("initial trust must be in [0,1]")
        self.trust = float(initial_trust)
        self.gain_agree = gain_agree
        self.gain_surprise = gain_surprise
        self.loss_incorrect = loss_incorrect
        self.deploy_threshold = deploy_threshold
        self.history: List[ReviewEvent] = []

    def review(self, outcome: ReviewOutcome,
               evidence_strength: float = 1.0) -> float:
        """Record one reviewed decision; returns the new trust level."""
        strength = min(max(evidence_strength, 0.0), 1.0)
        if outcome is ReviewOutcome.AGREED:
            self.trust += self.gain_agree * strength * (1.0 - self.trust)
        elif outcome is ReviewOutcome.SURPRISED_CORRECT:
            self.trust += self.gain_surprise * strength * (1.0 - self.trust)
        elif outcome is ReviewOutcome.INCORRECT:
            self.trust -= self.loss_incorrect * self.trust
        self.trust = min(max(self.trust, 0.0), 1.0)
        self.history.append(ReviewEvent(outcome, strength, self.trust))
        return self.trust

    def review_evidence(self, evidence, correct: bool,
                        surprising: bool = False) -> float:
        """Review a :class:`repro.xai.evidence.DecisionEvidence`."""
        if not correct:
            outcome = ReviewOutcome.INCORRECT
        elif surprising:
            outcome = ReviewOutcome.SURPRISED_CORRECT
        else:
            outcome = ReviewOutcome.AGREED
        return self.review(outcome, evidence_strength=evidence.strength)

    @property
    def would_deploy(self) -> bool:
        return self.trust >= self.deploy_threshold

    def trajectory(self) -> List[float]:
        return [event.trust_after for event in self.history]
