"""Detection-quality and collateral-damage measurement.

Everything here scores a deployed tool against the simulator's ground
truth — the evaluation the paper says academics cannot do without a
production network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class DetectionQuality:
    """Endpoint-level detection scoring for one run."""

    true_positives: int
    false_positives: int
    actors_total: int
    actors_detected: int
    detection_delay_s: Optional[float]

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        return (self.actors_detected / self.actors_total
                if self.actors_total else 0.0)

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_detections(detections: Sequence, ground_truth,
                        slack_s: float = 30.0) -> DetectionQuality:
    """Score switch detections against event windows.

    A detection is a true positive if its window overlaps (within
    ``slack_s``) an event window listing the detected endpoint as an
    actor.  Recall counts distinct (window, actor) pairs detected.
    ``detection_delay_s`` is the mean delay from event start to the
    first true-positive detection of each event.
    """
    true_positives = 0
    false_positives = 0
    detected_actors: Set[Tuple[int, str]] = set()
    first_detection: Dict[int, float] = {}

    for detection in detections:
        hit = False
        for i, window in enumerate(ground_truth.windows):
            if detection.endpoint not in window.actors:
                continue
            if (window.start_time - slack_s <= detection.window_start
                    <= window.end_time + slack_s):
                hit = True
                detected_actors.add((i, detection.endpoint))
                first = first_detection.get(i)
                if first is None or detection.decided_at < first:
                    first_detection[i] = detection.decided_at
        if hit:
            true_positives += 1
        else:
            false_positives += 1

    actors_total = sum(len(w.actors) for w in ground_truth.windows)
    delays = [
        first_detection[i] - ground_truth.windows[i].start_time
        for i in first_detection
    ]
    return DetectionQuality(
        true_positives=true_positives,
        false_positives=false_positives,
        actors_total=actors_total,
        actors_detected=len(detected_actors),
        detection_delay_s=(sum(delays) / len(delays)) if delays else None,
    )


@dataclass
class CollateralReport:
    """How much benign traffic the tool harmed."""

    benign_flows_total: int
    benign_flows_hit: int
    attack_flows_total: int
    attack_flows_hit: int

    @property
    def collateral_fraction(self) -> float:
        return (self.benign_flows_hit / self.benign_flows_total
                if self.benign_flows_total else 0.0)

    @property
    def attack_coverage(self) -> float:
        return (self.attack_flows_hit / self.attack_flows_total
                if self.attack_flows_total else 0.0)


def measure_collateral(flows: Sequence, mitigated_endpoints: Dict[str, float]) \
        -> CollateralReport:
    """Count benign/attack flows touching a mitigated endpoint.

    ``flows`` are completed simulator flows (ground-truth labels);
    ``mitigated_endpoints`` maps endpoint IP -> mitigation-effective
    time.  A flow is "hit" if it involves a mitigated endpoint and was
    alive after the mitigation took effect.
    """
    benign_total = benign_hit = attack_total = attack_hit = 0
    for flow in flows:
        is_attack = flow.label != "benign"
        if is_attack:
            attack_total += 1
        else:
            benign_total += 1
        for endpoint in (flow.key.src_ip, flow.key.dst_ip):
            effective = mitigated_endpoints.get(endpoint)
            if effective is not None and flow.end_time is not None \
                    and flow.end_time >= effective:
                if is_attack:
                    attack_hit += 1
                else:
                    benign_hit += 1
                break
    return CollateralReport(
        benign_flows_total=benign_total,
        benign_flows_hit=benign_hit,
        attack_flows_total=attack_total,
        attack_flows_hit=attack_hit,
    )
