"""Road-testing: shadow -> canary -> full deployment with guardrails.

§4's evaluation problem: operators "are opposed to deploying
untrustworthy tools in their production network".  The testbed makes
the campus network usable for exactly the staged evaluation the paper
proposes:

* :mod:`repro.testbed.slo` — detection-quality and collateral metrics
  measured against ground truth.
* :mod:`repro.testbed.guardrails` — SLO guardrails with rollback.
* :mod:`repro.testbed.roadtest` — the staged pipeline (shadow mode ->
  canary -> full deployment), each phase on a fresh day of campus
  traffic.
* :mod:`repro.testbed.trust` — an operator-trust model driven by
  evidence review (§5's "a learning model that teaches operators
  things they know they didn't know").
"""

from repro.testbed.slo import DetectionQuality, evaluate_detections, \
    CollateralReport, measure_collateral
from repro.testbed.guardrails import Guardrail, GuardrailViolation, \
    standard_guardrails
from repro.testbed.roadtest import (
    DeploymentPhase,
    PhaseResult,
    RoadTestPipeline,
    RoadTestReport,
)
from repro.testbed.trust import OperatorTrustModel, ReviewOutcome

__all__ = [
    "DetectionQuality",
    "evaluate_detections",
    "CollateralReport",
    "measure_collateral",
    "Guardrail",
    "GuardrailViolation",
    "standard_guardrails",
    "DeploymentPhase",
    "PhaseResult",
    "RoadTestPipeline",
    "RoadTestReport",
    "OperatorTrustModel",
    "ReviewOutcome",
]
