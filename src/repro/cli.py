"""Command-line interface.

The workflows a campus researcher runs day to day, without writing a
script:

* ``repro run-day`` — simulate one instrumented campus day (with
  optional labeled attacks) and export the data store to a directory.
* ``repro ingest`` — the streaming path: capture batches flow through
  a bounded queue (accounted backpressure) into a tiered store whose
  cold segments persist under ``--spill``; ``--summary-only`` reopens
  an existing spill directory with verified checksums.
* ``repro inspect`` — summarize an exported store.
* ``repro train`` — featurize an exported store (using its curated
  labels) and train/evaluate a registry model.
* ``repro develop`` — run the full development loop on an exported
  store and emit the deployable artifacts (P4 source + rule list).
* ``repro query`` — run a planned query against an exported store:
  exact record fetches, sketch-backed approximate aggregates
  (``--count``/``--distinct``/``--top`` with ``--approx``), and the
  planner's EXPLAIN tree (``--explain``).
* ``repro verify`` — static verification of a compiled tool
  (``REPxxx`` diagnostics) or the repo-wide AST lint (``--lint``).
* ``repro chaos`` — run a scenario under a named fault plan and print
  the degradation report (which stages degraded, what recovered).
* ``repro obs`` — per-stage latency/throughput report from a recorded
  observability file (``--run``) or from one fully-observed seeded
  day (``--pipeline``); ``run-day``/``train``/``develop`` record one
  with ``--obs PATH``.
* ``repro profiles`` — list available campus profiles.

Examples
--------
::

    repro run-day --profile small --seed 7 --duration 300 \\
        --attack dns-amp --attack scan --out /tmp/day1
    repro train --store /tmp/day1 --model forest --positive ddos-dns-amp
    repro develop --store /tmp/day1 --positive ddos-dns-amp \\
        --out /tmp/tool
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

ATTACKS = {
    "dns-amp": ("DnsAmplificationAttack", {"attack_gbps": 0.08}),
    "ntp-amp": ("NtpAmplificationAttack", {"attack_gbps": 0.01}),
    "scan": ("PortScanAttack", {"probes_per_s": 40.0}),
    "synflood": ("SynFloodAttack", {}),
    "bruteforce": ("SshBruteForceAttack", {"attempts_per_s": 4.0}),
    "exfil": ("DataExfiltration", {}),
}

#: CLI attack names that have a fluid-overlay counterpart.
FLUID_ATTACKS = {"dns-amp": "ddos", "scan": "scan", "exfil": "exfil"}


def _add_fluid_args(parser) -> None:
    """Shared fluid-engine scale knobs (``ingest --fluid``, ``simulate``)."""
    parser.add_argument("--users", type=int, default=10_000,
                        help="population size for the fluid engine "
                             "(cohort aggregation makes 10^6 routine)")
    parser.add_argument("--cohorts", type=int, default=32,
                        help="behavior cohorts the population "
                             "aggregates into")
    parser.add_argument("--tick", type=float, default=60.0,
                        help="fluid tick length in simulated seconds")
    parser.add_argument("--tap-sample", type=float, default=1.0,
                        dest="tap_sample",
                        help="probability a border flow is expanded "
                             "into tap packets (demand accounting "
                             "always covers the full population)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campus-network platform for AI/ML networking "
                    "research (HotNets'19 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run-day", help="simulate and export one day")
    run.add_argument("--profile", default="small")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--duration", type=float, default=300.0,
                     help="day length in simulated seconds")
    run.add_argument("--attack", action="append", default=[],
                     choices=sorted(ATTACKS),
                     help="inject a labeled attack (repeatable)")
    run.add_argument("--scenario", default=None,
                     help="use a named scenario from the library "
                          "instead of --attack flags "
                          "(see `repro scenarios`)")
    run.add_argument("--privacy", default="prefix",
                     choices=["none", "prefix", "stripped", "aggregates"])
    run.add_argument("--shards", type=int, default=1,
                     help="data-store shard count (>1 partitions by "
                          "time window x flow hash)")
    run.add_argument("--workers", type=int, default=0,
                     help="worker processes for ingest/featurize "
                          "(0 = serial)")
    run.add_argument("--out", required=True, help="export directory")
    run.add_argument("--obs", default=None, metavar="PATH",
                     help="record observability (metrics + spans) to "
                          "this JSON-lines file")

    ingest = sub.add_parser(
        "ingest",
        help="stream one simulated day through the tiered store "
             "(bounded queue -> memtable -> warm runs -> cold mmap)")
    ingest.add_argument("--profile", default="small")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--duration", type=float, default=300.0,
                        help="day length in simulated seconds")
    ingest.add_argument("--attack", action="append", default=[],
                        choices=sorted(ATTACKS),
                        help="inject a labeled attack (repeatable)")
    ingest.add_argument("--scenario", default=None,
                        help="use a named scenario from the library "
                             "instead of --attack flags")
    ingest.add_argument("--privacy", default="prefix",
                        choices=["none", "prefix", "stripped",
                                 "aggregates"])
    ingest.add_argument("--shards", type=int, default=1,
                        help="tiered-store shard count (each shard "
                             "owns its own memtable and cold dir)")
    ingest.add_argument("--spill", default=None, metavar="DIR",
                        help="cold-tier directory (registry.json + "
                             "mmap segments); omit to keep every tier "
                             "in memory.  Re-running with the same "
                             "directory resumes the store from disk.")
    ingest.add_argument("--memtable", type=int, default=8_192,
                        help="hot-tier memtable size in records")
    ingest.add_argument("--queue", type=int, default=65_536,
                        help="ingest-queue capacity in records; full "
                             "queues refuse batches (accounted "
                             "backpressure, never silent loss)")
    ingest.add_argument("--flush-cold", action="store_true",
                        help="age every tier into cold mmap segments "
                             "before exit (store survives restarts)")
    ingest.add_argument("--summary-only", action="store_true",
                        help="skip simulation: reopen --spill "
                             "(verifying checksums) and print its "
                             "tier summary")
    ingest.add_argument("--json", action="store_true",
                        help="emit the tier summary as JSON")
    ingest.add_argument("--fluid", action="store_true",
                        help="generate the day with the fluid "
                             "population engine (tap-side columnar "
                             "synthesis) instead of the discrete "
                             "per-user simulator")
    _add_fluid_args(ingest)

    simulate = sub.add_parser(
        "simulate",
        help="fluid generation only: run the population engine and "
             "report rates (no capture, no store)")
    simulate.add_argument("--profile", default="small")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--duration", type=float, default=3600.0,
                          help="simulated seconds")
    simulate.add_argument("--attack", action="append", default=[],
                          choices=sorted(FLUID_ATTACKS),
                          help="superimpose a labeled event overlay "
                               "(repeatable)")
    simulate.add_argument("--json", action="store_true")
    _add_fluid_args(simulate)

    inspect = sub.add_parser("inspect", help="summarize an exported store")
    inspect.add_argument("--store", required=True)

    query = sub.add_parser(
        "query",
        help="run a planned query (or EXPLAIN it) on an exported store")
    query.add_argument("--store", required=True)
    query.add_argument("--collection", default="packets")
    query.add_argument("--where", action="append", default=[],
                       metavar="FIELD=VALUE",
                       help="exact-match filter, repeatable; integer "
                            "and float values are auto-coerced")
    query.add_argument("--since", type=float, default=None,
                       help="inclusive lower time bound (seconds)")
    query.add_argument("--until", type=float, default=None,
                       help="inclusive upper time bound (seconds)")
    query.add_argument("--limit", type=int, default=10,
                       help="max records printed (record mode)")
    query.add_argument("--count", action="store_true",
                       help="COUNT(*) of matches instead of records")
    query.add_argument("--distinct", default=None, metavar="FIELD",
                       help="count distinct values of FIELD")
    query.add_argument("--top", default=None, metavar="FIELD",
                       help="heavy hitters of FIELD")
    query.add_argument("--k", type=int, default=8,
                       help="how many heavy hitters (with --top)")
    query.add_argument("--approx", type=float, default=None,
                       metavar="REL",
                       help="let aggregates answer from sketches when "
                            "the error bound fits this relative budget "
                            "(e.g. 0.01); exact without it")
    query.add_argument("--no-stats", action="store_true",
                       help="skip building per-segment planner stats "
                            "(disables stats pruning and sketches)")
    query.add_argument("--explain", action="store_true",
                       help="print the plan without executing it")
    query.add_argument("--json", action="store_true",
                       help="emit results as JSON")

    train = sub.add_parser("train", help="train a model on a store")
    train.add_argument("--store", required=True)
    train.add_argument("--model", default="forest")
    train.add_argument("--positive", default=None,
                       help="binarize against this class")
    train.add_argument("--window", type=float, default=5.0)
    train.add_argument("--workers", type=int, default=0,
                       help="worker processes for featurization "
                            "(0 = serial)")
    train.add_argument("--obs", default=None, metavar="PATH",
                       help="record observability (metrics + spans) to "
                            "this JSON-lines file")

    develop = sub.add_parser("develop",
                             help="full development loop on a store")
    develop.add_argument("--store", required=True)
    develop.add_argument("--positive", required=True)
    develop.add_argument("--teacher", default="forest")
    develop.add_argument("--max-depth", type=int, default=4)
    develop.add_argument("--workers", type=int, default=0,
                         help="worker processes for featurization "
                              "(0 = serial)")
    develop.add_argument("--out", required=True,
                         help="directory for P4 source and rule list")
    develop.add_argument("--obs", default=None, metavar="PATH",
                         help="record observability (metrics + spans) "
                              "to this JSON-lines file")

    verify = sub.add_parser(
        "verify",
        help="static verification of a compiled program, or the "
             "repo-wide AST lint")
    verify.add_argument("--store", default=None,
                        help="compile a tool from this exported store "
                             "and verify it")
    verify.add_argument("--positive", default=None,
                        help="class to binarize against (with --store)")
    verify.add_argument("--teacher", default="tree")
    verify.add_argument("--max-depth", type=int, default=4)
    verify.add_argument("--lint", action="store_true",
                        help="run the static-analysis suite (REP3xx "
                             "patterns, REP4xx privacy taint, REP5xx "
                             "parallel safety) instead of program "
                             "verification")
    verify.add_argument("--path", default=None,
                        help="lint root (default: the installed repro "
                             "package)")
    verify.add_argument("--update-baseline", action="store_true",
                        help="with --lint: record every current finding "
                             "in the committed baseline instead of "
                             "reporting (existing justifications are "
                             "preserved)")
    verify.add_argument("--json", action="store_true",
                        help="emit the diagnostic report as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run a scenario under a named fault plan and report "
             "degradation")
    chaos.add_argument("--plan", required=True,
                       help="fault plan: lossy-tap, slow-store, or "
                            "flaky-switch")
    chaos.add_argument("--profile", default="tiny")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=90.0,
                       help="scenario length in simulated seconds")
    chaos.add_argument("--json", action="store_true",
                       help="emit the degradation report as JSON")

    federate = sub.add_parser(
        "federate",
        help="N-campus federated analytics behind per-site privacy "
             "gateways")
    fed_sub = federate.add_subparsers(dest="federate_command",
                                      required=True)

    fed_query = fed_sub.add_parser(
        "query",
        help="fan a DP-noised aggregate across all sites and merge "
             "with a composed error bound")
    fed_query.add_argument("--sites", type=int, default=3)
    fed_query.add_argument("--seed", type=int, default=0)
    fed_query.add_argument("--epsilon", type=float, default=0.2,
                           help="per-site epsilon charged for this "
                                "query")
    fed_query.add_argument("--budget", type=float, default=1.0,
                           help="per-site total DP budget")
    fed_query.add_argument("--duration", type=float, default=120.0,
                           help="per-site day length in simulated "
                                "seconds")
    fed_query.add_argument("--collection", default="packets")
    fed_query.add_argument("--kind", default="count",
                           choices=["count", "histogram",
                                    "heavy-hitters"])
    fed_query.add_argument("--field", default="src_ip",
                           help="field for histogram / heavy-hitters")
    fed_query.add_argument("--top", type=int, default=8,
                           help="k for heavy-hitters")
    fed_query.add_argument("--fault-plan", default=None,
                           help="chaos plan at every site (e.g. "
                                "flaky-site)")
    fed_query.add_argument("--kill-site", type=int, default=None,
                           metavar="I",
                           help="take site I dark at its first "
                                "boundary call")
    fed_query.add_argument("--json", action="store_true")
    fed_query.add_argument("--obs", default=None, metavar="PATH",
                           help="record observability to this "
                                "JSON-lines file")

    fed_e2e = fed_sub.add_parser(
        "e2e",
        help="assemble a cross-site dataset, develop one tool, "
             "road-test it at every campus")
    fed_e2e.add_argument("--sites", type=int, default=3)
    fed_e2e.add_argument("--seed", type=int, default=0)
    fed_e2e.add_argument("--epsilon", type=float, default=2.0,
                         help="per-site total DP budget")
    fed_e2e.add_argument("--duration", type=float, default=180.0,
                         help="per-site day length in simulated "
                              "seconds")
    fed_e2e.add_argument("--model", default="forest",
                         help="teacher model for the federated tool")
    fed_e2e.add_argument("--no-roadtest", action="store_true",
                         help="skip the per-site road-test stage")
    fed_e2e.add_argument("--fault-plan", default=None,
                         help="chaos plan at every training site")
    fed_e2e.add_argument("--json", action="store_true")
    fed_e2e.add_argument("--obs", default=None, metavar="PATH",
                         help="record observability to this "
                              "JSON-lines file")

    obs = sub.add_parser(
        "obs",
        help="per-stage latency/throughput report from recorded "
             "observability")
    obs.add_argument("--run", default=None, metavar="PATH",
                     help="render the report from this obs JSON-lines "
                          "file (as written by --obs / --out)")
    obs.add_argument("--pipeline", action="store_true",
                     help="run one fully-observed seeded day (both "
                          "loops) and report it")
    obs.add_argument("--profile", default="small")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--duration", type=float, default=60.0,
                     help="scenario length in simulated seconds "
                          "(with --pipeline)")
    obs.add_argument("--workers", type=int, default=2,
                     help="worker processes (with --pipeline)")
    obs.add_argument("--shards", type=int, default=2,
                     help="data-store shards (with --pipeline)")
    obs.add_argument("--out", default=None, metavar="PATH",
                     help="also write the records as JSON-lines here "
                          "(with --pipeline)")
    obs.add_argument("--prom", action="store_true",
                     help="emit metrics in Prometheus exposition "
                          "format instead of the report")
    obs.add_argument("--json", action="store_true",
                     help="emit the report as JSON")

    report = sub.add_parser("report",
                            help="IT-style Markdown report for a store")
    report.add_argument("--store", required=True)

    sub.add_parser("profiles", help="list campus profiles")
    sub.add_parser("scenarios", help="list library scenarios")
    return parser


def _emit_report(report, as_json: bool) -> None:
    """Shared rendering for report-producing commands (chaos, obs).

    Every report object exposes ``render()`` (human text) and
    ``render_json()``; the flag picks which one reaches stdout.
    """
    print(report.render_json() if as_json else report.render())


def _obs_or_none(args):
    """Build an Observability when the command got ``--obs PATH``."""
    if getattr(args, "obs", None) is None:
        return None
    from repro.obs import Observability

    return Observability()


def _write_obs(obs, meta: dict, path: str) -> None:
    """Dump one run's observability records as JSON-lines."""
    from repro.obs.export import obs_records, write_jsonl

    write_jsonl(obs_records(obs, meta), path)
    print(f"wrote observability records to {path}")


def _scenario_from_args(args):
    import repro.events as events

    if getattr(args, "scenario", None):
        return events.make_scenario(args.scenario,
                                    duration_s=args.duration)
    scenario = events.Scenario("cli-day", duration_s=args.duration)
    n = max(len(args.attack), 1)
    for i, name in enumerate(args.attack):
        cls_name, kwargs = ATTACKS[name]
        generator_cls = getattr(events, cls_name)
        start = args.duration * (i + 0.5) / (n + 0.5)
        duration = min(args.duration * 0.15, 60.0)
        scenario.add(generator_cls, start, duration, **kwargs)
    return scenario


def cmd_run_day(args) -> int:
    """Simulate one campus day and export its data store."""
    from repro.core import CampusPlatform, PlatformConfig
    from repro.datastore import export_store
    from repro.privacy import PrivacyLevel

    level = {p.value: p for p in PrivacyLevel}[args.privacy]
    obs = _obs_or_none(args)
    platform = CampusPlatform(PlatformConfig(
        campus_profile=args.profile, seed=args.seed, privacy_level=level,
        store_shards=args.shards, workers=args.workers,
        obs_enabled=obs is not None), obs=obs)
    try:
        scenario = _scenario_from_args(args)
        result = platform.collect(scenario, seed=args.seed)
        export_store(platform.store, args.out)
    finally:
        platform.close()
    if obs is not None:
        _write_obs(obs, {"command": "run-day", "profile": args.profile,
                         "seed": args.seed,
                         "packets_captured": result.packets_captured},
                   args.obs)
    print(f"captured {result.packets_captured} packets "
          f"({result.capture_loss_rate:.1%} loss), "
          f"{result.flows_stored} flows, {result.logs_stored} logs")
    if args.shards > 1:
        shard_counts = [part["records"]
                        for part in platform.store.shard_summary()]
        print(f"shards: {shard_counts}")
    print(f"exported store to {args.out}")
    return 0


def _reopen_tiered(spill: str):
    """Reopen a spill directory written by ``repro ingest``.

    A sharded run leaves ``shard-<i>`` subdirectories under the root;
    a single-store run leaves ``registry.json`` at the root.  Either
    way reopening verifies every cold segment's checksums.
    """
    from repro.datastore.tiers import TieredDataStore, \
        TieredShardedDataStore

    root = Path(spill)
    shard_dirs = sorted(root.glob("shard-*"))
    if shard_dirs:
        return TieredShardedDataStore(n_shards=len(shard_dirs),
                                      spill_dir=root)
    return TieredDataStore(spill_dir=root)


def _emit_tier_summary(summary: dict, as_json: bool,
                       extra: Optional[dict] = None) -> None:
    if as_json:
        payload = dict(summary)
        if extra:
            payload.update(extra)
        print(json.dumps(payload, indent=2, default=str))
        return
    for tier in ("hot", "warm", "cold"):
        row = summary[tier]
        print(f"{tier:5s} {row['segments']:4d} segment(s) "
              f"{row['records']:8d} record(s) {row['bytes']:12d} bytes")
    print(f"compaction debt: {summary['compaction_debt']} op(s)")


def _fluid_engine_from_args(args):
    """Build a fluid engine + ground truth + overlays from CLI args."""
    from repro.events import GroundTruth, add_fluid_event
    from repro.netsim.campus import make_fluid_campus

    engine = make_fluid_campus(
        args.profile, n_users=args.users, seed=args.seed,
        n_cohorts=args.cohorts, tick_seconds=args.tick,
        tap_sample=args.tap_sample)
    ground_truth = GroundTruth()
    attacks = [a for a in args.attack if a in FLUID_ATTACKS]
    skipped = [a for a in args.attack if a not in FLUID_ATTACKS]
    if skipped:
        print(f"ingest: no fluid overlay for {', '.join(skipped)}; "
              f"skipped", file=sys.stderr)
    n = max(len(attacks), 1)
    for i, name in enumerate(attacks):
        start = engine.config.start_time \
            + args.duration * (i + 0.5) / (n + 0.5)
        duration = min(args.duration * 0.15, 60.0)
        add_fluid_event(engine, ground_truth, FLUID_ATTACKS[name],
                        start, duration, seed=args.seed + i)
    return engine, ground_truth


def _cmd_ingest_fluid(args) -> int:
    """The million-user path: fluid tap batches stream straight into
    the tiered store as columns (capture -> bounded queue -> memtable),
    no per-packet record objects until the store wraps them."""
    if args.shards > 1:
        print("ingest: --fluid does not support --shards > 1",
              file=sys.stderr)
        return 2
    from repro.capture.engine import CaptureEngine
    from repro.capture.metadata import MetadataExtractor
    from repro.datastore.tiers import StreamingIngestor, TieredDataStore, \
        TierPolicy

    store = TieredDataStore(
        metadata_extractor=MetadataExtractor(),
        policy=TierPolicy(memtable_records=args.memtable),
        spill_dir=args.spill)
    if args.privacy != "none":
        from repro.privacy import PrivacyLevel, PrivacyPolicy, \
            make_ingest_transform

        level = {p.value: p for p in PrivacyLevel}[args.privacy]
        policy = PrivacyPolicy.preset(level)
        store.add_ingest_transform(make_ingest_transform(
            policy, lambda ip: ip.startswith("10.")))
    capture = CaptureEngine()
    # Not auto-subscribed: a fluid tick batch can dwarf the queue, so
    # the deliverer slices it to queue-sized chunks and pumps between
    # slices — the queue stays bounded without wholesale rejections,
    # and genuine stalls still surface as accounted backpressure.
    ingestor = StreamingIngestor(store, queue_records=args.queue)
    ingestor.engine = capture
    engine, _ = _fluid_engine_from_args(args)
    chunk = max(args.queue, 1)

    def deliver(cols) -> None:
        captured = capture.ingest_columns(cols)
        n = len(captured)
        for lo in range(0, n, chunk):
            ingestor(captured.slice(lo, min(lo + chunk, n)))
            ingestor.pump()

    engine.add_packet_observer(deliver)
    summary_run = engine.run(args.duration)
    ingestor.drain()
    if args.flush_cold:
        store.flush_to_cold()
        store.compactor.run()
    summary = store.tier_summary()
    extra = {
        "users": args.users,
        "flows": summary_run.total_flows,
        "captured": capture.stats.packets_captured,
        "backpressure_dropped":
            capture.stats.packets_backpressure_dropped,
        "queue_accepted": ingestor.queue.accepted_records,
        "queue_rejected": ingestor.queue.rejected_records,
    }
    if args.json:
        _emit_tier_summary(summary, True, extra)
    else:
        print(f"fluid day: {args.users} users, "
              f"{summary_run.total_flows} border flows, "
              f"{capture.stats.packets_captured} packets captured "
              f"({capture.stats.packets_backpressure_dropped} refused "
              f"by the ingest queue)")
        _emit_tier_summary(summary, False)
        if args.spill:
            print(f"cold tier persisted under {args.spill}")
    return 0


def cmd_simulate(args) -> int:
    """Fluid generation only: run the engine, report rates."""
    engine, ground_truth = _fluid_engine_from_args(args)
    packets = 0
    batches = 0

    def count(cols) -> None:
        nonlocal packets, batches
        packets += len(cols)
        batches += 1

    engine.add_packet_observer(count)
    summary = engine.run(args.duration)
    rate = packets / args.duration if args.duration else 0.0
    if args.json:
        print(json.dumps({
            "users": args.users,
            "cohorts": engine.cohorts.n_cohorts,
            "duration_s": args.duration,
            "border_flows": summary.total_flows,
            "tap_flows": summary.total_tap_flows,
            "tap_packets": summary.total_packets,
            "bytes_drained": summary.total_bytes,
            "packets_per_sim_second": rate,
            "events": [w.label for w in ground_truth.windows],
        }, indent=2))
    else:
        print(f"{args.users} users -> {engine.cohorts.n_cohorts} cohorts, "
              f"{args.duration:.0f}s simulated")
        print(f"border flows: {summary.total_flows}  "
              f"tap flows: {summary.total_tap_flows}  "
              f"tap packets: {summary.total_packets} "
              f"({rate:.0f} pkt/sim-s in {batches} batches)")
        print(f"bytes drained through the uplink model: "
              f"{summary.total_bytes:.3e}")
        for window in ground_truth.windows:
            print(f"event {window.label}: "
                  f"t=[{window.start_time:.0f}, {window.end_time:.0f}]")
    return 0


def cmd_ingest(args) -> int:
    """Stream a simulated day into the tiered store; report the tiers.

    Exit code 0 on success, 2 on malformed arguments (e.g.
    ``--summary-only`` without ``--spill``).
    """
    if getattr(args, "fluid", False) and not args.summary_only:
        return _cmd_ingest_fluid(args)
    if args.summary_only:
        if not args.spill:
            print("ingest: --summary-only needs --spill DIR",
                  file=sys.stderr)
            return 2
        store = _reopen_tiered(args.spill)
        _emit_tier_summary(store.tier_summary(), args.json)
        return 0
    if args.flush_cold and not args.spill:
        print("ingest: --flush-cold needs --spill DIR", file=sys.stderr)
        return 2

    from repro.core import CampusPlatform, PlatformConfig
    from repro.privacy import PrivacyLevel

    level = {p.value: p for p in PrivacyLevel}[args.privacy]
    platform = CampusPlatform(PlatformConfig(
        campus_profile=args.profile, seed=args.seed, privacy_level=level,
        store_shards=args.shards, streaming=True,
        streaming_queue_records=args.queue,
        streaming_memtable_records=args.memtable,
        streaming_spill_dir=args.spill))
    try:
        scenario = _scenario_from_args(args)
        result = platform.collect(scenario, seed=args.seed)
        if args.flush_cold:
            platform.store.flush_to_cold()
            platform.store.compactor.run()
        summary = platform.store.tier_summary()
        stats = platform.capture.stats
        queue = platform.ingestor.queue
    finally:
        platform.close()
    extra = {
        "captured": result.packets_captured,
        "backpressure_dropped": stats.packets_backpressure_dropped,
        "queue_accepted": queue.accepted_records,
        "queue_rejected": queue.rejected_records,
    }
    if args.json:
        _emit_tier_summary(summary, True, extra)
    else:
        print(f"captured {result.packets_captured} packets "
              f"({result.capture_loss_rate:.1%} loss, "
              f"{stats.packets_backpressure_dropped} refused by the "
              f"ingest queue)")
        _emit_tier_summary(summary, False)
        if args.spill:
            print(f"cold tier persisted under {args.spill}")
    return 0


def cmd_inspect(args) -> int:
    """Print an exported store's summary as JSON."""
    from repro.datastore import import_store

    store = import_store(args.store)
    print(json.dumps(store.summary(), indent=2, default=str))
    return 0


def _dataset_from_store(store_dir: str, window_s: float, workers: int = 0,
                        obs=None):
    from repro.datastore import import_store
    from repro.learning.features import FeatureConfig, \
        SourceWindowFeaturizer
    from repro.parallel import ParallelExecutor

    store = import_store(store_dir)
    if obs is not None:
        store.bind_obs(obs)
    featurizer = SourceWindowFeaturizer(FeatureConfig(window_s=window_s))
    with ParallelExecutor(workers=workers, obs=obs) as executor:
        if obs is None:
            return featurizer.from_store(store, executor=executor)
        with obs.span("devloop.featurize") as span:
            dataset = featurizer.from_store(store, executor=executor)
            span.set(rows=len(dataset))
        return dataset


def _parse_where(items: List[str]) -> dict:
    """``FIELD=VALUE`` pairs -> a Query.where dict, coercing numbers."""
    where = {}
    for item in items:
        fld, sep, raw = item.partition("=")
        if not sep or not fld:
            raise ValueError(item)
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        where[fld] = value
    return where


def _emit_answer(mode: str, answer, as_json: bool) -> None:
    """Render an AggregateAnswer (plus its plan's prune summary)."""
    plan = answer.plan
    if as_json:
        print(json.dumps({
            "mode": mode, "value": answer.value, "bound": answer.bound,
            "source": answer.source, "segments_scanned": plan.scanned,
            "segments_pruned": plan.pruned,
        }, indent=2, default=str))
        return
    if mode == "top":
        for value, count in answer.value:
            print(f"{count:>10d}  {value}")
        print(f"(source: {answer.source}, bound ±{answer.bound})")
    else:
        print(f"{mode}: {answer.value} ±{answer.bound} "
              f"(source: {answer.source})")
    pruned = sum(plan.pruned.values())
    print(f"segments: {plan.scanned} scanned, {pruned} pruned")


def cmd_query(args) -> int:
    """Planned query against an exported store.

    ``--explain`` prints the plan without executing.  Exit code 0 on a
    rendered answer, 2 on malformed arguments.
    """
    from repro.datastore import Query, import_store, within

    try:
        where = _parse_where(args.where)
    except ValueError as exc:
        print(f"query: malformed --where {exc.args[0]!r} "
              f"(want FIELD=VALUE)", file=sys.stderr)
        return 2
    modes = [m for m, on in [("count", args.count),
                             ("distinct", args.distinct),
                             ("top", args.top)] if on]
    if len(modes) > 1:
        print("query: --count, --distinct and --top are mutually "
              "exclusive", file=sys.stderr)
        return 2
    mode = modes[0] if modes else "records"

    time_range = None
    if args.since is not None or args.until is not None:
        time_range = (args.since, args.until)
    query = Query(
        collection=args.collection, time_range=time_range, where=where,
        limit=args.limit if mode == "records" else None,
        approx=within(args.approx) if args.approx is not None else None)

    store = import_store(args.store)
    if not args.no_stats:
        store.build_stats()

    if args.explain:
        print(store.explain(query))
        return 0
    if mode == "count":
        _emit_answer("count", store.count_matching(query), args.json)
    elif mode == "distinct":
        _emit_answer("distinct", store.distinct_count(query, args.distinct),
                     args.json)
    elif mode == "top":
        _emit_answer("top", store.heavy_hitters(query, args.top, k=args.k),
                     args.json)
    else:
        import dataclasses

        from repro.datastore.schema import SCHEMAS

        time_of = SCHEMAS[args.collection].time_of
        records = store.query(query)
        if args.json:
            print(json.dumps(
                [{"rid": s.rid, "time": time_of(s.record),
                  "tags": s.tags, "label": s.label,
                  "record": dataclasses.asdict(s.record)}
                 for s in records],
                indent=2, default=str))
        else:
            for stored in records:
                print(f"rid={stored.rid} t={time_of(stored.record):.3f} "
                      f"{stored.record}")
            print(f"({len(records)} record(s))")
    return 0


def cmd_train(args) -> int:
    """Featurize an exported store and train/evaluate a model."""
    from repro.learning import train_and_evaluate, train_test_split

    obs = _obs_or_none(args)
    dataset = _dataset_from_store(args.store, args.window,
                                  workers=args.workers, obs=obs)
    print(f"dataset: {len(dataset)} windows, "
          f"classes {dataset.class_counts()}")
    if args.positive:
        dataset = dataset.binarize(args.positive)
    if len(dataset) < 10:
        print("not enough windows to train", file=sys.stderr)
        return 1
    train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
    if obs is None:
        result = train_and_evaluate(args.model, train, test)
    else:
        with obs.span("devloop.train", model=args.model,
                      rows=len(train)):
            result = train_and_evaluate(args.model, train, test)
    print(result)
    if obs is not None:
        _write_obs(obs, {"command": "train", "model": args.model,
                         "rows": len(dataset)}, args.obs)
    return 0


def cmd_develop(args) -> int:
    """Run the development loop and emit deployable artifacts."""
    from repro.core import DevelopmentLoop

    obs = _obs_or_none(args)
    dataset = _dataset_from_store(args.store, 5.0, workers=args.workers,
                                  obs=obs)
    if args.positive not in dataset.class_names:
        known = ", ".join(dataset.class_names)
        print(f"class {args.positive!r} not in store (has: {known})",
              file=sys.stderr)
        return 1
    dataset = dataset.binarize(args.positive)
    loop = DevelopmentLoop(teacher_name=args.teacher,
                           student_max_depth=args.max_depth, obs=obs)
    tool, report = loop.develop(dataset, tool_name="cli-tool", seed=0)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / "tool.p4").write_text(tool.p4_source)
    (out / "rules.txt").write_text(tool.rules.render() + "\n")
    print(f"teacher: {report.teacher_result.metrics}")
    print(f"student fidelity: {report.holdout_fidelity.label_fidelity:.3f} "
          f"({report.distillation.n_leaves} leaves)")
    print(f"switch fit: {report.resource_fit.fits} "
          f"(TCAM {report.resource_fit.tcam_fraction:.1%})")
    print(f"wrote {out / 'tool.p4'} and {out / 'rules.txt'}")
    if obs is not None:
        _write_obs(obs, {"command": "develop", "teacher": args.teacher,
                         "rows": len(dataset)}, args.obs)
    return 0


def cmd_verify(args) -> int:
    """Static verification: compiled-program checks or the AST lint.

    Exit code 0 when no error-level diagnostics were found, 1
    otherwise — the contract CI and pre-deploy scripts rely on.
    """
    from repro.verify import ProgramVerificationError, lint_package, \
        lint_path, update_baseline

    if args.update_baseline and not args.lint:
        print("verify: --update-baseline requires --lint",
              file=sys.stderr)
        return 2
    if args.lint:
        if args.path:
            root = Path(args.path)
            if not root.is_dir():
                print(f"verify: lint path {args.path!r} is not a "
                      f"directory", file=sys.stderr)
                return 2
        else:
            root = None
        if args.update_baseline:
            count = update_baseline(root)
            print(f"verify: baseline updated ({count} entries)")
            return 0
        report = lint_path(root) if root is not None else lint_package()
    else:
        if not args.store or not args.positive:
            print("verify: either --lint or both --store and --positive "
                  "are required", file=sys.stderr)
            return 2
        from repro.core import DevelopmentLoop

        dataset = _dataset_from_store(args.store, 5.0)
        if args.positive not in dataset.class_names:
            known = ", ".join(dataset.class_names)
            print(f"class {args.positive!r} not in store (has: {known})",
                  file=sys.stderr)
            return 1
        dataset = dataset.binarize(args.positive)
        loop = DevelopmentLoop(teacher_name=args.teacher,
                               student_max_depth=args.max_depth,
                               strict_verify=False)
        _, devreport = loop.develop(dataset, tool_name="verify-tool",
                                    seed=0)
        report = devreport.verification

    _emit_report(report, args.json)
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    """Run a scenario under a fault plan; print the degradation report.

    Exit code 0 when the pipeline still produced a report (possibly
    degraded), 1 when it could not complete, 2 on an unknown plan.
    """
    from repro.chaos import FAULT_PLANS
    from repro.chaos.scenario import run_chaos_scenario

    if args.plan not in FAULT_PLANS:
        known = ", ".join(sorted(FAULT_PLANS))
        print(f"chaos: unknown fault plan {args.plan!r}; one of {known}",
              file=sys.stderr)
        return 2
    report = run_chaos_scenario(args.plan, profile=args.profile,
                                seed=args.seed, duration_s=args.duration)
    _emit_report(report, args.json)
    return 0 if report.completed else 1


_FED_ATTACK_ROTATION = ("dns-amp", "scan", "synflood")


def _fed_site_plan(args, site_id: int):
    """Resolve the chaos plan one federated site runs under."""
    from repro.chaos import FAULT_PLANS, make_fault_plan
    from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec

    if getattr(args, "kill_site", None) is not None \
            and args.kill_site == site_id:
        return FaultPlan(name="kill-site", seed=args.seed, specs=(
            FaultSpec(FaultKind.SITE_OUTAGE, rate=1.0),))
    if args.fault_plan is None:
        return None
    if args.fault_plan not in FAULT_PLANS:
        known = ", ".join(sorted(FAULT_PLANS))
        raise KeyError(f"unknown fault plan {args.fault_plan!r}; "
                       f"one of {known}")
    return make_fault_plan(args.fault_plan, seed=args.seed)


def cmd_federate_query(args) -> int:
    """One federated aggregate across N simulated campuses.

    Exit code 0 for a merged answer (possibly degraded/partial), 1
    when quorum was lost, 2 on bad arguments.
    """
    import json as json_module

    from repro.datastore import Query
    from repro.federation import (CampusSite, FederationConfig,
                                  FederationCoordinator, QuorumLost)

    obs = _obs_or_none(args)
    config = FederationConfig(n_sites=args.sites, seed=args.seed,
                              epsilon_total=args.budget,
                              duration_s=args.duration)
    try:
        sites = [
            CampusSite(spec, config,
                       attacks=(_FED_ATTACK_ROTATION[
                           i % len(_FED_ATTACK_ROTATION)],),
                       fault_plan=_fed_site_plan(args, i), obs=obs)
            for i, spec in enumerate(config.site_specs())
        ]
    except KeyError as exc:
        print(f"federate: {exc}", file=sys.stderr)
        return 2
    coordinator = FederationCoordinator(sites, config, obs=obs)
    try:
        for site in sites:
            site.run_day()
        query = Query(collection=args.collection)
        if args.kind == "count":
            answer = coordinator.query_count(query, epsilon=args.epsilon)
            merged = {"value": answer.value, "bound": answer.bound}
        elif args.kind == "histogram":
            answer = coordinator.query_histogram(query, args.field,
                                                 epsilon=args.epsilon)
            merged = {"bins": [[v, c] for v, c in answer.bins]}
        else:
            answer = coordinator.query_heavy_hitters(
                query, args.field, k=args.top, epsilon=args.epsilon)
            merged = {"bins": [[v, c] for v, c in answer.bins]}
    except QuorumLost as exc:
        print(f"federate: {exc}", file=sys.stderr)
        coordinator.close()
        return 1
    summary = {
        "kind": args.kind,
        "collection": args.collection,
        "confidence": answer.confidence,
        "n_sites": answer.n_sites,
        "n_answered": answer.n_answered,
        "quorum": config.quorum,
        "degraded": answer.degraded,
        "unavailable": [list(pair) for pair in answer.unavailable],
        "budget": coordinator.budget_summary(),
        "degradations": [
            f"{d.stage}/{d.mode}: {d.reason}"
            for d in coordinator.ledger.entries],
        **merged,
    }
    if args.json:
        print(json_module.dumps(summary, indent=2, default=str))
    else:
        if args.kind == "count":
            print(f"federated count({args.collection}) = "
                  f"{answer.value:.1f} ± {answer.bound:.1f} "
                  f"at {answer.confidence:.0%} confidence")
        else:
            print(f"federated {args.kind}({args.collection}."
                  f"{args.field}) at {answer.confidence:.0%} "
                  f"confidence (per-value ± "
                  f"{answer.per_value_bound:.1f}):")
            for value, count in answer.bins:
                print(f"  {value!s:24s} {count:12.1f}")
        state = "degraded" if answer.degraded else "complete"
        print(f"sites: {answer.n_answered}/{answer.n_sites} answered "
              f"(quorum {config.quorum}) — {state}")
        for name, reason in answer.unavailable:
            print(f"  unavailable: {name} ({reason})")
        for entry in coordinator.budget_summary():
            print(f"  budget {entry['site']}: {entry['spent']:.2f} "
                  f"spent / {entry['total_epsilon']:.2f} total "
                  f"({entry['refused']} refused)")
    if obs is not None:
        _write_obs(obs, {"command": "federate-query",
                         "sites": args.sites, "seed": args.seed},
                   args.obs)
    coordinator.close()
    return 0


def cmd_federate_e2e(args) -> int:
    """Full federated development run: assemble→develop→road-test.

    Exit code 0 when the cross-site model beats every single-site
    model on the held-out campus, 1 otherwise (or on lost quorum), 2
    on bad arguments.
    """
    import json as json_module

    from repro.federation import (FederatedExperiment, FederationConfig,
                                  QuorumLost)

    obs = _obs_or_none(args)
    config = FederationConfig(n_sites=args.sites, seed=args.seed,
                              epsilon_total=args.epsilon,
                              duration_s=args.duration)
    try:
        plan = _fed_site_plan(args, -1) if args.fault_plan else None
    except KeyError as exc:
        print(f"federate: {exc}", file=sys.stderr)
        return 2
    experiment = FederatedExperiment(config, model_name=args.model,
                                     fault_plan=plan, obs=obs)
    try:
        report = experiment.run(roadtest=not args.no_roadtest)
    except QuorumLost as exc:
        print(f"federate: {exc}", file=sys.stderr)
        experiment.close()
        return 1
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2,
                                default=str))
    else:
        print(f"federated model (macro-F1 on {report.holdout_site}): "
              f"{report.federated_f1:.3f}")
        for site, score in sorted(report.single_site_f1.items()):
            print(f"  single-site {site}: {score:.3f}")
        verdict = "beats" if report.federation_wins else \
            "does NOT beat"
        print(f"federation {verdict} the best single campus "
              f"({report.best_single_f1:.3f})")
        if report.assembly is not None:
            print(f"assembled {report.assembly.rows} sanitized rows "
                  f"from {report.assembly.n_answered}/"
                  f"{report.assembly.n_sites} sites "
                  f"(suppressed: {report.assembly.suppressed_per_site})")
        for roadtest in report.roadtests:
            outcome = "deployed" if roadtest.deployed else \
                f"rolled back at {roadtest.rolled_back_at}"
            print(f"  road-test {roadtest.site}: {outcome} "
                  f"(precision {roadtest.precision:.2f}, "
                  f"recall {roadtest.recall:.2f})")
        if report.roadtests:
            print(f"road-test F1 divergence across sites: "
                  f"{report.roadtest_divergence:.3f}")
        for line in report.degradations:
            print(f"  degraded: {line}")
    if obs is not None:
        _write_obs(obs, {"command": "federate-e2e",
                         "sites": args.sites, "seed": args.seed},
                   args.obs)
    experiment.close()
    return 0 if report.federation_wins else 1


def cmd_federate(args) -> int:
    """Dispatch ``repro federate <query|e2e>``."""
    if args.federate_command == "query":
        return cmd_federate_query(args)
    return cmd_federate_e2e(args)


def cmd_obs(args) -> int:
    """Per-stage latency/throughput report from recorded observability.

    Exit code 0 on a rendered report, 1 when neither ``--run`` nor
    ``--pipeline`` was requested, 2 on malformed or missing input.
    """
    from repro.obs.export import ObsFormatError, obs_records, \
        read_jsonl, registry_from_records, render_prometheus, write_jsonl
    from repro.obs.report import ObsReport

    if args.run:
        try:
            records = read_jsonl(args.run)
        except ObsFormatError as exc:
            print(f"obs: malformed records in {args.run!r}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.pipeline:
        from repro.obs.pipeline import run_observed_pipeline

        obs, meta = run_observed_pipeline(
            profile=args.profile, duration_s=args.duration,
            seed=args.seed, workers=args.workers, shards=args.shards)
        records = obs_records(obs, meta)
        if args.out:
            write_jsonl(records, args.out)
            print(f"wrote observability records to {args.out}",
                  file=sys.stderr)
    else:
        print("obs: pass --run PATH (recorded file) or --pipeline "
              "(run one observed day)", file=sys.stderr)
        return 1
    if args.prom:
        print(render_prometheus(registry_from_records(records)), end="")
        return 0
    _emit_report(ObsReport.from_records(records), args.json)
    return 0


def cmd_report(args) -> int:
    """Render the IT-style Markdown report for a store."""
    from repro.analysis import generate_report
    from repro.datastore import import_store

    store = import_store(args.store)
    print(generate_report(store).render())
    return 0


def cmd_profiles(args) -> int:
    """List available campus profiles."""
    from repro.netsim.campus import CAMPUS_PROFILES

    for name, profile in sorted(CAMPUS_PROFILES.items()):
        print(f"{name:12s} {profile.description}")
    return 0


def cmd_scenarios(args) -> int:
    """List canned scenario-library entries."""
    from repro.events.library import SCENARIO_LIBRARY

    for name, factory in sorted(SCENARIO_LIBRARY.items()):
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:12s} {doc}")
    return 0


_COMMANDS = {
    "run-day": cmd_run_day,
    "ingest": cmd_ingest,
    "simulate": cmd_simulate,
    "inspect": cmd_inspect,
    "query": cmd_query,
    "train": cmd_train,
    "develop": cmd_develop,
    "verify": cmd_verify,
    "chaos": cmd_chaos,
    "federate": cmd_federate,
    "obs": cmd_obs,
    "report": cmd_report,
    "profiles": cmd_profiles,
    "scenarios": cmd_scenarios,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
