"""Per-application traffic models for the campus simulator.

Each model describes one application class (web, video, DNS, SSH, mail,
NTP, bulk transfer, software update) in terms of flow-size
distributions, directionality, transport, ports, rate caps, and payload
synthesis.  The default campus mix in :data:`DEFAULT_MIX` is loosely
calibrated to published enterprise/campus traffic studies: web + video
dominate bytes, DNS dominates flow counts.
"""

from repro.netsim.traffic.base import AppTrafficModel, FlowTemplate, TrafficMix
from repro.netsim.traffic.profiles import (
    BulkTransferModel,
    DnsModel,
    MailModel,
    NtpModel,
    SoftwareUpdateModel,
    SshModel,
    VideoStreamingModel,
    WebBrowsingModel,
    DEFAULT_MIX,
    default_mix,
)

__all__ = [
    "AppTrafficModel",
    "FlowTemplate",
    "TrafficMix",
    "WebBrowsingModel",
    "VideoStreamingModel",
    "DnsModel",
    "SshModel",
    "MailModel",
    "NtpModel",
    "BulkTransferModel",
    "SoftwareUpdateModel",
    "DEFAULT_MIX",
    "default_mix",
]
