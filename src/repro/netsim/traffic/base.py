"""Base classes for application traffic models."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.packets import Protocol


@dataclass
class FlowTemplate:
    """Everything an application decides about one flow.

    The generator fills in endpoints and timing; the template carries
    the application-level shape.
    """

    app: str
    size_bytes: float
    fwd_fraction: float
    protocol: int
    dst_port: int
    rate_cap_bps: Optional[float] = None
    payload_fn: Optional[Callable] = None
    to_internet: bool = True
    to_server: bool = False
    label: str = "benign"


@dataclass(frozen=True)
class FluidVariant:
    """One jointly-sampled (port, direction-split, cap) flow shape.

    The discrete models correlate these per flow (mail's submission
    port goes with its upload-heavy split); keeping them joint in the
    fluid profile preserves those correlations in the tap marginals.
    """

    weight: float
    dst_port: int
    fwd_fraction: float
    rate_cap_bps: Optional[float] = None


@dataclass
class FluidAppProfile:
    """Population-level description of one application class.

    The vectorized counterpart of :meth:`AppTrafficModel.sample`: the
    fluid engine draws whole arrays of flow sizes and variant indexes
    per tick instead of one template at a time.  ``p_internet`` is the
    probability a flow of this class crosses the border tap (derived
    from the discrete model's to_server/to_internet destination
    logic), which is all the tap-side synthesis needs.
    """

    name: str
    protocol: int
    p_internet: float
    variants: Tuple[FluidVariant, ...]
    size_sampler: Callable[[np.random.Generator, int], np.ndarray]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"fluid profile {self.name!r} needs variants")
        raw = np.asarray([v.weight for v in self.variants], dtype=float)
        if np.any(raw < 0) or raw.sum() <= 0:
            raise ValueError("variant weights must be non-negative, sum > 0")
        self.variant_weights = raw / raw.sum()

    def sample_variants(self, rng: np.random.Generator,
                        n: int) -> np.ndarray:
        """Variant index per flow."""
        return rng.choice(len(self.variants), size=int(n),
                          p=self.variant_weights)

    def mean_rate_cap(self, default_bps: float) -> float:
        """Weight-averaged per-flow rate ceiling (fluid demand cap)."""
        return float(sum(
            w * (v.rate_cap_bps if v.rate_cap_bps is not None
                 else default_bps)
            for v, w in zip(self.variants, self.variant_weights)))


class AppTrafficModel(abc.ABC):
    """One application class: flow shape + payload synthesis."""

    #: Application name stamped on flows and packets.
    name: str = "generic"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        """Draw one flow template."""

    def fluid_profile(self) -> FluidAppProfile:
        """Vectorized population-level profile (fluid engine input)."""
        raise NotImplementedError(
            f"traffic model {self.name!r} has no fluid profile")

    @staticmethod
    def lognormal_bytes(rng: np.random.Generator, median: float,
                        sigma: float, floor: float = 64.0,
                        ceil: float = 5e9) -> float:
        """Heavy-tailed flow size; ``median`` in bytes, ``sigma`` shape."""
        value = rng.lognormal(mean=np.log(median), sigma=sigma)
        return float(min(max(value, floor), ceil))

    @staticmethod
    def lognormal_sizes(rng: np.random.Generator, n: int, median: float,
                        sigma: float, floor: float = 64.0,
                        ceil: float = 5e9) -> np.ndarray:
        """Vectorized :meth:`lognormal_bytes`: ``n`` iid flow sizes."""
        values = rng.lognormal(mean=np.log(median), sigma=sigma,
                               size=int(n))
        return np.clip(values, floor, ceil)


class TrafficMix:
    """A weighted mixture of application models.

    ``weights`` are flow-count shares, not byte shares.
    """

    def __init__(self, entries: Sequence[Tuple[AppTrafficModel, float]]):
        if not entries:
            raise ValueError("traffic mix cannot be empty")
        self.models: List[AppTrafficModel] = [m for m, _ in entries]
        raw = np.asarray([w for _, w in entries], dtype=float)
        if np.any(raw < 0) or raw.sum() <= 0:
            raise ValueError("traffic mix weights must be non-negative, sum > 0")
        self.weights = raw / raw.sum()

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        index = int(rng.choice(len(self.models), p=self.weights))
        return self.models[index].sample(rng)

    def model_names(self) -> List[str]:
        return [m.name for m in self.models]
