"""Base classes for application traffic models."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.packets import Protocol


@dataclass
class FlowTemplate:
    """Everything an application decides about one flow.

    The generator fills in endpoints and timing; the template carries
    the application-level shape.
    """

    app: str
    size_bytes: float
    fwd_fraction: float
    protocol: int
    dst_port: int
    rate_cap_bps: Optional[float] = None
    payload_fn: Optional[Callable] = None
    to_internet: bool = True
    to_server: bool = False
    label: str = "benign"


class AppTrafficModel(abc.ABC):
    """One application class: flow shape + payload synthesis."""

    #: Application name stamped on flows and packets.
    name: str = "generic"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        """Draw one flow template."""

    @staticmethod
    def lognormal_bytes(rng: np.random.Generator, median: float,
                        sigma: float, floor: float = 64.0,
                        ceil: float = 5e9) -> float:
        """Heavy-tailed flow size; ``median`` in bytes, ``sigma`` shape."""
        value = rng.lognormal(mean=np.log(median), sigma=sigma)
        return float(min(max(value, floor), ceil))


class TrafficMix:
    """A weighted mixture of application models.

    ``weights`` are flow-count shares, not byte shares.
    """

    def __init__(self, entries: Sequence[Tuple[AppTrafficModel, float]]):
        if not entries:
            raise ValueError("traffic mix cannot be empty")
        self.models: List[AppTrafficModel] = [m for m, _ in entries]
        raw = np.asarray([w for _, w in entries], dtype=float)
        if np.any(raw < 0) or raw.sum() <= 0:
            raise ValueError("traffic mix weights must be non-negative, sum > 0")
        self.weights = raw / raw.sum()

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        index = int(rng.choice(len(self.models), p=self.weights))
        return self.models[index].sample(rng)

    def model_names(self) -> List[str]:
        return [m.name for m in self.models]
