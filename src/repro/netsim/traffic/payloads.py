"""Synthetic application payload fragments.

Full-packet capture gives researchers access to payloads; the privacy
layer and payload-aware features need realistic-looking bytes to act
on.  These builders synthesize the *leading fragment* of each packet's
payload — enough for protocol fingerprinting — deterministically from
the flow id, so re-synthesis is reproducible.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List

_DOMAINS = [
    "www.example.edu", "lms.campus.edu", "mail.campus.edu", "cdn.video.net",
    "updates.vendor.com", "api.cloudapp.io", "repo.pkgs.org", "news.site.com",
    "storage.research.org", "login.sso.edu", "calendar.campus.edu",
    "files.share.net", "search.engine.com", "social.app.com",
]

_HTTP_PATHS = [
    "/", "/index.html", "/api/v1/items", "/static/app.js", "/login",
    "/media/lecture.mp4", "/search?q=networks", "/downloads/dataset.tgz",
]

_USER_AGENTS = [
    "Mozilla/5.0 (X11; Linux x86_64)",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15)",
    "curl/7.88.1",
    "python-requests/2.31",
]


def _pick(seq: List, seed: int) -> object:
    return seq[seed % len(seq)]


def _digest(*parts: int) -> bytes:
    h = hashlib.sha256()
    for p in parts:
        h.update(struct.pack("<q", p))
    return h.digest()


def encode_dns_qname(domain: str) -> bytes:
    """Encode a domain into DNS wire-format labels."""
    out = b""
    for part in domain.split("."):
        raw = part.encode("ascii")
        out += bytes([len(raw)]) + raw
    return out + b"\x00"


def decode_dns_qname(payload: bytes, offset: int = 12) -> str:
    """Best-effort decode of the question name from a DNS message."""
    labels = []
    i = offset
    while i < len(payload):
        length = payload[i]
        if length == 0:
            break
        i += 1
        labels.append(payload[i:i + length].decode("ascii", errors="replace"))
        i += length
    return ".".join(labels)


def dns_query_payload(flow, index: int, direction: str) -> bytes:
    """A DNS message: query (fwd) or response (rev)."""
    seed = flow.flow_id
    domain = str(_pick(_DOMAINS, seed))
    txid = seed & 0xFFFF
    qname = encode_dns_qname(domain)
    if direction == "fwd":
        header = struct.pack(">HHHHHH", txid, 0x0100, 1, 0, 0, 0)
        return header + qname + struct.pack(">HH", 1, 1)  # A, IN
    answers = 1 + (seed % 3)
    header = struct.pack(">HHHHHH", txid, 0x8180, 1, answers, 0, 0)
    body = qname + struct.pack(">HH", 1, 1)
    for i in range(answers):
        body += _digest(seed, i)[:16]
    return header + body


def dns_amplification_payload(flow, index: int, direction: str) -> bytes:
    """ANY-query reflection: tiny spoofed query, huge response."""
    txid = (flow.flow_id + index) & 0xFFFF
    qname = encode_dns_qname("anydomain.example.com")
    if direction == "fwd":
        header = struct.pack(">HHHHHH", txid, 0x0100, 1, 0, 0, 0)
        return header + qname + struct.pack(">HH", 255, 1)  # QTYPE=ANY
    header = struct.pack(">HHHHHH", txid, 0x8180, 1, 28, 0, 12)
    return header + qname + _digest(flow.flow_id, index) * 2


def http_payload(flow, index: int, direction: str) -> bytes:
    seed = flow.flow_id
    if direction == "fwd" and index == 0:
        host = _pick(_DOMAINS, seed)
        path = _pick(_HTTP_PATHS, seed // 7)
        agent = _pick(_USER_AGENTS, seed // 3)
        req = f"GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {agent}\r\n\r\n"
        return req.encode("ascii")
    if direction == "rev" and index == 0:
        return (b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n"
                b"Server: nginx\r\n\r\n<!doctype html>")
    return _digest(seed, index)[:32]


def tls_payload(flow, index: int, direction: str) -> bytes:
    seed = flow.flow_id
    if index == 0:
        sni = str(_pick(_DOMAINS, seed)).encode("ascii")
        kind = b"\x01" if direction == "fwd" else b"\x02"  # hello type
        return b"\x16\x03\x03" + kind + sni
    return b"\x17\x03\x03" + _digest(seed, index)[:24]


def ssh_payload(flow, index: int, direction: str) -> bytes:
    if index == 0:
        return b"SSH-2.0-OpenSSH_9.3\r\n"
    return _digest(flow.flow_id, index)[:16]


def smtp_payload(flow, index: int, direction: str) -> bytes:
    if index == 0 and direction == "rev":
        return b"220 mail.campus.edu ESMTP\r\n"
    if index == 0:
        return b"EHLO client.campus.edu\r\n"
    return _digest(flow.flow_id, index)[:24]


def ntp_payload(flow, index: int, direction: str) -> bytes:
    mode = 3 if direction == "fwd" else 4
    return bytes([0x23 & 0xF8 | mode]) + b"\x00" * 3 + _digest(flow.flow_id)[:44]


def opaque_payload(flow, index: int, direction: str) -> bytes:
    """Encrypted-looking bytes for bulk/update traffic."""
    return _digest(flow.flow_id, index)[:32]
