"""Concrete application traffic models and the default campus mix."""

from __future__ import annotations

import numpy as np

from repro.netsim.packets import Protocol
from repro.netsim.traffic import payloads
from repro.netsim.traffic.base import (AppTrafficModel, FlowTemplate,
                                       FluidAppProfile, FluidVariant,
                                       TrafficMix)

MBPS = 1_000_000


class WebBrowsingModel(AppTrafficModel):
    """Short HTTPS page loads; small upstream request, larger download."""

    name = "web"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=60_000, sigma=1.6)
        port = 443 if rng.random() < 0.85 else 80
        payload = payloads.tls_payload if port == 443 else payloads.http_payload
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.08,
            protocol=int(Protocol.TCP),
            dst_port=port,
            payload_fn=payload,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=1.0,
            variants=(FluidVariant(0.85, 443, 0.08),
                      FluidVariant(0.15, 80, 0.08)),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=60_000, sigma=1.6),
        )


class VideoStreamingModel(AppTrafficModel):
    """Long-lived, rate-capped segments (adaptive streaming)."""

    name = "video"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=8_000_000, sigma=1.0)
        cap = float(rng.choice([3, 5, 8, 12])) * MBPS
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.02,
            protocol=int(Protocol.TCP),
            dst_port=443,
            rate_cap_bps=cap,
            payload_fn=payloads.tls_payload,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=1.0,
            variants=tuple(FluidVariant(0.25, 443, 0.02, float(m) * MBPS)
                           for m in (3, 5, 8, 12)),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=8_000_000, sigma=1.0),
        )


class DnsModel(AppTrafficModel):
    """Tiny UDP query/response pairs; dominates flow counts."""

    name = "dns"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = float(rng.integers(120, 600))
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.25,
            protocol=int(Protocol.UDP),
            dst_port=53,
            payload_fn=payloads.dns_query_payload,
            to_internet=rng.random() < 0.3,
            to_server=True,
        )

    def fluid_profile(self) -> FluidAppProfile:
        # Border-crossing probability from the discrete destination
        # logic: to_internet (0.3) and then the 50/50 server-vs-internet
        # coin in CampusNetwork._choose_destination.
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.UDP), p_internet=0.15,
            variants=(FluidVariant(1.0, 53, 0.25),),
            size_sampler=lambda rng, n: rng.integers(
                120, 600, size=int(n)).astype(np.float64),
        )


class SshModel(AppTrafficModel):
    """Interactive sessions; roughly symmetric, small."""

    name = "ssh"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=25_000, sigma=1.2)
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.45,
            protocol=int(Protocol.TCP),
            dst_port=22,
            payload_fn=payloads.ssh_payload,
            to_internet=rng.random() < 0.4,
            to_server=True,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=0.2,
            variants=(FluidVariant(1.0, 22, 0.45),),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=25_000, sigma=1.2),
        )


class MailModel(AppTrafficModel):
    """SMTP submission / IMAP sync to the campus mail server."""

    name = "mail"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=90_000, sigma=1.4)
        upload = rng.random() < 0.4
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.8 if upload else 0.1,
            protocol=int(Protocol.TCP),
            dst_port=587 if upload else 993,
            payload_fn=payloads.smtp_payload,
            to_internet=rng.random() < 0.5,
            to_server=True,
        )

    def fluid_profile(self) -> FluidAppProfile:
        # Submission (587, upload-heavy) vs IMAP sync (993): the port
        # and the direction split stay correlated, as in sample().
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=0.25,
            variants=(FluidVariant(0.4, 587, 0.8),
                      FluidVariant(0.6, 993, 0.1)),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=90_000, sigma=1.4),
        )


class NtpModel(AppTrafficModel):
    """Clock sync; tiny symmetric UDP."""

    name = "ntp"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        return FlowTemplate(
            app=self.name,
            size_bytes=180.0,
            fwd_fraction=0.5,
            protocol=int(Protocol.UDP),
            dst_port=123,
            payload_fn=payloads.ntp_payload,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.UDP), p_internet=1.0,
            variants=(FluidVariant(1.0, 123, 0.5),),
            size_sampler=lambda rng, n: np.full(int(n), 180.0),
        )


class BulkTransferModel(AppTrafficModel):
    """Research data / backup uploads; large and upstream-heavy."""

    name = "bulk"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=150_000_000, sigma=1.2,
                                    ceil=3e9)
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.95,
            protocol=int(Protocol.TCP),
            dst_port=443,
            payload_fn=payloads.opaque_payload,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=1.0,
            variants=(FluidVariant(1.0, 443, 0.95),),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=150_000_000, sigma=1.2, ceil=3e9),
        )


class SoftwareUpdateModel(AppTrafficModel):
    """OS/package updates; large downloads from CDNs."""

    name = "update"

    def sample(self, rng: np.random.Generator) -> FlowTemplate:
        size = self.lognormal_bytes(rng, median=40_000_000, sigma=1.3,
                                    ceil=2e9)
        return FlowTemplate(
            app=self.name,
            size_bytes=size,
            fwd_fraction=0.01,
            protocol=int(Protocol.TCP),
            dst_port=443,
            payload_fn=payloads.opaque_payload,
        )

    def fluid_profile(self) -> FluidAppProfile:
        return FluidAppProfile(
            name=self.name, protocol=int(Protocol.TCP), p_internet=1.0,
            variants=(FluidVariant(1.0, 443, 0.01),),
            size_sampler=lambda rng, n: self.lognormal_sizes(
                rng, n, median=40_000_000, sigma=1.3, ceil=2e9),
        )


def default_mix() -> TrafficMix:
    """Flow-count mix for a generic campus (DNS-heavy, web-dominant)."""
    return TrafficMix([
        (DnsModel(), 0.38),
        (WebBrowsingModel(), 0.34),
        (VideoStreamingModel(), 0.08),
        (SshModel(), 0.06),
        (MailModel(), 0.07),
        (NtpModel(), 0.04),
        (SoftwareUpdateModel(), 0.02),
        (BulkTransferModel(), 0.01),
    ])


DEFAULT_MIX = default_mix()
