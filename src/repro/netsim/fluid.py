"""Population-level fluid traffic engine with tap-side columnar synthesis.

The discrete engine (:mod:`repro.netsim.network`) schedules one event
per flow per user — faithful, but quadratically dead at the paper's
"day of traffic from a million users".  This engine replaces per-user
events with population dynamics:

1. **Cohorts** (:mod:`repro.netsim.cohorts`): users collapse into
   equal-count activity cohorts; the aggregate arrival intensity per
   cohort is exact, and gamma heterogeneity survives as the spread of
   per-cohort means.
2. **Fixed tick**: per tick, flow arrivals per (cohort x app) class
   are one vectorized Poisson draw from
   ``lambda_c(t) = count_c * activity_c * base_rate * diurnal(t)``.
3. **Fluid demand**: class byte backlogs push demand through an
   aggregated link set (department distribution links, the core, the
   border uplink) under weighted progressive-filling max-min sharing —
   the population analog of the per-flow allocator in
   :mod:`repro.netsim.flows`.
4. **Tap-side synthesis**: packets exist *only* at the border tap.
   Sampled border-crossing flows are expanded straight into
   :class:`~repro.netsim.packets.PacketColumns` struct-of-arrays
   batches with numpy — no per-packet Python objects, no record
   materialization (enforced by lint rule REP309 on this module).

Determinism: every random draw comes from one seeded generator in a
fixed order, so identical seeds produce bit-identical column batches.
The discrete engine stays the equivalence oracle — see
``tests/netsim/test_fluid_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.netsim.cohorts import CohortTable, build_cohorts
from repro.netsim.packets import (
    MAX_SEGMENT,
    DictColumn,
    PacketColumns,
    Protocol,
    TcpFlags,
    ip_to_u32,
)
from repro.netsim.traffic.base import FluidAppProfile, TrafficMix
from repro.netsim.traffic.profiles import default_mix
from repro.netsim.users import diurnal_factor

GBPS = 1_000_000_000.0
RATE_EPSILON = 1e-6
#: campus user address plan: user ``i`` owns ``10.0.0.0/8 + 1 + i``.
CAMPUS_BASE_U32 = 0x0A000001
#: synthetic internet pool inside 100.64.0.0/10 (never campus space).
INTERNET_BASE_U32 = 0x64400000

_TCP = int(Protocol.TCP)
_HEADER_TCP = 40.0
_HEADER_UDP = 28.0
_SYN = int(TcpFlags.SYN)
_SYNACK = int(TcpFlags.SYN | TcpFlags.ACK)
_FINACK = int(TcpFlags.FIN | TcpFlags.ACK)
_ACK = int(TcpFlags.ACK)


@dataclass
class FluidConfig:
    """Scale and fidelity knobs for one fluid campus."""

    n_users: int = 10_000
    n_cohorts: int = 32
    mean_flows_per_hour: float = 120.0
    tick_seconds: float = 60.0
    #: probability a border-crossing flow is expanded into tap packets
    #: (sFlow-style sampling; demand accounting always covers 100%).
    tap_sample: float = 1.0
    #: per-direction packet cap per flow; larger flows get
    #: proportionally larger packets (same rule as synthesize_packets).
    max_packets_per_flow: int = 64
    #: uncongested per-flow access rate (the discrete engine's host
    #: links are 1 Gbps, which bottleneck single flows at light load).
    host_rate_bps: float = 1e9
    uplink_gbps: float = 10.0
    core_gbps: float = 40.0
    distribution_gbps: float = 10.0
    n_departments: int = 8
    internet_hosts: int = 4096
    start_time: float = 8 * 3600.0
    ttl: int = 64

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if not 0.0 < self.tap_sample <= 1.0:
            raise ValueError("tap_sample must be in (0, 1]")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")


@dataclass
class FluidOverlay:
    """One labeled event superimposed on the fluid baseline.

    The fluid hook for :mod:`repro.events`: an overlay contributes its
    own Poisson flow arrivals inside ``[start_time, end_time)``, with
    fixed endpoints/ports and its own size distribution, expanded
    through the same columnar tap synthesis as background traffic.
    Overlay flows are never tap-sampled away — labeled ground truth is
    the scarce resource.
    """

    label: str
    app: str
    start_time: float
    end_time: float
    flows_per_second: float
    size_sampler: Callable[[np.random.Generator, int], np.ndarray]
    src_ips: np.ndarray                 # uint32 source pool
    dst_ips: np.ndarray                 # uint32 destination pool
    protocol: int = _TCP
    fwd_fraction: float = 0.5
    src_port: Optional[int] = None      # fixed, or None for ephemeral
    dst_ports: Sequence[int] = (443,)
    src_internal: bool = False
    #: per-flow transfer rate (sets flow duration = bytes*8/rate).
    flow_rate_bps: float = 1e8
    ttl: int = 60


@dataclass
class FluidTick:
    """Telemetry for one advance of the engine."""

    time: float
    arrivals: int                # border-crossing flow arrivals
    offered_bytes: float
    drained_bytes: float
    allocated_bps: float
    tap_flows: int
    tap_packets: int


@dataclass
class FluidRunSummary:
    """Aggregate counters plus (optionally) per-flow tap arrays."""

    ticks: List[FluidTick] = field(default_factory=list)
    total_flows: int = 0
    total_tap_flows: int = 0
    total_packets: int = 0
    total_bytes: float = 0.0
    # set when collect_flows=True: one entry per sampled tap flow
    flow_sizes: Optional[np.ndarray] = None
    flow_durations: Optional[np.ndarray] = None
    flow_starts: Optional[np.ndarray] = None
    flow_apps: Optional[List[str]] = None


def weighted_max_min(demand: np.ndarray, weights: np.ndarray,
                     membership: np.ndarray,
                     capacity: np.ndarray) -> np.ndarray:
    """Weighted progressive-filling max-min allocation.

    The population analog of
    :meth:`repro.netsim.flows.FluidFlowNetwork._reallocate`: classes
    (rows of ``membership.T``) share links (rows of ``membership``)
    with per-class demands; ``weights`` carries each class's active
    flow count so fairness is per *flow*, not per class.  Invariants
    (property-tested): no link over capacity, no class over demand, a
    class below demand is bottlenecked on a saturated link.
    """
    demand = np.asarray(demand, dtype=np.float64)
    weights = np.maximum(np.asarray(weights, dtype=np.float64), 1e-12)
    cap_left = np.asarray(capacity, dtype=np.float64).copy()
    alloc = np.zeros_like(demand)
    active = demand > RATE_EPSILON
    for _ in range(len(demand) + len(cap_left) + 1):
        if not active.any():
            break
        active_weight = np.where(active, weights, 0.0)
        load = membership @ active_weight            # weight per link
        live = load > 0
        link_delta = np.min(cap_left[live] / load[live]) \
            if live.any() else np.inf
        headroom = (demand[active] - alloc[active]) / weights[active]
        class_delta = float(headroom.min())
        delta = min(link_delta, class_delta)
        if not np.isfinite(delta) or delta < 0:
            break
        alloc += delta * active_weight
        cap_left -= delta * (membership @ active_weight)
        satisfied = active & (demand - alloc <= RATE_EPSILON * weights)
        saturated = live & (cap_left <= RATE_EPSILON)
        choked = membership[saturated].any(axis=0) if saturated.any() \
            else np.zeros_like(active)
        frozen = satisfied | (active & choked)
        if not frozen.any():
            frozen = active.copy()   # numerical corner: force progress
        active &= ~frozen
    return alloc


class FluidTrafficEngine:
    """Million-user campus days via cohort aggregation.

    Parameters
    ----------
    config:
        Scale/topology knobs; see :class:`FluidConfig`.
    mix:
        Application :class:`~repro.netsim.traffic.base.TrafficMix`;
        every model must provide a ``fluid_profile()``.
    seed:
        Single seed for the whole run; identical seeds produce
        bit-identical tap batches.
    obs:
        Optional :class:`~repro.obs.Observability`; adds a
        ``netsim.fluid.run`` span, flow/packet counters, and a
        generation-rate gauge.  ``None`` costs nothing.
    """

    def __init__(self, config: Optional[FluidConfig] = None,
                 mix: Optional[TrafficMix] = None, seed: int = 0,
                 obs=None):
        self.config = config if config is not None else FluidConfig()
        self.mix = mix if mix is not None else default_mix()
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self.cohorts: CohortTable = build_cohorts(
            self.config.n_users, self.config.n_cohorts, self.rng)
        self.profiles: List[FluidAppProfile] = [
            m.fluid_profile() for m in self.mix.models]
        self.app_weights = self.mix.weights
        self.now = float(self.config.start_time)
        self.overlays: List[FluidOverlay] = []
        self._observers: List[Callable[[PacketColumns], None]] = []
        self._next_flow_id = 0
        self._build_classes()
        self._dir_values = ["in", "out"]
        self._app_values = [p.name for p in self.profiles]
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
            self._m_flows = metrics.counter("repro_fluid_flows_total")
            self._m_tap_flows = metrics.counter(
                "repro_fluid_tap_flows_total")
            self._m_packets = metrics.counter(
                "repro_fluid_tap_packets_total")
            self._g_rate = metrics.gauge(
                "repro_fluid_tap_packets_per_sim_second")

    # -- class/link geometry -------------------------------------------------

    def _build_classes(self) -> None:
        """Static (cohort x app) class table and aggregated link set.

        Links: ``[uplink, core, dept_0..D-1]``.  Every class crosses
        the core and the uplink (only border-crossing traffic is
        modeled — the tap cannot see anything else); each cohort is
        pinned round-robin to one department distribution link.
        """
        config = self.config
        n_cohorts = self.cohorts.n_cohorts
        n_apps = len(self.profiles)
        n_classes = n_cohorts * n_apps
        self.class_cohort = np.repeat(np.arange(n_cohorts), n_apps)
        self.class_app = np.tile(np.arange(n_apps), n_cohorts)
        departments = max(int(config.n_departments), 1)
        dept_of_cohort = np.arange(n_cohorts) % departments
        n_links = 2 + departments
        membership = np.zeros((n_links, n_classes), dtype=bool)
        membership[0, :] = True    # border uplink
        membership[1, :] = True    # core
        membership[2 + dept_of_cohort[self.class_cohort],
                   np.arange(n_classes)] = True
        self.membership = membership
        self.link_capacity = np.concatenate((
            [config.uplink_gbps * GBPS, config.core_gbps * GBPS],
            np.full(departments, config.distribution_gbps * GBPS)))
        # per-class mean per-flow ceiling (caps fluid demand) and
        # per-app border-crossing probability
        host = config.host_rate_bps
        self.class_flow_cap = np.array([
            min(self.profiles[a].mean_rate_cap(host), host)
            for a in self.class_app])
        self.p_internet = np.array([p.p_internet for p in self.profiles])
        self.backlog_bytes = np.zeros(n_classes)
        self.backlog_flows = np.zeros(n_classes)

    # -- wiring --------------------------------------------------------------

    def add_packet_observer(
            self, observer: Callable[[PacketColumns], None]) -> None:
        """Receive each tick's tap batch (a :class:`PacketColumns`)."""
        self._observers.append(observer)

    def add_overlay(self, overlay: FluidOverlay) -> None:
        """Superimpose a labeled event on the fluid baseline."""
        self.overlays.append(overlay)

    def new_flow_ids(self, count: int) -> np.ndarray:
        start = self._next_flow_id
        self._next_flow_id += int(count)
        return np.arange(start, self._next_flow_id, dtype=np.float64)

    # -- the tick loop -------------------------------------------------------

    def run(self, duration_s: float,
            collect_flows: bool = False) -> FluidRunSummary:
        """Advance ``duration_s`` of simulated time; emit tap batches.

        Per-tick batches go to every registered packet observer; the
        returned summary aggregates counters (and, with
        ``collect_flows``, per-flow tap arrays for the equivalence
        suite).
        """
        if self.obs is None:
            return self._run(duration_s, collect_flows)
        with self.obs.span("netsim.fluid.run", users=self.config.n_users,
                           duration_s=duration_s) as span:
            summary = self._run(duration_s, collect_flows)
            span.set(flows=summary.total_flows,
                     packets=summary.total_packets)
        return summary

    def _run(self, duration_s: float,
             collect_flows: bool) -> FluidRunSummary:
        config = self.config
        summary = FluidRunSummary()
        sizes_acc: List[np.ndarray] = []
        durations_acc: List[np.ndarray] = []
        starts_acc: List[np.ndarray] = []
        apps_acc: List[str] = []
        end_time = self.now + float(duration_s)
        while self.now < end_time - 1e-9:
            tick_s = min(config.tick_seconds, end_time - self.now)
            batch, tick, flows = self._advance_tick(tick_s, collect_flows)
            summary.ticks.append(tick)
            summary.total_flows += tick.arrivals
            summary.total_tap_flows += tick.tap_flows
            summary.total_packets += tick.tap_packets
            summary.total_bytes += tick.drained_bytes
            if collect_flows and flows is not None:
                sizes_acc.append(flows[0])
                starts_acc.append(flows[1])
                durations_acc.append(flows[2])
                apps_acc.extend(flows[3])
            if len(batch):
                for observer in self._observers:
                    observer(batch)
            if self.obs is not None:
                self._m_flows.inc(tick.arrivals)
                self._m_tap_flows.inc(tick.tap_flows)
                self._m_packets.inc(tick.tap_packets)
                self._g_rate.set(tick.tap_packets / tick_s)
            self.now += tick_s
        if collect_flows:
            summary.flow_sizes = np.concatenate(sizes_acc) \
                if sizes_acc else np.empty(0)
            summary.flow_starts = np.concatenate(starts_acc) \
                if starts_acc else np.empty(0)
            summary.flow_durations = np.concatenate(durations_acc) \
                if durations_acc else np.empty(0)
            summary.flow_apps = apps_acc
        return summary

    def _advance_tick(self, tick_s: float, collect_flows: bool):
        """One tick: arrivals -> demand -> allocation -> tap synthesis.

        RNG draw order is fixed (poisson matrix, then per-app draws in
        mix order, then overlays in registration order) — the
        determinism contract.
        """
        config = self.config
        rng = self.rng
        n_apps = len(self.profiles)
        mid_time = self.now + tick_s / 2.0
        lam = self.cohorts.arrival_intensity(
            config.mean_flows_per_hour, mid_time)            # [C]
        lam_matrix = lam[:, None] * self.app_weights[None, :] * tick_s
        arrivals = rng.poisson(lam_matrix)                    # [C, A]

        # Per-app vectorized draws: sizes for every arrival, border
        # membership, tap sampling, then per-class byte demand.
        tick_bytes = np.zeros_like(self.backlog_bytes)
        tick_flows = np.zeros_like(self.backlog_flows)
        flow_parts = []           # per-app arrays for sampled tap flows
        border_arrivals = 0
        for a in range(n_apps):
            per_cohort = arrivals[:, a]
            n_total = int(per_cohort.sum())
            if n_total == 0:
                continue
            profile = self.profiles[a]
            sizes = profile.size_sampler(rng, n_total)
            is_border = rng.random(n_total) < self.p_internet[a]
            sampled = is_border if config.tap_sample >= 1.0 else (
                is_border & (rng.random(n_total) < config.tap_sample))
            cohort_of = np.repeat(np.arange(len(per_cohort)), per_cohort)
            class_of = cohort_of * n_apps + a
            border_sizes = np.where(is_border, sizes, 0.0)
            np.add.at(tick_bytes, class_of, border_sizes)
            np.add.at(tick_flows, class_of, is_border.astype(np.float64))
            border_arrivals += int(is_border.sum())
            if sampled.any():
                flow_parts.append((a, sizes[sampled], class_of[sampled]))

        offered = float(tick_bytes.sum())
        self.backlog_bytes += tick_bytes
        self.backlog_flows += tick_flows

        # Fluid allocation over the aggregated link set.
        demand = np.minimum(self.backlog_bytes * 8.0 / tick_s,
                            self.backlog_flows * self.class_flow_cap)
        alloc = weighted_max_min(demand, self.backlog_flows,
                                 self.membership, self.link_capacity)
        drained = np.minimum(self.backlog_bytes, alloc * tick_s / 8.0)
        before = np.maximum(self.backlog_bytes, 1e-12)
        self.backlog_bytes -= drained
        self.backlog_flows *= self.backlog_bytes / before
        # Congestion factor: <1 where the allocation fell short.
        phi = np.where(demand > RATE_EPSILON,
                       np.clip(alloc / np.maximum(demand, RATE_EPSILON),
                               1e-3, 1.0),
                       1.0)

        batch, tap_flows, tap_packets, flows = self._synthesize(
            flow_parts, phi, tick_s, collect_flows)
        overlay_batches = self._overlay_batches(tick_s)
        if overlay_batches:
            parts = ([batch] if len(batch) else []) + overlay_batches
            batch = _concat_columns(parts, self._dir_values)
            tap_packets = len(batch)
        tick = FluidTick(
            time=self.now, arrivals=border_arrivals,
            offered_bytes=offered, drained_bytes=float(drained.sum()),
            allocated_bps=float(alloc.sum()), tap_flows=tap_flows,
            tap_packets=tap_packets)
        return batch, tick, flows

    # -- tap-side columnar synthesis -----------------------------------------

    def _synthesize(self, flow_parts, phi: np.ndarray, tick_s: float,
                    collect_flows: bool):
        """Expand sampled border flows into one PacketColumns batch."""
        config = self.config
        rng = self.rng
        if not flow_parts:
            empty = _empty_columns(self._dir_values)
            return empty, 0, 0, (np.empty(0), np.empty(0), np.empty(0),
                                 []) if collect_flows else None
        sizes_list, starts_list, durations_list = [], [], []
        apps_list: List[str] = []
        specs = []
        for a, sizes, class_of in flow_parts:
            profile = self.profiles[a]
            m = len(sizes)
            starts = self.now + rng.random(m) * tick_s
            variant_idx = profile.sample_variants(rng, m)
            fwd = np.array([v.fwd_fraction for v in profile.variants])[
                variant_idx]
            caps = np.array([
                v.rate_cap_bps if v.rate_cap_bps is not None
                else config.host_rate_bps
                for v in profile.variants])[variant_idx]
            ports = np.array([v.dst_port for v in profile.variants],
                             dtype=np.float64)[variant_idx]
            rate = np.minimum(caps, config.host_rate_bps) * phi[class_of]
            durations = np.maximum(sizes * 8.0 / rate, 1e-6)
            cohort = class_of // len(self.profiles)
            src_u32 = self._user_ips(cohort, rng)
            dst_u32 = (INTERNET_BASE_U32 + rng.integers(
                0, config.internet_hosts, size=m)).astype(np.uint32)
            src_port = rng.integers(1024, 65535, size=m).astype(
                np.float64)
            specs.append(_FlowArrays(
                sizes=sizes, starts=starts, durations=durations,
                fwd_fraction=fwd, protocol=float(profile.protocol),
                src_u32=src_u32, dst_u32=dst_u32, src_port=src_port,
                dst_port=ports, app_code=a, label_code=0,
                flow_id=self.new_flow_ids(m), src_internal=True,
                ttl=float(config.ttl)))
            if collect_flows:
                sizes_list.append(sizes)
                starts_list.append(starts)
                durations_list.append(durations)
                apps_list.extend([profile.name] * m)
        batch = _expand_flows(
            specs, config.max_packets_per_flow, self._dir_values,
            self._app_values, ["benign"])
        tap_flows = sum(len(s.sizes) for s in specs)
        flows = None
        if collect_flows:
            flows = (np.concatenate(sizes_list),
                     np.concatenate(starts_list),
                     np.concatenate(durations_list), apps_list)
        return batch, tap_flows, len(batch), flows

    def _user_ips(self, cohort: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
        """Sample one campus source address per flow.

        Cohorts own contiguous user-index ranges (they are built from
        the sorted activity array), so a cohort's flows draw uniformly
        from its own slice of the ``10/8`` plan.
        """
        counts = self.cohorts.counts
        bases = np.concatenate(([0], np.cumsum(counts)))[:-1]
        offsets = rng.random(len(cohort))
        user_idx = (bases[cohort]
                    + (offsets * counts[cohort]).astype(np.int64))
        return (CAMPUS_BASE_U32 + user_idx).astype(np.uint32)

    # -- event overlays ------------------------------------------------------

    def _overlay_batches(self, tick_s: float) -> List[PacketColumns]:
        batches = []
        config = self.config
        rng = self.rng
        for overlay in self.overlays:
            lo = max(self.now, overlay.start_time)
            hi = min(self.now + tick_s, overlay.end_time)
            if hi <= lo:
                continue
            n = int(rng.poisson(overlay.flows_per_second * (hi - lo)))
            if n == 0:
                continue
            sizes = np.asarray(overlay.size_sampler(rng, n),
                               dtype=np.float64)
            starts = lo + rng.random(n) * (hi - lo)
            durations = np.maximum(
                sizes * 8.0 / overlay.flow_rate_bps, 1e-6)
            src = overlay.src_ips[
                rng.integers(0, len(overlay.src_ips), size=n)]
            dst = overlay.dst_ips[
                rng.integers(0, len(overlay.dst_ips), size=n)]
            src_port = (np.full(n, float(overlay.src_port))
                        if overlay.src_port is not None
                        else rng.integers(1024, 65535, size=n).astype(
                            np.float64))
            ports = np.asarray(overlay.dst_ports, dtype=np.float64)
            dst_port = ports[rng.integers(0, len(ports), size=n)]
            spec = _FlowArrays(
                sizes=sizes, starts=starts, durations=durations,
                fwd_fraction=np.full(n, overlay.fwd_fraction),
                protocol=float(overlay.protocol),
                src_u32=src.astype(np.uint32),
                dst_u32=dst.astype(np.uint32),
                src_port=src_port, dst_port=dst_port,
                app_code=0, label_code=0,
                flow_id=self.new_flow_ids(n),
                src_internal=overlay.src_internal,
                ttl=float(overlay.ttl))
            batches.append(_expand_flows(
                [spec], config.max_packets_per_flow, self._dir_values,
                [overlay.app], [overlay.label]))
        return batches


# -- vectorized flow -> packet expansion -------------------------------------


@dataclass
class _FlowArrays:
    """One homogeneous group of flows awaiting packet expansion."""

    sizes: np.ndarray
    starts: np.ndarray
    durations: np.ndarray
    fwd_fraction: np.ndarray
    protocol: float
    src_u32: np.ndarray
    dst_u32: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    app_code: int
    label_code: int
    flow_id: np.ndarray
    src_internal: bool
    ttl: float


def _empty_columns(dir_values: List[str]) -> PacketColumns:
    zero = np.empty(0, dtype=np.float64)
    return PacketColumns.from_arrays(
        timestamp=zero, src_ip=zero.astype(np.uint32),
        dst_ip=zero.astype(np.uint32), src_port=zero, dst_port=zero,
        protocol=zero, size=zero, payload_len=zero, flags=zero,
        ttl=zero, flow_id=zero,
        direction=DictColumn(np.empty(0, dtype=np.int64),
                             list(dir_values)),
        app=DictColumn(np.empty(0, dtype=np.int64), ["none"]),
        label=DictColumn(np.empty(0, dtype=np.int64), ["benign"]),
        payload=[])


def _expand_direction(spec: _FlowArrays, direction: str,
                      max_packets: int):
    """Expand one direction of a flow group into packet field arrays.

    Mirrors :func:`repro.netsim.packets.synthesize_packets` exactly:
    per-direction byte split by rounded ``fwd_fraction``, packet count
    ``ceil(bytes / MAX_SEGMENT)`` capped with proportionally larger
    packets, timestamps spread at bin midpoints, SYN/SYN-ACK first
    packet, FIN-ACK last, ACK in between (TCP only).
    """
    if direction == "fwd":
        dir_bytes = np.round(spec.sizes * spec.fwd_fraction)
    else:
        dir_bytes = np.round(spec.sizes * (1.0 - spec.fwd_fraction))
    keep = dir_bytes > 0
    if not keep.any():
        return None
    dir_bytes = dir_bytes[keep]
    starts = spec.starts[keep]
    durations = spec.durations[keep]
    n_pkts = np.ceil(dir_bytes / MAX_SEGMENT).astype(np.int64)
    np.clip(n_pkts, 1, max_packets, out=n_pkts)
    total = int(n_pkts.sum())
    idx = np.repeat(np.arange(len(n_pkts)), n_pkts)
    first_of = np.concatenate(([0], np.cumsum(n_pkts)))[:-1]
    pos = np.arange(total) - np.repeat(first_of, n_pkts)
    per_packet = dir_bytes / n_pkts
    rounded = np.round(per_packet)
    payload_len = rounded[idx]
    last = pos == (n_pkts[idx] - 1)
    remainder = dir_bytes - rounded * (n_pkts - 1)
    payload_len[last] = np.maximum(remainder[idx][last], 0.0)
    timestamps = starts[idx] + (pos + 0.5) * (durations / n_pkts)[idx]
    tcp = spec.protocol == _TCP
    if tcp:
        flags = np.full(total, float(_ACK))
        flags[last] = float(_FINACK)
        flags[pos == 0] = float(_SYN if direction == "fwd" else _SYNACK)
        header = _HEADER_TCP
    else:
        flags = np.zeros(total)
        header = _HEADER_UDP
    if direction == "fwd":
        src_u32, dst_u32 = spec.src_u32[keep], spec.dst_u32[keep]
        src_port, dst_port = spec.src_port[keep], spec.dst_port[keep]
        outbound = spec.src_internal
    else:
        src_u32, dst_u32 = spec.dst_u32[keep], spec.src_u32[keep]
        src_port, dst_port = spec.dst_port[keep], spec.src_port[keep]
        outbound = not spec.src_internal
    return {
        "timestamp": timestamps,
        "src_ip": src_u32[idx], "dst_ip": dst_u32[idx],
        "src_port": src_port[idx], "dst_port": dst_port[idx],
        "protocol": np.full(total, spec.protocol),
        "size": payload_len + header, "payload_len": payload_len,
        "flags": flags, "ttl": np.full(total, spec.ttl),
        "flow_id": spec.flow_id[keep][idx],
        "dir_code": np.full(total, 1 if outbound else 0,
                            dtype=np.int64),
        "app_code": np.full(total, spec.app_code, dtype=np.int64),
        "label_code": np.full(total, spec.label_code, dtype=np.int64),
    }


def _expand_flows(specs: List[_FlowArrays], max_packets: int,
                  dir_values: List[str], app_values: List[str],
                  label_values: List[str]) -> PacketColumns:
    """Expand flow groups into one time-sorted PacketColumns batch."""
    parts = []
    for spec in specs:
        for direction in ("fwd", "rev"):
            expanded = _expand_direction(spec, direction, max_packets)
            if expanded is not None:
                parts.append(expanded)
    if not parts:
        return _empty_columns(dir_values)
    merged = {key: np.concatenate([p[key] for p in parts])
              for key in parts[0]}
    # (timestamp, direction) order — the same tie-break the discrete
    # synthesizer uses, with "in" (code 0) sorting before "out".
    order = np.lexsort((merged["dir_code"], merged["timestamp"]))
    return PacketColumns.from_arrays(
        timestamp=merged["timestamp"][order],
        src_ip=merged["src_ip"][order].astype(np.uint32),
        dst_ip=merged["dst_ip"][order].astype(np.uint32),
        src_port=merged["src_port"][order],
        dst_port=merged["dst_port"][order],
        protocol=merged["protocol"][order],
        size=merged["size"][order],
        payload_len=merged["payload_len"][order],
        flags=merged["flags"][order], ttl=merged["ttl"][order],
        flow_id=merged["flow_id"][order],
        direction=DictColumn(merged["dir_code"][order],
                             list(dir_values)),
        app=DictColumn(merged["app_code"][order], list(app_values)),
        label=DictColumn(merged["label_code"][order],
                         list(label_values)))


def _concat_columns(batches: List[PacketColumns],
                    dir_values: List[str]) -> PacketColumns:
    """Merge per-source batches (baseline + overlays) in time order.

    Each input carries its own app/label dictionaries; the merged
    batch re-encodes them into one shared value table.
    """
    if not batches:
        return _empty_columns(dir_values)
    if len(batches) == 1:
        return batches[0]
    ts = np.concatenate([b.timestamp for b in batches])
    order = np.argsort(ts, kind="stable")

    def numeric(fld):
        return np.concatenate(
            [getattr(b, fld) for b in batches])[order]

    def addresses(fld):
        return np.concatenate(
            [np.asarray(getattr(b, fld)) for b in batches])[order].astype(
            np.uint32)

    def strings(fld):
        values: List[str] = []
        code_of = {}
        codes = []
        for b in batches:
            column = getattr(b, fld)
            mapping = []
            for v in column.values:
                if v not in code_of:
                    code_of[v] = len(values)
                    values.append(v)
                mapping.append(code_of[v])
            codes.append(np.asarray(mapping, dtype=np.int64)[
                column.codes])
        return DictColumn(np.concatenate(codes)[order], values)

    payload: List[bytes] = []
    for b in batches:
        payload.extend(b.payload)
    payload = [payload[int(i)] for i in order]
    return PacketColumns.from_arrays(
        timestamp=ts[order],
        src_ip=addresses("src_ip"), dst_ip=addresses("dst_ip"),
        src_port=numeric("src_port"), dst_port=numeric("dst_port"),
        protocol=numeric("protocol"), size=numeric("size"),
        payload_len=numeric("payload_len"), flags=numeric("flags"),
        ttl=numeric("ttl"), flow_id=numeric("flow_id"),
        direction=strings("direction"), app=strings("app"),
        label=strings("label"), payload=payload)
