"""Discrete-event campus network simulator.

This subpackage is the substitute for the real campus production network
the paper assumes.  It provides:

* :mod:`repro.netsim.simulator` — a deterministic discrete-event engine.
* :mod:`repro.netsim.topology` — campus topology construction
  (border / core / distribution / access tiers, server farm, WiFi).
* :mod:`repro.netsim.links` — link capacity/latency and utilisation
  accounting.
* :mod:`repro.netsim.routing` — shortest-path routing over the topology.
* :mod:`repro.netsim.flows` — a fluid flow model with max-min fair
  bandwidth sharing, driving flow completion times.
* :mod:`repro.netsim.packets` — packet-record synthesis at the border
  tap (what the capture substrate observes).
* :mod:`repro.netsim.users` — user population and diurnal activity.
* :mod:`repro.netsim.traffic` — per-application traffic models.
* :mod:`repro.netsim.campus` — prebuilt campus profiles used throughout
  the experiments.
* :mod:`repro.netsim.cohorts` — population-to-cohort aggregation.
* :mod:`repro.netsim.fluid` — population-level fluid traffic engine
  with tap-side columnar packet synthesis (million-user scale).
"""

from repro.netsim.simulator import Simulator
from repro.netsim.topology import CampusTopology, NodeKind, build_campus_topology
from repro.netsim.links import Link
from repro.netsim.flows import Flow, FluidFlowNetwork
from repro.netsim.packets import PacketRecord, Protocol, synthesize_packets
from repro.netsim.network import CampusNetwork
from repro.netsim.campus import (CampusProfile, make_campus,
                                 make_fluid_campus, CAMPUS_PROFILES)
from repro.netsim.cohorts import CohortTable, build_cohorts
from repro.netsim.fluid import FluidConfig, FluidOverlay, FluidTrafficEngine
from repro.netsim.users import diurnal_factor, diurnal_factor_array

__all__ = [
    "Simulator",
    "CampusTopology",
    "NodeKind",
    "build_campus_topology",
    "Link",
    "Flow",
    "FluidFlowNetwork",
    "PacketRecord",
    "Protocol",
    "synthesize_packets",
    "CampusNetwork",
    "CampusProfile",
    "make_campus",
    "make_fluid_campus",
    "CAMPUS_PROFILES",
    "CohortTable",
    "build_cohorts",
    "FluidConfig",
    "FluidOverlay",
    "FluidTrafficEngine",
    "diurnal_factor",
    "diurnal_factor_array",
]
