"""The campus network facade: topology + flows + traffic + observation.

:class:`CampusNetwork` glues the event engine, the topology, the fluid
flow model, and the user/traffic processes together, and exposes the
two observation channels the rest of the platform consumes:

* **packet observers** — called with the synthesized packet records of
  every flow that crosses an observed link (the border tap by default);
  this is what the capture substrate sees;
* **flow observers** — called with every completed flow (ground truth,
  used for labeling and evaluation, never by deployed models).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.flows import Flow, FluidFlowNetwork
from repro.netsim.links import LinkTable
from repro.netsim.packets import FiveTuple, PacketRecord, synthesize_packets
from repro.netsim.routing import NoRouteError, Router
from repro.netsim.simulator import Simulator
from repro.netsim.topology import CampusTopology, NodeKind, TopologySpec, \
    build_campus_topology
from repro.netsim.traffic.base import FlowTemplate, TrafficMix
from repro.netsim.traffic.profiles import default_mix
from repro.netsim.users import UserPopulation

PacketObserver = Callable[[List[PacketRecord]], None]
FlowObserver = Callable[[Flow], None]


class CampusNetwork:
    """A running campus network producing observable traffic.

    Parameters
    ----------
    topology:
        The campus graph; defaults to a small campus built from
        :class:`TopologySpec`.
    mix:
        Application traffic mix for background (benign) traffic.
    seed:
        Master seed; all randomness in the network derives from it.
    mean_flows_per_hour:
        Per-user average flow arrival rate at peak activity.
    """

    def __init__(self, topology: Optional[CampusTopology] = None,
                 mix: Optional[TrafficMix] = None, seed: int = 0,
                 mean_flows_per_hour: float = 120.0,
                 start_time: float = 8 * 3600.0):
        self.topology = topology or build_campus_topology(TopologySpec(), seed)
        self.simulator = Simulator(start_time=start_time)
        self.links = LinkTable.from_topology(self.topology)
        self.router = Router(self.topology)
        self.mix = mix or default_mix()
        self.rng = np.random.default_rng(seed)
        self._flow_ids = itertools.count(1)
        self._packet_observers: List[
            Tuple[List[Tuple[str, str]], PacketObserver]] = []
        self._flow_observers: List[FlowObserver] = []
        self.flows = FluidFlowNetwork(
            self.simulator, self.links, self.router,
            on_flow_complete=self._handle_flow_complete,
        )
        departments = {h: self.topology.department(h)
                       for h in self.topology.hosts}
        self.population = UserPopulation(
            self.topology.hosts, self.rng,
            mean_flows_per_hour=mean_flows_per_hour,
            departments=departments,
        )
        self._traffic_running = False
        #: flows that failed because no route existed at launch time
        self.unroutable_flows: List[Flow] = []

    # -- observation -------------------------------------------------------

    def add_packet_observer(self, observer: PacketObserver,
                            link: Optional[Tuple[str, str]] = None,
                            links: Optional[List[Tuple[str, str]]] = None) \
            -> None:
        """Observe packets crossing monitored links.

        ``link`` (default: the border link) or ``links`` (several taps
        feeding one appliance) select where the observer listens.  A
        flow crossing multiple of one observer's links is delivered
        once — the appliance deduplicates identical packets from its
        tap group, as real capture fabrics do.
        """
        if links is None:
            links = [link if link is not None
                     else self.topology.border_link]
        elif link is not None:
            raise ValueError("pass either link or links, not both")
        self._packet_observers.append((list(links), observer))

    def add_flow_observer(self, observer: FlowObserver) -> None:
        self._flow_observers.append(observer)

    @property
    def now(self) -> float:
        return self.simulator.now

    # -- traffic -----------------------------------------------------------

    def start_background_traffic(self) -> None:
        """Begin per-user Poisson flow arrivals."""
        if self._traffic_running:
            return
        self._traffic_running = True
        for user in self.population.users:
            self._schedule_user_arrival(user)

    def stop_background_traffic(self) -> None:
        self._traffic_running = False

    def _schedule_user_arrival(self, user) -> None:
        if not self._traffic_running:
            return
        delay = self.population.next_interarrival(
            user, self.simulator.now, self.rng
        )
        self.simulator.schedule(
            delay, lambda: self._user_arrival(user), name="user-arrival"
        )

    def _user_arrival(self, user) -> None:
        if self._traffic_running:
            template = self.mix.sample(self.rng)
            self.launch_from_template(user.host, template)
            self._schedule_user_arrival(user)

    def launch_from_template(self, src_node: str,
                             template: FlowTemplate) -> Flow:
        """Instantiate and start a flow from an application template."""
        dst_node = self._choose_destination(template)
        flow = self.make_flow(
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=template.size_bytes,
            app=template.app,
            label=template.label,
            protocol=template.protocol,
            dst_port=template.dst_port,
            fwd_fraction=template.fwd_fraction,
            rate_cap_bps=template.rate_cap_bps,
            payload_fn=template.payload_fn,
        )
        return self.inject_flow(flow)

    def _choose_destination(self, template: FlowTemplate) -> str:
        servers = self.topology.servers
        if template.to_server and servers and (
            not template.to_internet or self.rng.random() < 0.5
        ):
            return str(self.rng.choice(servers))
        internet = self.topology.internet_hosts
        if not internet:
            raise ValueError("topology has no internet hosts")
        return str(self.rng.choice(internet))

    # -- flow construction ---------------------------------------------------

    def new_flow_id(self) -> int:
        return next(self._flow_ids)

    def make_flow(self, src_node: str, dst_node: str, size_bytes: float,
                  app: str = "generic", label: str = "benign",
                  protocol: int = 6, dst_port: int = 443,
                  src_port: Optional[int] = None, fwd_fraction: float = 0.1,
                  rate_cap_bps: Optional[float] = None,
                  payload_fn: Optional[Callable] = None,
                  src_ip: Optional[str] = None,
                  dst_ip: Optional[str] = None,
                  ttl: int = 64) -> Flow:
        """Build (but do not start) a flow between two topology nodes.

        ``src_ip`` overrides the source address on the wire — used by
        spoofed-source attacks; routing still uses ``src_node``.
        """
        if src_port is None:
            src_port = int(self.rng.integers(1024, 65535))
        real_src_ip = src_ip or self.topology.ip(src_node)
        real_dst_ip = dst_ip or self.topology.ip(dst_node)
        if real_src_ip is None or real_dst_ip is None:
            raise ValueError(
                f"flow endpoints need IPs: {src_node}={real_src_ip}, "
                f"{dst_node}={real_dst_ip}"
            )
        key = FiveTuple(real_src_ip, real_dst_ip, src_port, dst_port, protocol)
        return Flow(
            flow_id=self.new_flow_id(),
            key=key,
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=float(size_bytes),
            app=app,
            label=label,
            protocol=protocol,
            fwd_fraction=fwd_fraction,
            rate_cap_bps=rate_cap_bps,
            ttl=ttl,
            payload_fn=payload_fn,
            src_internal=self.topology.is_internal_ip(real_src_ip),
        )

    def inject_flow(self, flow: Flow) -> Flow:
        """Start a pre-built flow (used by event generators).

        A flow whose destination is unreachable (e.g. during a link
        outage) fails immediately: it transfers nothing and is recorded
        in :attr:`unroutable_flows` — connections time out, the network
        does not crash.
        """
        try:
            return self.flows.start_flow(flow)
        except NoRouteError:
            flow.start_time = self.simulator.now
            flow.end_time = flow.start_time + 1e-6
            flow.current_rate_bps = 0.0
            self.unroutable_flows.append(flow)
            return flow

    # -- running -------------------------------------------------------------

    def run_until(self, time: float) -> int:
        return self.simulator.run_until(time)

    def run_for(self, duration: float) -> int:
        return self.simulator.run_until(self.simulator.now + duration)

    def finish(self) -> List[Flow]:
        """Stop traffic and truncate remaining flows (emits their packets)."""
        self.stop_background_traffic()
        return self.flows.drain()

    # -- internals -------------------------------------------------------------

    def _handle_flow_complete(self, flow: Flow) -> None:
        for observer in self._flow_observers:
            observer(flow)
        if not self._packet_observers:
            return
        relevant = [
            observer for links, observer in self._packet_observers
            if any(self.router.crosses(flow.path, *link) for link in links)
        ]
        if not relevant:
            return
        packets = synthesize_packets(flow)
        if not packets:
            return
        for observer in relevant:
            observer(packets)

    # -- telemetry -------------------------------------------------------------

    def border_rate_bps(self) -> float:
        """Instantaneous aggregate rate on the border link."""
        a, b = self.topology.border_link
        return self.links.get(a, b).current_rate_bps

    def link_utilizations(self) -> Dict[Tuple[str, str], float]:
        return {link.key: link.utilization() for link in self.links}
