"""Packet records and packet-train synthesis.

The platform observes the campus network exclusively through packets
crossing instrumented links (the border tap, in most experiments).  The
fluid flow model in :mod:`repro.netsim.flows` decides *when* and *how
fast* bytes move; this module expands a finished (or in-progress) flow
into the individual packet records a capture appliance would see:
timestamps, 5-tuple, sizes, TCP flags, and a synthesized payload
fragment that payload-aware features and privacy policies can act on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

MTU = 1500
IPV4_HEADER = 20
TCP_HEADER = 20
UDP_HEADER = 8
MAX_SEGMENT = MTU - IPV4_HEADER - TCP_HEADER


class Protocol(enum.IntEnum):
    """IP protocol numbers used by the simulator."""

    ICMP = 1
    TCP = 6
    UDP = 17

    def header_bytes(self) -> int:
        if self is Protocol.TCP:
            return IPV4_HEADER + TCP_HEADER
        if self is Protocol.UDP:
            return IPV4_HEADER + UDP_HEADER
        return IPV4_HEADER + 8


class TcpFlags(enum.IntFlag):
    """TCP flag bits carried on packet records."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass(frozen=True)
class FiveTuple:
    """Canonical flow key."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(
            self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol
        )

    def canonical(self) -> Tuple:
        """Direction-insensitive key (sorts the two endpoints)."""
        a = (self.src_ip, self.src_port)
        b = (self.dst_ip, self.dst_port)
        lo, hi = (a, b) if a <= b else (b, a)
        return (lo, hi, self.protocol)


@dataclass
class PacketRecord:
    """One captured packet as seen on the wire.

    ``payload`` holds only the leading fragment of the application
    payload (as a real full-packet-capture system would give access to);
    ``payload_len`` is the true payload length on the wire.
    """

    __slots__ = (
        "timestamp",
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "protocol",
        "size",
        "payload_len",
        "flags",
        "ttl",
        "payload",
        "flow_id",
        "app",
        "label",
        "direction",
    )

    timestamp: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int
    size: int
    payload_len: int
    flags: int
    ttl: int
    payload: bytes
    flow_id: int
    app: str
    label: str
    direction: str  # "in" (toward campus) or "out" (toward Internet)

    def five_tuple(self) -> FiveTuple:
        return FiveTuple(
            self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol
        )

    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not bool(self.flags & TcpFlags.ACK)


def _spread_times(start: float, end: float, n: int) -> List[float]:
    """Evenly spread ``n`` packet timestamps across [start, end]."""
    if n <= 0:
        return []
    if n == 1 or end <= start:
        return [start] * n
    step = (end - start) / n
    return [start + step * (i + 0.5) for i in range(n)]


def synthesize_packets(
    flow,
    payload_fn=None,
    max_packets: int = 10_000,
) -> List[PacketRecord]:
    """Expand a flow into forward and reverse packet records.

    Parameters
    ----------
    flow:
        A :class:`repro.netsim.flows.Flow` whose ``start_time`` and
        ``end_time`` are set (it must have finished, or been truncated).
    payload_fn:
        Optional callable ``(flow, index, direction) -> bytes`` giving
        the leading payload fragment of each packet.  Defaults to the
        flow's application payload synthesizer if present.
    max_packets:
        Safety cap per direction; very large flows are represented by
        proportionally larger packets so total bytes are preserved.
    """
    if flow.end_time is None:
        raise ValueError(f"flow {flow.flow_id} has not finished")
    records: List[PacketRecord] = []
    proto = Protocol(flow.protocol)
    header = proto.header_bytes()
    if payload_fn is None:
        payload_fn = getattr(flow, "payload_fn", None)

    for direction, total_bytes, key in (
        ("fwd", flow.fwd_bytes, flow.key),
        ("rev", flow.rev_bytes, flow.key.reversed()),
    ):
        if total_bytes <= 0:
            continue
        n_packets = max(1, math.ceil(total_bytes / MAX_SEGMENT))
        scale = 1
        if n_packets > max_packets:
            scale = math.ceil(n_packets / max_packets)
            n_packets = math.ceil(n_packets / scale)
        per_packet = total_bytes / n_packets
        times = _spread_times(flow.start_time, flow.end_time, n_packets)
        wire_dir = flow.wire_direction(direction)
        for i, ts in enumerate(times):
            payload_len = int(round(per_packet))
            if i == n_packets - 1:
                payload_len = int(total_bytes - int(round(per_packet)) * (n_packets - 1))
                payload_len = max(payload_len, 0)
            flags = _flags_for(proto, i, n_packets, direction)
            fragment = b""
            if payload_fn is not None:
                fragment = payload_fn(flow, i, direction)
            records.append(
                PacketRecord(
                    timestamp=ts,
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    protocol=int(proto),
                    size=payload_len + header,
                    payload_len=payload_len,
                    flags=int(flags),
                    ttl=flow.ttl,
                    payload=fragment[:64],
                    flow_id=flow.flow_id,
                    app=flow.app,
                    label=flow.label,
                    direction=wire_dir,
                )
            )
    records.sort(key=lambda r: (r.timestamp, r.direction))
    return records


def _flags_for(proto: Protocol, index: int, total: int, direction: str) -> TcpFlags:
    if proto is not Protocol.TCP:
        return TcpFlags.NONE
    if index == 0:
        return TcpFlags.SYN if direction == "fwd" else TcpFlags.SYN | TcpFlags.ACK
    if index == total - 1:
        return TcpFlags.FIN | TcpFlags.ACK
    return TcpFlags.ACK


def total_wire_bytes(records: Sequence[PacketRecord]) -> int:
    """Sum of on-the-wire sizes for a batch of packet records."""
    return sum(r.size for r in records)


# -- columnar (struct-of-arrays) representation ------------------------------
#
# The capture -> store -> query pipeline moves packets in batches; keeping
# each batch as one numpy array per field ("struct of arrays") lets the hot
# paths — metadata extraction, segment filters, feature aggregation — run as
# vectorized operations instead of per-record attribute chases.  Records are
# materialized lazily, only for rows a consumer actually touches.

_IP_CACHE_LIMIT = 1 << 20
_ip_to_u32_cache: Dict[str, int] = {}
_u32_to_ip_cache: Dict[int, str] = {}


def ip_to_u32(ip: str) -> int:
    """Strict dotted-quad -> uint32.

    Only canonical IPv4 text (four ASCII-decimal octets, no leading
    zeros) is accepted, so the mapping is a bijection and round-trips
    through :func:`u32_to_ip` preserve string equality.
    """
    cached = _ip_to_u32_cache.get(ip)
    if cached is not None:
        return cached
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {ip!r}")
    value = 0
    for part in parts:
        if not part.isascii() or not part.isdigit() or \
                (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"non-canonical octet in {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {ip!r}")
        value = (value << 8) | octet
    if len(_ip_to_u32_cache) >= _IP_CACHE_LIMIT:
        _ip_to_u32_cache.clear()
    _ip_to_u32_cache[ip] = value
    return value


def u32_to_ip(value: int) -> str:
    """uint32 -> canonical dotted quad (inverse of :func:`ip_to_u32`)."""
    cached = _u32_to_ip_cache.get(value)
    if cached is not None:
        return cached
    text = ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    if len(_u32_to_ip_cache) >= _IP_CACHE_LIMIT:
        _u32_to_ip_cache.clear()
    _u32_to_ip_cache[value] = text
    return text


class DictColumn:
    """Dictionary-encoded string column: int codes plus a value table.

    Used for low-cardinality string fields (direction, app, label) and
    as the fallback for address columns whose values are not canonical
    dotted quads.  Equality filters become a code lookup plus one
    vectorized integer comparison.
    """

    __slots__ = ("codes", "values", "_code_of")

    def __init__(self, codes: np.ndarray, values: List[str]):
        self.codes = codes
        self.values = values
        self._code_of = {v: i for i, v in enumerate(values)}

    @classmethod
    def encode(cls, strings: Sequence[str]) -> "DictColumn":
        code_of: Dict[str, int] = {}
        codes = np.fromiter(
            (code_of.setdefault(s, len(code_of)) for s in strings),
            dtype=np.int64, count=len(strings),
        )
        return cls(codes, list(code_of))

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self, position: int) -> str:
        return self.values[self.codes[position]]

    def code_of(self, value) -> Optional[int]:
        """Code for ``value``, or None when no row holds it."""
        return self._code_of.get(value)

    def equals_mask(self, value, lo: int = 0,
                    hi: Optional[int] = None) -> Optional[np.ndarray]:
        if not isinstance(value, str):
            return None          # exotic filter value: caller must fall back
        sub = self.codes[lo:hi]
        code = self._code_of.get(value)
        if code is None:
            return np.zeros(len(sub), dtype=bool)
        return sub == code

    def take(self, positions: np.ndarray) -> "DictColumn":
        """Row subset; keeps the value table (codes stay comparable)."""
        return DictColumn(self.codes[positions], self.values)


IPColumn = Union[np.ndarray, DictColumn]   # uint32 array or string fallback


def _encode_ips(strings: List[str]) -> IPColumn:
    """uint32 column when every value is a canonical dotted quad."""
    try:
        return np.fromiter(map(ip_to_u32, strings), dtype=np.uint32,
                           count=len(strings))
    except ValueError:
        return DictColumn.encode(strings)


#: numeric PacketRecord fields carried as float64 arrays (float64 keeps
#: Python's ``int == float`` equality semantics for filter values).
NUMERIC_FIELDS = ("timestamp", "src_port", "dst_port", "protocol", "size",
                  "payload_len", "flags", "ttl", "flow_id")
_STRING_FIELDS = ("direction", "app", "label")


class PacketColumns:
    """A batch of packets as one array per field.

    Numeric fields are float64 numpy arrays; addresses are uint32 arrays
    (canonical dotted quads) or dictionary-encoded string columns;
    direction/app/label are dictionary-encoded; payload fragments stay a
    plain list of bytes.  :meth:`record` materializes a single
    :class:`PacketRecord` on demand.
    """

    __slots__ = ("timestamp", "src_ip", "dst_ip", "src_port", "dst_port",
                 "protocol", "size", "payload_len", "flags", "ttl",
                 "flow_id", "payload", "app", "label", "direction",
                 "_minmax", "_time_sorted")

    def __init__(self, **columns):
        for name in self.__slots__:
            if name.startswith("_"):
                continue
            setattr(self, name, columns[name])
        self._minmax: Dict[str, Tuple[float, float]] = {}
        self._time_sorted: Optional[bool] = None

    @classmethod
    def from_records(cls, records: Sequence[PacketRecord]) -> "PacketColumns":
        n = len(records)

        def numeric(fld):
            return np.fromiter((getattr(r, fld) for r in records),
                               dtype=np.float64, count=n)

        return cls(
            timestamp=numeric("timestamp"),
            src_port=numeric("src_port"),
            dst_port=numeric("dst_port"),
            protocol=numeric("protocol"),
            size=numeric("size"),
            payload_len=numeric("payload_len"),
            flags=numeric("flags"),
            ttl=numeric("ttl"),
            flow_id=numeric("flow_id"),
            src_ip=_encode_ips([r.src_ip for r in records]),
            dst_ip=_encode_ips([r.dst_ip for r in records]),
            direction=DictColumn.encode([r.direction for r in records]),
            app=DictColumn.encode([r.app for r in records]),
            label=DictColumn.encode([r.label for r in records]),
            payload=[r.payload for r in records],
        )

    @classmethod
    def from_arrays(cls, *, timestamp, src_ip, dst_ip, src_port, dst_port,
                    protocol, size, payload_len, flags, ttl, flow_id,
                    direction, app, label,
                    payload: Optional[List[bytes]] = None
                    ) -> "PacketColumns":
        """Build a batch straight from arrays — the tap-synthesis path.

        Numeric inputs are coerced to float64 (scalars broadcast over
        the batch); ``src_ip``/``dst_ip`` may be uint32 arrays (kept
        as-is — the fluid engine synthesizes addresses as integers and
        never round-trips through strings) or string sequences;
        direction/app/label may be prebuilt :class:`DictColumn` values
        or string sequences.  ``payload`` defaults to empty fragments.
        """
        n = len(timestamp)

        def numeric(column):
            arr = np.asarray(column, dtype=np.float64)
            if arr.ndim == 0:
                return np.full(n, float(arr))
            return arr

        def address(column) -> IPColumn:
            if isinstance(column, DictColumn):
                return column
            arr = np.asarray(column)
            if arr.dtype == np.uint32:
                return arr
            return _encode_ips(list(column))

        def strings(column) -> DictColumn:
            if isinstance(column, DictColumn):
                return column
            return DictColumn.encode(list(column))

        return cls(
            timestamp=numeric(timestamp),
            src_port=numeric(src_port),
            dst_port=numeric(dst_port),
            protocol=numeric(protocol),
            size=numeric(size),
            payload_len=numeric(payload_len),
            flags=numeric(flags),
            ttl=numeric(ttl),
            flow_id=numeric(flow_id),
            src_ip=address(src_ip),
            dst_ip=address(dst_ip),
            direction=strings(direction),
            app=strings(app),
            label=strings(label),
            payload=payload if payload is not None else [b""] * n,
        )

    def __len__(self) -> int:
        return len(self.timestamp)

    # -- lazy materialization ------------------------------------------------

    def _ip_at(self, column: IPColumn, position: int) -> str:
        if isinstance(column, DictColumn):
            return column.decode(position)
        return u32_to_ip(int(column[position]))

    def record(self, position: int) -> PacketRecord:
        """Materialize one row as a :class:`PacketRecord`."""
        return PacketRecord(
            timestamp=float(self.timestamp[position]),
            src_ip=self._ip_at(self.src_ip, position),
            dst_ip=self._ip_at(self.dst_ip, position),
            src_port=int(self.src_port[position]),
            dst_port=int(self.dst_port[position]),
            protocol=int(self.protocol[position]),
            size=int(self.size[position]),
            payload_len=int(self.payload_len[position]),
            flags=int(self.flags[position]),
            ttl=int(self.ttl[position]),
            payload=self.payload[position],
            flow_id=int(self.flow_id[position]),
            app=self.app.decode(position),
            label=self.label.decode(position),
            direction=self.direction.decode(position),
        )

    def iter_records(self) -> Iterator[PacketRecord]:
        for position in range(len(self)):
            yield self.record(position)

    # -- row subsetting ------------------------------------------------------

    def _subset(self, key) -> "PacketColumns":
        def cut(column):
            if isinstance(column, DictColumn):
                return column.take(key) if isinstance(key, np.ndarray) \
                    else DictColumn(column.codes[key], column.values)
            return column[key]

        payload = self.payload
        if payload is not None:
            if isinstance(key, slice):
                payload = payload[key]
            else:
                payload = [payload[int(i)] for i in key]
        return PacketColumns(
            payload=payload,
            **{fld: cut(getattr(self, fld))
               for fld in (*NUMERIC_FIELDS, "src_ip", "dst_ip",
                           *_STRING_FIELDS)},
        )

    def take(self, positions: np.ndarray) -> "PacketColumns":
        """Row subset at ``positions`` (ascending positions preserve
        batch order, which shard partitioning relies on)."""
        return self._subset(np.asarray(positions))

    def slice(self, lo: int, hi: int) -> "PacketColumns":
        """Contiguous row subset [lo, hi); arrays are views, not copies."""
        return self._subset(slice(lo, hi))

    # -- vectorized filtering ------------------------------------------------

    @property
    def time_sorted(self) -> bool:
        """True when timestamps are non-decreasing (usual capture order)."""
        if self._time_sorted is None:
            ts = self.timestamp
            # NaN defeats both the ordering check and searchsorted, so a
            # batch containing one is never treated as sorted.
            self._time_sorted = bool(
                not np.isnan(ts).any()
                and (len(ts) < 2 or np.all(ts[1:] >= ts[:-1]))
            )
        return self._time_sorted

    def time_slice(self, start: Optional[float],
                   end: Optional[float]) -> Tuple[int, int]:
        """[lo, hi) covering start <= t <= end; requires ``time_sorted``."""
        ts = self.timestamp
        lo = 0 if start is None else int(np.searchsorted(ts, start, "left"))
        hi = len(ts) if end is None else int(np.searchsorted(ts, end, "right"))
        return lo, hi

    def equals_mask(self, fld: str, value, lo: int = 0,
                    hi: Optional[int] = None) -> Optional[np.ndarray]:
        """Vectorized ``field == value`` over rows [lo, hi).

        Returns None when the field is not column-backed (payload, an
        unknown attribute) or the filter value's type defeats vectorized
        comparison — the caller must fall back to a per-record residual
        check.
        """
        if fld in NUMERIC_FIELDS:
            if not isinstance(value, (int, float, np.integer, np.floating)):
                return None
            return getattr(self, fld)[lo:hi] == value
        if fld in ("src_ip", "dst_ip"):
            column = getattr(self, fld)
            if isinstance(column, DictColumn):
                return column.equals_mask(value, lo, hi)
            if not isinstance(value, str):
                return None
            sub = column[lo:hi]
            try:
                return sub == np.uint32(ip_to_u32(value))
            except ValueError:
                # A uint32 column only holds canonical dotted quads, so a
                # value that fails the strict parse cannot equal any row.
                return np.zeros(len(sub), dtype=bool)
        if fld in _STRING_FIELDS:
            return getattr(self, fld).equals_mask(value, lo, hi)
        return None

    def equals_at(self, fld: str, value,
                  positions: np.ndarray) -> Optional[np.ndarray]:
        """Vectorized ``field == value`` evaluated only at ``positions``.

        The planner's gather path: once a selective predicate has cut
        the candidate set down, later predicates compare a short
        fancy-indexed gather instead of the whole column.  Same
        None-means-residual contract as :meth:`equals_mask`.
        """
        if fld in NUMERIC_FIELDS:
            if not isinstance(value, (int, float, np.integer, np.floating)):
                return None
            return getattr(self, fld)[positions] == value
        if fld in ("src_ip", "dst_ip"):
            column = getattr(self, fld)
            if not isinstance(value, str):
                return None
            if isinstance(column, DictColumn):
                code = column.code_of(value)
                if code is None:
                    return np.zeros(len(positions), dtype=bool)
                return column.codes[positions] == code
            try:
                return column[positions] == np.uint32(ip_to_u32(value))
            except ValueError:
                return np.zeros(len(positions), dtype=bool)
        if fld in _STRING_FIELDS:
            column = getattr(self, fld)
            if not isinstance(value, str):
                return None
            code = column.code_of(value)
            if code is None:
                return np.zeros(len(positions), dtype=bool)
            return column.codes[positions] == code
        return None

    def minmax(self, fld: str) -> Optional[Tuple[float, float]]:
        """Zone map: (min, max) of a numeric or uint32-address column."""
        if len(self) == 0:
            return None
        cached = self._minmax.get(fld)
        if cached is not None:
            return cached
        if fld in NUMERIC_FIELDS:
            column = getattr(self, fld)
        elif fld in ("src_ip", "dst_ip") and not isinstance(
                getattr(self, fld), DictColumn):
            column = getattr(self, fld)
        else:
            return None
        bounds = (float(column.min()), float(column.max()))
        self._minmax[fld] = bounds
        return bounds

    def zone_admits(self, fld: str, value) -> bool:
        """False when the zone map proves no row can equal ``value``.

        True means "cannot rule the segment out" — either the value
        falls inside the column's [min, max], or the field has no zone
        map at all.
        """
        if fld in ("src_ip", "dst_ip"):
            column = getattr(self, fld)
            if not isinstance(value, str):
                return True       # residual check decides
            if isinstance(column, DictColumn):
                return column.code_of(value) is not None
            try:
                value = ip_to_u32(value)
            except ValueError:
                return False      # uint32 column only holds canonical quads
        elif fld in _STRING_FIELDS:
            column = getattr(self, fld)
            return not isinstance(value, str) or \
                column.code_of(value) is not None
        elif fld not in NUMERIC_FIELDS:
            return True
        elif not isinstance(value, (int, float, np.integer, np.floating)):
            return True           # residual check decides
        bounds = self.minmax(fld)
        if bounds is None:
            return True
        return bounds[0] <= value <= bounds[1]
