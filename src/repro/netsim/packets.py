"""Packet records and packet-train synthesis.

The platform observes the campus network exclusively through packets
crossing instrumented links (the border tap, in most experiments).  The
fluid flow model in :mod:`repro.netsim.flows` decides *when* and *how
fast* bytes move; this module expands a finished (or in-progress) flow
into the individual packet records a capture appliance would see:
timestamps, 5-tuple, sizes, TCP flags, and a synthesized payload
fragment that payload-aware features and privacy policies can act on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

MTU = 1500
IPV4_HEADER = 20
TCP_HEADER = 20
UDP_HEADER = 8
MAX_SEGMENT = MTU - IPV4_HEADER - TCP_HEADER


class Protocol(enum.IntEnum):
    """IP protocol numbers used by the simulator."""

    ICMP = 1
    TCP = 6
    UDP = 17

    def header_bytes(self) -> int:
        if self is Protocol.TCP:
            return IPV4_HEADER + TCP_HEADER
        if self is Protocol.UDP:
            return IPV4_HEADER + UDP_HEADER
        return IPV4_HEADER + 8


class TcpFlags(enum.IntFlag):
    """TCP flag bits carried on packet records."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass(frozen=True)
class FiveTuple:
    """Canonical flow key."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(
            self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol
        )

    def canonical(self) -> Tuple:
        """Direction-insensitive key (sorts the two endpoints)."""
        a = (self.src_ip, self.src_port)
        b = (self.dst_ip, self.dst_port)
        lo, hi = (a, b) if a <= b else (b, a)
        return (lo, hi, self.protocol)


@dataclass
class PacketRecord:
    """One captured packet as seen on the wire.

    ``payload`` holds only the leading fragment of the application
    payload (as a real full-packet-capture system would give access to);
    ``payload_len`` is the true payload length on the wire.
    """

    __slots__ = (
        "timestamp",
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "protocol",
        "size",
        "payload_len",
        "flags",
        "ttl",
        "payload",
        "flow_id",
        "app",
        "label",
        "direction",
    )

    timestamp: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int
    size: int
    payload_len: int
    flags: int
    ttl: int
    payload: bytes
    flow_id: int
    app: str
    label: str
    direction: str  # "in" (toward campus) or "out" (toward Internet)

    def five_tuple(self) -> FiveTuple:
        return FiveTuple(
            self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol
        )

    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not bool(self.flags & TcpFlags.ACK)


def _spread_times(start: float, end: float, n: int) -> List[float]:
    """Evenly spread ``n`` packet timestamps across [start, end]."""
    if n <= 0:
        return []
    if n == 1 or end <= start:
        return [start] * n
    step = (end - start) / n
    return [start + step * (i + 0.5) for i in range(n)]


def synthesize_packets(
    flow,
    payload_fn=None,
    max_packets: int = 10_000,
) -> List[PacketRecord]:
    """Expand a flow into forward and reverse packet records.

    Parameters
    ----------
    flow:
        A :class:`repro.netsim.flows.Flow` whose ``start_time`` and
        ``end_time`` are set (it must have finished, or been truncated).
    payload_fn:
        Optional callable ``(flow, index, direction) -> bytes`` giving
        the leading payload fragment of each packet.  Defaults to the
        flow's application payload synthesizer if present.
    max_packets:
        Safety cap per direction; very large flows are represented by
        proportionally larger packets so total bytes are preserved.
    """
    if flow.end_time is None:
        raise ValueError(f"flow {flow.flow_id} has not finished")
    records: List[PacketRecord] = []
    proto = Protocol(flow.protocol)
    header = proto.header_bytes()
    if payload_fn is None:
        payload_fn = getattr(flow, "payload_fn", None)

    for direction, total_bytes, key in (
        ("fwd", flow.fwd_bytes, flow.key),
        ("rev", flow.rev_bytes, flow.key.reversed()),
    ):
        if total_bytes <= 0:
            continue
        n_packets = max(1, math.ceil(total_bytes / MAX_SEGMENT))
        scale = 1
        if n_packets > max_packets:
            scale = math.ceil(n_packets / max_packets)
            n_packets = math.ceil(n_packets / scale)
        per_packet = total_bytes / n_packets
        times = _spread_times(flow.start_time, flow.end_time, n_packets)
        wire_dir = flow.wire_direction(direction)
        for i, ts in enumerate(times):
            payload_len = int(round(per_packet))
            if i == n_packets - 1:
                payload_len = int(total_bytes - int(round(per_packet)) * (n_packets - 1))
                payload_len = max(payload_len, 0)
            flags = _flags_for(proto, i, n_packets, direction)
            fragment = b""
            if payload_fn is not None:
                fragment = payload_fn(flow, i, direction)
            records.append(
                PacketRecord(
                    timestamp=ts,
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    protocol=int(proto),
                    size=payload_len + header,
                    payload_len=payload_len,
                    flags=int(flags),
                    ttl=flow.ttl,
                    payload=fragment[:64],
                    flow_id=flow.flow_id,
                    app=flow.app,
                    label=flow.label,
                    direction=wire_dir,
                )
            )
    records.sort(key=lambda r: (r.timestamp, r.direction))
    return records


def _flags_for(proto: Protocol, index: int, total: int, direction: str) -> TcpFlags:
    if proto is not Protocol.TCP:
        return TcpFlags.NONE
    if index == 0:
        return TcpFlags.SYN if direction == "fwd" else TcpFlags.SYN | TcpFlags.ACK
    if index == total - 1:
        return TcpFlags.FIN | TcpFlags.ACK
    return TcpFlags.ACK


def total_wire_bytes(records: Sequence[PacketRecord]) -> int:
    """Sum of on-the-wire sizes for a batch of packet records."""
    return sum(r.size for r in records)
