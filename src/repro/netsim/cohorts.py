"""Behavior cohorts: population-level aggregation of per-user rates.

The discrete engine draws one gamma activity multiplier per user and
schedules per-user Poisson flow arrivals.  At 10^6 users that is 10^8
events per simulated hour — infeasible.  The fluid engine keeps the
same population model but collapses it: users are sorted by activity
and binned into ``n_cohorts`` equal-count cohorts, each carrying the
*mean* activity of its members.  Because every bin's ``count x mean``
equals the exact sum of its members' activities, the population
aggregate rate is preserved exactly (up to float associativity):

    sum_u activity_u  ==  sum_c count_c * activity_c

while the spread across cohorts preserves the gamma heterogeneity
("top talkers" land in the top cohorts).  Property-tested in
``tests/netsim/test_cohorts.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.users import diurnal_factor, sample_activities


@dataclass
class CohortTable:
    """Equal-count activity cohorts for one campus population."""

    counts: np.ndarray      # int64 [C]: users per cohort
    activity: np.ndarray    # float64 [C]: mean activity multiplier
    n_users: int

    @property
    def n_cohorts(self) -> int:
        return len(self.counts)

    @property
    def activity_sum(self) -> float:
        """Exact population activity mass (== per-user sum)."""
        return float(np.dot(self.counts, self.activity))

    def arrival_intensity(self, mean_flows_per_hour: float,
                          time_s: float) -> np.ndarray:
        """Per-cohort aggregate flow-arrival rate (flows/second).

        The fluid analog of summing
        :meth:`~repro.netsim.users.UserPopulation.arrival_rate` over a
        cohort's members: ``count * mean_activity * base * diurnal``.
        """
        base_per_s = mean_flows_per_hour / 3600.0
        return (self.counts * self.activity
                * (base_per_s * diurnal_factor(time_s)))

    def total_expected_rate(self, mean_flows_per_hour: float,
                            time_s: float) -> float:
        """Population flow-arrival rate; matches the per-user sum."""
        return float(self.arrival_intensity(mean_flows_per_hour,
                                            time_s).sum())


def cohorts_from_activities(activities: np.ndarray,
                            n_cohorts: int) -> CohortTable:
    """Bin given per-user activities into equal-count cohorts.

    Split out from :func:`build_cohorts` so the equivalence tests can
    feed the *same* gamma draws to both the per-user sum and the
    cohort aggregate.
    """
    if n_cohorts <= 0:
        raise ValueError("need at least one cohort")
    ordered = np.sort(np.asarray(activities, dtype=np.float64),
                      kind="stable")
    n_users = len(ordered)
    if n_users == 0:
        raise ValueError("cohorts need at least one user")
    bounds = np.linspace(0, n_users, min(n_cohorts, n_users) + 1)
    bounds = bounds.astype(np.int64)
    counts = np.diff(bounds)
    prefix = np.concatenate(([0.0], np.cumsum(ordered)))
    sums = prefix[bounds[1:]] - prefix[bounds[:-1]]
    keep = counts > 0
    counts = counts[keep]
    return CohortTable(counts=counts, activity=sums[keep] / counts,
                       n_users=n_users)


def build_cohorts(n_users: int, n_cohorts: int,
                  rng: np.random.Generator) -> CohortTable:
    """Draw the population's gamma activities and bin them into cohorts.

    Uses the same gamma parameters as the discrete
    :class:`~repro.netsim.users.UserPopulation`, so small-N fluid runs
    are statistically comparable to discrete runs with the same seed
    family.
    """
    if n_users <= 0:
        raise ValueError("population must be positive")
    return cohorts_from_activities(sample_activities(n_users, rng),
                                   n_cohorts)
