"""Link bookkeeping for the fluid flow model.

A :class:`Link` tracks capacity, the set of flows currently crossing
it, and time-weighted byte counters used for utilisation reporting and
SLO monitoring.  Links are undirected (matching the topology graph) and
model the shared capacity of a full-duplex trunk conservatively as a
single pool, which is the standard fluid simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


def edge_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical undirected edge key."""
    return (a, b) if a <= b else (b, a)


class Link:
    """A network link with capacity accounting and utilisation counters."""

    __slots__ = (
        "key",
        "capacity_bps",
        "nominal_capacity_bps",
        "delay_s",
        "active_flows",
        "bytes_carried",
        "_last_update",
        "_current_rate_bps",
        "up",
    )

    def __init__(self, a: str, b: str, capacity_bps: float, delay_s: float):
        self.key = edge_key(a, b)
        self.capacity_bps = float(capacity_bps)
        self.nominal_capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        self.active_flows: Set[int] = set()
        self.bytes_carried = 0.0
        self._last_update = 0.0
        self._current_rate_bps = 0.0
        self.up = True

    def accumulate(self, now: float) -> None:
        """Fold bytes carried since the last rate change into the counter."""
        dt = now - self._last_update
        if dt > 0:
            self.bytes_carried += self._current_rate_bps * dt / 8.0
        self._last_update = now

    def set_rate(self, now: float, rate_bps: float) -> None:
        """Update the aggregate rate crossing this link (after accumulate)."""
        self.accumulate(now)
        self._current_rate_bps = rate_bps

    @property
    def current_rate_bps(self) -> float:
        return self._current_rate_bps

    def utilization(self) -> float:
        """Instantaneous utilisation in [0, 1+] of nominal capacity."""
        if self.nominal_capacity_bps <= 0:
            return 0.0
        return self._current_rate_bps / self.nominal_capacity_bps

    def set_up(self, up: bool) -> None:
        """Fail or restore the link (capacity drops to ~0 when down)."""
        self.up = up
        self.capacity_bps = self.nominal_capacity_bps if up else 1.0

    def degrade(self, factor: float) -> None:
        """Reduce usable capacity (e.g. duplex mismatch incident)."""
        if not 0 < factor <= 1:
            raise ValueError(f"degrade factor must be in (0, 1]: {factor}")
        self.capacity_bps = self.nominal_capacity_bps * factor

    def restore(self) -> None:
        self.capacity_bps = self.nominal_capacity_bps
        self.up = True


class LinkTable:
    """All links of a topology, keyed canonically."""

    def __init__(self):
        self._links: Dict[Tuple[str, str], Link] = {}

    @classmethod
    def from_topology(cls, topology) -> "LinkTable":
        table = cls()
        for a, b in topology.edges():
            table.add(Link(a, b, topology.link_capacity(a, b),
                           topology.link_delay(a, b)))
        return table

    def add(self, link: Link) -> None:
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key}")
        self._links[link.key] = link

    def get(self, a: str, b: str) -> Link:
        return self._links[edge_key(a, b)]

    def __iter__(self):
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)

    def links_on_path(self, path: List[str]) -> List[Link]:
        return [self.get(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def path_delay(self, path: List[str]) -> float:
        return sum(link.delay_s for link in self.links_on_path(path))
