"""Fluid flow model with max-min fair bandwidth sharing.

Packet-level simulation of a 10 Gbps campus border is infeasible in
pure Python, so the simulator uses the standard fluid abstraction: each
flow transfers bytes at a rate decided by **progressive-filling max-min
fairness** across the links on its path, re-computed whenever the set
of active flows changes.  Packet records are synthesized afterwards
(:mod:`repro.netsim.packets`), preserving per-flow byte counts and
timing, which is all the capture substrate observes.

Invariants (property-tested in ``tests/netsim/test_fairness.py``):

* no link carries more than its capacity;
* a flow's rate never exceeds its application rate cap;
* a flow not at its cap is bottlenecked on at least one saturated link;
* equal-demand flows sharing the same bottleneck get equal rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.netsim.links import Link, LinkTable
from repro.netsim.packets import FiveTuple, Protocol
from repro.netsim.simulator import EventHandle, Simulator

RATE_EPSILON = 1e-9
BYTES_EPSILON = 0.5


def rate_curve(starts, ends, sizes, bin_seconds: float,
               t0: float, t1: float) -> np.ndarray:
    """Aggregate byte rate per time bin from per-flow (start, end, bytes).

    Each flow's bytes are spread uniformly across its lifetime (the
    fluid abstraction) and accumulated into ``[t0, t1)`` bins of
    ``bin_seconds``.  This is the common yardstick the equivalence
    suite uses to compare the discrete engine's completed flows with
    the fluid engine's tap output: both reduce to the same curve.
    """
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    n_bins = max(int(math.ceil((t1 - t0) / bin_seconds)), 1)
    curve = np.zeros(n_bins)
    durations = np.maximum(ends - starts, 1e-9)
    edges = t0 + np.arange(n_bins + 1) * bin_seconds
    for b in range(n_bins):
        overlap = (np.minimum(ends, edges[b + 1])
                   - np.maximum(starts, edges[b]))
        overlap = np.maximum(overlap, 0.0)
        curve[b] = float(np.sum(sizes * overlap / durations))
    return curve / bin_seconds


@dataclass
class Flow:
    """A transport flow moving ``size_bytes`` between two endpoints.

    ``fwd_fraction`` splits the total bytes between the forward
    direction (initiator -> responder) and the reverse direction; a web
    download has a small forward fraction, an upload a large one.
    """

    flow_id: int
    key: FiveTuple
    src_node: str
    dst_node: str
    size_bytes: float
    app: str = "generic"
    label: str = "benign"
    protocol: int = int(Protocol.TCP)
    fwd_fraction: float = 0.1
    rate_cap_bps: Optional[float] = None
    ttl: int = 64
    payload_fn: Optional[Callable] = None
    src_internal: bool = True

    # Set by the fluid network.
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    path: List[str] = field(default_factory=list)
    transferred_bytes: float = 0.0
    current_rate_bps: float = 0.0

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def remaining_bytes(self) -> float:
        return max(self.size_bytes - self.transferred_bytes, 0.0)

    @property
    def fwd_bytes(self) -> int:
        return int(round(self.transferred_bytes * self.fwd_fraction))

    @property
    def rev_bytes(self) -> int:
        return int(round(self.transferred_bytes * (1.0 - self.fwd_fraction)))

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def wire_direction(self, packet_direction: str) -> str:
        """Map fwd/rev packet direction onto in/out across the border.

        A forward packet of a campus-initiated flow leaves the campus
        ("out"); for an externally initiated flow it enters ("in").
        """
        if packet_direction == "fwd":
            return "out" if self.src_internal else "in"
        return "in" if self.src_internal else "out"


class FluidFlowNetwork:
    """Tracks active flows and allocates max-min fair rates.

    Parameters
    ----------
    simulator:
        The event engine driving flow completions.
    links:
        The :class:`LinkTable` built from the topology.
    router:
        Path provider (``router.path(src, dst)``).
    on_flow_complete:
        Callback invoked with each flow when it finishes (or is
        truncated by :meth:`drain`).
    """

    def __init__(self, simulator: Simulator, links: LinkTable, router,
                 on_flow_complete: Optional[Callable[[Flow], None]] = None):
        self.simulator = simulator
        self.links = links
        self.router = router
        self.on_flow_complete = on_flow_complete
        self.active: Dict[int, Flow] = {}
        self.completed_count = 0
        self._completion_event: Optional[EventHandle] = None
        self._last_progress_time = simulator.now
        # Rate-limit rules installed by the control plane / switch:
        # flow predicate -> cap in bps (None = drop).
        self._policers: List = []
        #: flows refused admission by a drop policer (zero bytes moved);
        #: kept for collateral-damage accounting.
        self.blocked_flows: List[Flow] = []

    # -- public API --------------------------------------------------------

    def start_flow(self, flow: Flow) -> Flow:
        """Admit a flow, route it, and begin transferring bytes."""
        if flow.flow_id in self.active:
            raise ValueError(f"flow id {flow.flow_id} already active")
        if flow.size_bytes <= 0:
            raise ValueError(f"flow {flow.flow_id} has non-positive size")
        flow.path = self.router.path(flow.src_node, flow.dst_node)
        flow.start_time = self.simulator.now
        if self._drop_policer_matches(flow):
            # Refused at ingress: zero bytes cross any link.
            flow.end_time = flow.start_time + 1e-6
            flow.current_rate_bps = 0.0
            self.blocked_flows.append(flow)
            return flow
        self._advance_progress()
        self.active[flow.flow_id] = flow
        for link in self.links.links_on_path(flow.path):
            link.active_flows.add(flow.flow_id)
        self._reallocate()
        return flow

    def abort_flow(self, flow_id: int) -> Optional[Flow]:
        """Terminate a flow immediately (e.g. dropped by a mitigation)."""
        flow = self.active.get(flow_id)
        if flow is None:
            return None
        self._advance_progress()
        self._finish(flow)
        self._reallocate()
        return flow

    def drain(self) -> List[Flow]:
        """Truncate all still-active flows at the current time."""
        self._advance_progress()
        flows = list(self.active.values())
        for flow in flows:
            self._finish(flow)
        self._reallocate()
        return flows

    def reallocate_now(self) -> None:
        """Force a rate recomputation (after link failures, policers...)."""
        self._advance_progress()
        self._reallocate()

    def install_policer(self, predicate: Callable[[Flow], bool],
                        cap_bps: Optional[float]) -> Callable[[], None]:
        """Install a rate cap (or drop, if ``cap_bps`` is None) on
        matching flows.  Returns a removal callable."""
        entry = (predicate, cap_bps)
        self._policers.append(entry)
        self.reallocate_now()
        # Dropping is applied immediately to active flows.
        if cap_bps is None:
            for flow in list(self.active.values()):
                if predicate(flow):
                    self.abort_flow(flow.flow_id)

        def remove() -> None:
            if entry in self._policers:
                self._policers.remove(entry)
                self.reallocate_now()

        return remove

    def link_rates(self) -> Dict:
        """Current aggregate rate per link (for telemetry/SLO sensing)."""
        return {link.key: link.current_rate_bps for link in self.links}

    # -- internals ---------------------------------------------------------

    def _advance_progress(self) -> None:
        """Credit every active flow with bytes moved since last event."""
        now = self.simulator.now
        dt = now - self._last_progress_time
        if dt > 0:
            for flow in self.active.values():
                flow.transferred_bytes = min(
                    flow.size_bytes,
                    flow.transferred_bytes + flow.current_rate_bps * dt / 8.0,
                )
        self._last_progress_time = now

    def _drop_policer_matches(self, flow: Flow) -> bool:
        return any(cap is None and predicate(flow)
                   for predicate, cap in self._policers)

    def _effective_cap(self, flow: Flow) -> Optional[float]:
        cap = flow.rate_cap_bps
        for predicate, policer_cap in self._policers:
            if policer_cap is not None and predicate(flow):
                cap = policer_cap if cap is None else min(cap, policer_cap)
        return cap

    def _reallocate(self) -> None:
        """Progressive-filling max-min fair allocation."""
        now = self.simulator.now
        flows = list(self.active.values())
        rates = {f.flow_id: 0.0 for f in flows}
        unfrozen: Set[int] = set(rates)

        # Freeze capped flows whose cap is below any attainable share up
        # front is incorrect in general; instead run progressive filling
        # where at each round the binding constraint is either a link
        # fair share or a flow cap, whichever is smallest.
        link_capacity = {link.key: link.capacity_bps for link in self.links}
        flow_links = {
            f.flow_id: [link.key for link in self.links.links_on_path(f.path)]
            for f in flows
        }
        caps = {f.flow_id: self._effective_cap(f) for f in flows}

        while unfrozen:
            # Fair share each link could still add per unfrozen flow.
            best_increment = None
            for link in self.links:
                crossing = [fid for fid in link.active_flows if fid in unfrozen]
                if not crossing:
                    continue
                increment = link_capacity[link.key] / len(crossing)
                if best_increment is None or increment < best_increment:
                    best_increment = increment
            # Binding flow caps can be tighter than any link share.
            cap_bound = None
            for fid in unfrozen:
                cap = caps[fid]
                if cap is None:
                    continue
                headroom = cap - rates[fid]
                if cap_bound is None or headroom < cap_bound:
                    cap_bound = headroom
            if best_increment is None and cap_bound is None:
                break
            if best_increment is None or (
                cap_bound is not None and cap_bound < best_increment
            ):
                increment = max(cap_bound, 0.0)
                rates_to_freeze = {
                    fid for fid in unfrozen
                    if caps[fid] is not None
                    and caps[fid] - rates[fid] <= increment + RATE_EPSILON
                }
            else:
                increment = best_increment
                rates_to_freeze = set()
            for fid in unfrozen:
                rates[fid] += increment
            for link in self.links:
                crossing = [fid for fid in link.active_flows if fid in unfrozen]
                if crossing:
                    link_capacity[link.key] -= increment * len(crossing)
                    if link_capacity[link.key] <= RATE_EPSILON:
                        rates_to_freeze.update(crossing)
                        link_capacity[link.key] = 0.0
            if not rates_to_freeze:
                # Numerical corner: freeze everything to guarantee progress.
                rates_to_freeze = set(unfrozen)
            unfrozen -= rates_to_freeze

        for flow in flows:
            flow.current_rate_bps = rates[flow.flow_id]
        for link in self.links:
            aggregate = sum(
                rates[fid] for fid in link.active_flows if fid in rates
            )
            link.set_rate(now, aggregate)
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        soonest: Optional[float] = None
        for flow in self.active.values():
            if flow.current_rate_bps <= RATE_EPSILON:
                continue
            eta = flow.remaining_bytes * 8.0 / flow.current_rate_bps
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is None:
            return
        self._completion_event = self.simulator.schedule(
            max(soonest, 0.0), self._on_completion_tick, name="flow-complete"
        )

    def _on_completion_tick(self) -> None:
        self._advance_progress()
        done = [
            f for f in self.active.values()
            if f.remaining_bytes <= BYTES_EPSILON
        ]
        for flow in done:
            flow.transferred_bytes = flow.size_bytes
            self._finish(flow)
        self._reallocate()

    def _finish(self, flow: Flow) -> None:
        flow.end_time = self.simulator.now
        if flow.end_time <= flow.start_time:
            # Zero-duration flows break packet timestamp spreading.
            flow.end_time = flow.start_time + 1e-6
        flow.current_rate_bps = 0.0
        del self.active[flow.flow_id]
        for link in self.links.links_on_path(flow.path):
            link.active_flows.discard(flow.flow_id)
        self.completed_count += 1
        if self.on_flow_complete is not None and flow.transferred_bytes > 0:
            self.on_flow_complete(flow)
