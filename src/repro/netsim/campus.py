"""Prebuilt campus profiles.

Experiments need reproducible campuses of different sizes and traffic
characters — in particular E8 (cross-campus reproducibility) trains the
same open-sourced learning algorithm on several *different* campuses.
A :class:`CampusProfile` bundles a topology spec with a traffic-mix
builder and activity level; :func:`make_campus` instantiates a running
:class:`~repro.netsim.network.CampusNetwork` from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.netsim.network import CampusNetwork
from repro.netsim.topology import TopologySpec
from repro.netsim.traffic.base import TrafficMix
from repro.netsim.traffic.profiles import (
    BulkTransferModel,
    DnsModel,
    MailModel,
    NtpModel,
    SoftwareUpdateModel,
    SshModel,
    VideoStreamingModel,
    WebBrowsingModel,
)


@dataclass
class CampusProfile:
    """A reproducible campus configuration."""

    name: str
    spec: TopologySpec
    mix_builder: Callable[[], TrafficMix]
    mean_flows_per_hour: float = 120.0
    description: str = ""

    def build(self, seed: int = 0, start_time: float = 8 * 3600.0,
              mean_flows_per_hour: Optional[float] = None) -> CampusNetwork:
        return CampusNetwork(
            topology=_build_topology(self.spec, seed),
            mix=self.mix_builder(),
            seed=seed,
            mean_flows_per_hour=(mean_flows_per_hour
                                 if mean_flows_per_hour is not None
                                 else self.mean_flows_per_hour),
            start_time=start_time,
        )


def _build_topology(spec: TopologySpec, seed: int):
    from repro.netsim.topology import build_campus_topology

    return build_campus_topology(spec, seed)


def _mix_teaching() -> TrafficMix:
    """Teaching-heavy campus: web/video dominant, little bulk."""
    return TrafficMix([
        (DnsModel(), 0.36),
        (WebBrowsingModel(), 0.38),
        (VideoStreamingModel(), 0.12),
        (SshModel(), 0.02),
        (MailModel(), 0.08),
        (NtpModel(), 0.03),
        (SoftwareUpdateModel(), 0.01),
    ])


def _mix_research() -> TrafficMix:
    """Research university: significant bulk science transfers and SSH."""
    return TrafficMix([
        (DnsModel(), 0.34),
        (WebBrowsingModel(), 0.28),
        (VideoStreamingModel(), 0.06),
        (SshModel(), 0.12),
        (MailModel(), 0.08),
        (NtpModel(), 0.04),
        (SoftwareUpdateModel(), 0.04),
        (BulkTransferModel(), 0.04),
    ])


def _mix_residential() -> TrafficMix:
    """Residential campus: streaming-heavy evenings."""
    return TrafficMix([
        (DnsModel(), 0.30),
        (WebBrowsingModel(), 0.30),
        (VideoStreamingModel(), 0.25),
        (SshModel(), 0.01),
        (MailModel(), 0.06),
        (NtpModel(), 0.04),
        (SoftwareUpdateModel(), 0.04),
    ])


def _mix_default() -> TrafficMix:
    from repro.netsim.traffic.profiles import default_mix

    return default_mix()


CAMPUS_PROFILES: Dict[str, CampusProfile] = {
    "tiny": CampusProfile(
        name="tiny",
        spec=TopologySpec(name="tiny", departments=2, access_per_department=1,
                          hosts_per_access=4, servers=2, wifi_aps=1,
                          hosts_per_ap=3, internet_hosts=12,
                          uplink_gbps=1.0),
        mix_builder=_mix_default,
        mean_flows_per_hour=60.0,
        description="Unit-test scale campus (~14 hosts).",
    ),
    "small": CampusProfile(
        name="small",
        spec=TopologySpec(name="small", departments=3, access_per_department=2,
                          hosts_per_access=6, servers=3, wifi_aps=2,
                          hosts_per_ap=5, internet_hosts=30,
                          uplink_gbps=10.0),
        mix_builder=_mix_default,
        mean_flows_per_hour=90.0,
        description="Small college (~46 hosts, 10G uplink).",
    ),
    "medium": CampusProfile(
        name="medium",
        spec=TopologySpec(name="medium", departments=6,
                          access_per_department=3, hosts_per_access=10,
                          servers=6, wifi_aps=4, hosts_per_ap=10,
                          internet_hosts=60, uplink_gbps=10.0),
        mix_builder=_mix_default,
        mean_flows_per_hour=120.0,
        description="Mid-size university (~220 hosts, 10G uplink).",
    ),
    "teaching": CampusProfile(
        name="teaching",
        spec=TopologySpec(name="teaching", departments=4,
                          access_per_department=2, hosts_per_access=8,
                          servers=3, wifi_aps=3, hosts_per_ap=8,
                          internet_hosts=40, uplink_gbps=10.0),
        mix_builder=_mix_teaching,
        mean_flows_per_hour=140.0,
        description="Teaching college: web/video-dominant mix.",
    ),
    "research": CampusProfile(
        name="research",
        spec=TopologySpec(name="research", departments=5,
                          access_per_department=2, hosts_per_access=8,
                          servers=6, wifi_aps=2, hosts_per_ap=6,
                          internet_hosts=50, uplink_gbps=20.0,
                          core_gbps=100.0),
        mix_builder=_mix_research,
        mean_flows_per_hour=100.0,
        description="Research university: bulk science flows, 2x10G uplink.",
    ),
    "residential": CampusProfile(
        name="residential",
        spec=TopologySpec(name="residential", departments=3,
                          access_per_department=3, hosts_per_access=10,
                          servers=2, wifi_aps=6, hosts_per_ap=12,
                          internet_hosts=45, uplink_gbps=10.0),
        mix_builder=_mix_residential,
        mean_flows_per_hour=160.0,
        description="Residential campus: streaming-heavy, large WiFi.",
    ),
}


def make_fluid_campus(profile: str = "small", n_users: int = 10_000,
                      seed: int = 0, n_cohorts: int = 32,
                      tick_seconds: float = 60.0,
                      tap_sample: float = 1.0,
                      start_time: float = 8 * 3600.0,
                      mean_flows_per_hour: Optional[float] = None,
                      obs=None) -> "FluidTrafficEngine":
    """Instantiate a fluid engine from a named campus profile.

    The profile's topology spec sets link capacities and department
    count; the fluid engine scales the *population* independently of
    the host-graph size (that is the point — a million users on the
    "small" campus link plan), so ``n_users`` replaces the discrete
    host count.

    >>> eng = make_fluid_campus("tiny", n_users=500, seed=7)
    >>> eng.config.n_users
    500
    """
    from repro.netsim.fluid import FluidConfig, FluidTrafficEngine

    try:
        prof = CAMPUS_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(CAMPUS_PROFILES))
        raise KeyError(f"unknown campus profile {profile!r}; one of: {known}")
    spec = prof.spec
    config = FluidConfig(
        n_users=n_users,
        n_cohorts=n_cohorts,
        mean_flows_per_hour=(mean_flows_per_hour
                             if mean_flows_per_hour is not None
                             else prof.mean_flows_per_hour),
        tick_seconds=tick_seconds,
        tap_sample=tap_sample,
        host_rate_bps=spec.host_mbps * 1e6,
        uplink_gbps=spec.uplink_gbps,
        core_gbps=spec.core_gbps,
        distribution_gbps=spec.distribution_gbps,
        n_departments=spec.departments,
        internet_hosts=max(spec.internet_hosts, 256),
        start_time=start_time,
    )
    return FluidTrafficEngine(config=config, mix=prof.mix_builder(),
                              seed=seed, obs=obs)


def make_campus(profile: str = "small", seed: int = 0,
                start_time: float = 8 * 3600.0,
                mean_flows_per_hour: Optional[float] = None) -> CampusNetwork:
    """Instantiate a named campus profile.

    ``mean_flows_per_hour`` overrides the profile's per-user activity
    (used by experiments that need denser background traffic than the
    profile default).

    >>> net = make_campus("tiny", seed=7)
    >>> len(net.topology.hosts) > 0
    True
    """
    try:
        spec = CAMPUS_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(CAMPUS_PROFILES))
        raise KeyError(f"unknown campus profile {profile!r}; one of: {known}")
    return spec.build(seed=seed, start_time=start_time,
                      mean_flows_per_hour=mean_flows_per_hour)
