"""Shortest-path routing over the campus topology.

The campus runs a single IGP; we model it as hop-count shortest paths
with deterministic tie-breaking, cached per (src, dst) pair.  When a
link fails, :meth:`Router.invalidate` clears the cache so subsequent
flows route around the failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx


class NoRouteError(Exception):
    """Raised when no path exists between two endpoints."""


class Router:
    """Cached shortest-path router."""

    def __init__(self, topology):
        self._topology = topology
        self._cache: Dict[Tuple[str, str], List[str]] = {}
        self._down_edges: set = set()

    def path(self, src: str, dst: str) -> List[str]:
        """Return the node path from ``src`` to ``dst`` (inclusive)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        graph = self._working_graph()
        try:
            path = nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route {src} -> {dst}") from exc
        self._cache[key] = path
        self._cache[(dst, src)] = list(reversed(path))
        return path

    def _working_graph(self) -> nx.Graph:
        if not self._down_edges:
            return self._topology.graph
        graph = self._topology.graph.copy()
        graph.remove_edges_from(self._down_edges)
        return graph

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Mark a link up/down for routing purposes and flush the cache."""
        edge = (a, b) if a <= b else (b, a)
        if up:
            self._down_edges.discard(edge)
        else:
            self._down_edges.add(edge)
        self.invalidate()

    def invalidate(self) -> None:
        self._cache.clear()

    def crosses(self, path: List[str], a: str, b: str) -> bool:
        """True if the path traverses link (a, b) in either direction."""
        for i in range(len(path) - 1):
            hop = (path[i], path[i + 1])
            if hop == (a, b) or hop == (b, a):
                return True
        return False
