"""Campus topology construction.

Builds the classic three-tier enterprise design the paper's campus
network would use: a border router facing the upstream provider(s), a
redundant core, one distribution switch per department, access switches
fanning out to end hosts, a server farm, and WiFi access points.  An
``internet`` super-node plus a set of remote endpoints model everything
beyond the border.

The topology is a :class:`networkx.Graph` wrapped with typed accessors;
experiments never touch raw networkx attributes directly.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class NodeKind(enum.Enum):
    """Role of a node in the campus graph."""

    BORDER = "border"
    CORE = "core"
    DISTRIBUTION = "distribution"
    ACCESS = "access"
    HOST = "host"
    SERVER = "server"
    WIFI_AP = "wifi_ap"
    INTERNET_GW = "internet_gw"
    INTERNET_HOST = "internet_host"

    @property
    def is_switch(self) -> bool:
        return self in (
            NodeKind.BORDER,
            NodeKind.CORE,
            NodeKind.DISTRIBUTION,
            NodeKind.ACCESS,
            NodeKind.WIFI_AP,
            NodeKind.INTERNET_GW,
        )

    @property
    def is_endpoint(self) -> bool:
        return self in (NodeKind.HOST, NodeKind.SERVER, NodeKind.INTERNET_HOST)


GBPS = 1_000_000_000
MBPS = 1_000_000


@dataclass
class TopologySpec:
    """Knobs controlling campus size and link speeds."""

    name: str = "campus"
    departments: int = 4
    access_per_department: int = 2
    hosts_per_access: int = 10
    servers: int = 4
    wifi_aps: int = 2
    hosts_per_ap: int = 8
    internet_hosts: int = 40
    uplink_gbps: float = 10.0
    core_gbps: float = 40.0
    distribution_gbps: float = 10.0
    access_gbps: float = 1.0
    host_mbps: float = 1000.0
    uplink_delay_s: float = 0.004
    internal_delay_s: float = 0.0002
    campus_net: str = "10.0.0.0/8"


class CampusTopology:
    """A campus network graph with IP addressing and role metadata."""

    def __init__(self, name: str = "campus"):
        self.name = name
        self.graph = nx.Graph()
        self._ips: Dict[str, str] = {}
        self._by_ip: Dict[str, str] = {}
        self._internal_cache: Dict[str, bool] = {}
        self._by_kind: Dict[NodeKind, List[str]] = {kind: [] for kind in NodeKind}
        self.border_link: Optional[Tuple[str, str]] = None
        self.campus_prefix: Optional[ipaddress.IPv4Network] = None

    # -- construction ----------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind, ip: Optional[str] = None,
                 department: Optional[str] = None) -> str:
        if node_id in self.graph:
            raise ValueError(f"duplicate node id: {node_id}")
        self.graph.add_node(node_id, kind=kind, ip=ip, department=department)
        self._by_kind[kind].append(node_id)
        if ip is not None:
            self._ips[node_id] = ip
            self._by_ip[ip] = node_id
        return node_id

    def add_link(self, a: str, b: str, capacity_bps: float, delay_s: float) -> None:
        if a not in self.graph or b not in self.graph:
            raise ValueError(f"unknown endpoint in link ({a}, {b})")
        self.graph.add_edge(a, b, capacity_bps=float(capacity_bps),
                            delay_s=float(delay_s))

    # -- accessors -------------------------------------------------------

    def nodes_of_kind(self, kind: NodeKind) -> List[str]:
        return list(self._by_kind[kind])

    def kind(self, node_id: str) -> NodeKind:
        return self.graph.nodes[node_id]["kind"]

    def ip(self, node_id: str) -> Optional[str]:
        return self._ips.get(node_id)

    def node_by_ip(self, ip: str) -> Optional[str]:
        return self._by_ip.get(ip)

    def department(self, node_id: str) -> Optional[str]:
        return self.graph.nodes[node_id].get("department")

    @property
    def hosts(self) -> List[str]:
        return self.nodes_of_kind(NodeKind.HOST)

    @property
    def servers(self) -> List[str]:
        return self.nodes_of_kind(NodeKind.SERVER)

    @property
    def internet_hosts(self) -> List[str]:
        return self.nodes_of_kind(NodeKind.INTERNET_HOST)

    @property
    def endpoints(self) -> List[str]:
        return [n for n in self.graph.nodes if self.kind(n).is_endpoint]

    def is_internal_ip(self, ip: str) -> bool:
        """True if ``ip`` belongs to the campus address space.

        Called per captured packet, so results are memoized.
        """
        if self.campus_prefix is None:
            return False
        cached = self._internal_cache.get(ip)
        if cached is None:
            try:
                cached = ipaddress.ip_address(ip) in self.campus_prefix
            except ValueError:
                cached = False
            self._internal_cache[ip] = cached
        return cached

    def link_capacity(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["capacity_bps"]

    def link_delay(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["delay_s"]

    def edges(self) -> Iterable[Tuple[str, str]]:
        return self.graph.edges()

    def validate(self) -> None:
        """Sanity checks used by tests and the platform on startup."""
        if not nx.is_connected(self.graph):
            raise ValueError("campus topology is not connected")
        if self.border_link is None:
            raise ValueError("campus topology has no border link")
        for node in self.endpoints:
            if self.ip(node) is None:
                raise ValueError(f"endpoint {node} has no IP address")
        ips = [self.ip(n) for n in self.endpoints]
        if len(set(ips)) != len(ips):
            raise ValueError("duplicate endpoint IP addresses")


def build_campus_topology(spec: TopologySpec, seed: int = 0) -> CampusTopology:
    """Build a three-tier campus plus an Internet side per ``spec``.

    IP plan: department d, access switch a, host h gets
    ``10.(d+1).(a).(h+10)``; servers live in ``10.250.0.0/24``; WiFi
    clients in ``10.200.ap.0/24``.  Internet hosts get deterministic
    public addresses derived from the seed.
    """
    topo = CampusTopology(spec.name)
    topo.campus_prefix = ipaddress.ip_network(spec.campus_net)

    border = topo.add_node("border", NodeKind.BORDER)
    inet_gw = topo.add_node("internet", NodeKind.INTERNET_GW)
    topo.add_link(border, inet_gw, spec.uplink_gbps * GBPS, spec.uplink_delay_s)
    topo.border_link = (border, inet_gw)

    cores = []
    for i in range(2):
        core = topo.add_node(f"core{i}", NodeKind.CORE)
        topo.add_link(border, core, spec.core_gbps * GBPS, spec.internal_delay_s)
        cores.append(core)
    topo.add_link(cores[0], cores[1], spec.core_gbps * GBPS, spec.internal_delay_s)

    for d in range(spec.departments):
        dept = f"dept{d}"
        dist = topo.add_node(f"dist{d}", NodeKind.DISTRIBUTION, department=dept)
        topo.add_link(dist, cores[d % 2], spec.distribution_gbps * GBPS,
                      spec.internal_delay_s)
        for a in range(spec.access_per_department):
            access = topo.add_node(f"acc{d}_{a}", NodeKind.ACCESS, department=dept)
            topo.add_link(access, dist, spec.access_gbps * GBPS,
                          spec.internal_delay_s)
            for h in range(spec.hosts_per_access):
                ip = f"10.{d + 1}.{a}.{h + 10}"
                host = topo.add_node(f"h{d}_{a}_{h}", NodeKind.HOST, ip=ip,
                                     department=dept)
                topo.add_link(host, access, spec.host_mbps * MBPS,
                              spec.internal_delay_s)

    if spec.servers:
        server_dist = topo.add_node("dist_srv", NodeKind.DISTRIBUTION,
                                    department="datacenter")
        topo.add_link(server_dist, cores[0], spec.distribution_gbps * GBPS,
                      spec.internal_delay_s)
        for s in range(spec.servers):
            ip = f"10.250.0.{s + 10}"
            server = topo.add_node(f"srv{s}", NodeKind.SERVER, ip=ip,
                                   department="datacenter")
            topo.add_link(server, server_dist, spec.access_gbps * GBPS,
                          spec.internal_delay_s)

    for ap_i in range(spec.wifi_aps):
        ap = topo.add_node(f"ap{ap_i}", NodeKind.WIFI_AP, department="wifi")
        topo.add_link(ap, cores[ap_i % 2], spec.access_gbps * GBPS,
                      spec.internal_delay_s)
        for h in range(spec.hosts_per_ap):
            ip = f"10.200.{ap_i}.{h + 10}"
            host = topo.add_node(f"w{ap_i}_{h}", NodeKind.HOST, ip=ip,
                                 department="wifi")
            topo.add_link(host, ap, 100 * MBPS, spec.internal_delay_s)

    for i in range(spec.internet_hosts):
        ip = _public_ip(seed, i)
        host = topo.add_node(f"inet{i}", NodeKind.INTERNET_HOST, ip=ip)
        topo.add_link(host, inet_gw, 10 * GBPS, 0.01 + (i % 7) * 0.005)

    topo.validate()
    return topo


# First octets that can never produce private, loopback, link-local,
# multicast, or reserved space regardless of the remaining octets.
_SAFE_FIRST_OCTETS = tuple(
    o for o in range(11, 191) if o not in (10, 127, 169, 172, 192)
)


def _public_ip(seed: int, index: int) -> str:
    """Deterministic globally-routable address for remote endpoint
    ``index`` (property-tested to never be private/reserved)."""
    value = (seed * 2654435761 + index * 40503 + 0x0B000000) & 0xFFFFFFFF
    octets = [(value >> s) & 0xFF for s in (24, 16, 8, 0)]
    octets[0] = _SAFE_FIRST_OCTETS[octets[0] % len(_SAFE_FIRST_OCTETS)]
    return ".".join(str(o) for o in octets)
