"""Deterministic discrete-event simulation engine.

The engine is a classic binary-heap scheduler.  Events scheduled for the
same timestamp fire in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which makes every simulation in
this package fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised on invalid scheduler usage (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    name: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if not self._event.cancelled:
            self._event.cancelled = True
            self._sim._note_cancel()


class Simulator:
    """A discrete-event scheduler with deterministic tie-breaking.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(1.0, lambda: fired.append("a"))
    >>> _ = sim.schedule_at(1.0, lambda: fired.append("b"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    #: lazy-compaction trigger: compact in :meth:`step` once at least
    #: this many cancelled events linger AND they outnumber live ones.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    def _note_cancel(self) -> None:
        self._cancelled += 1

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify the survivors.

        Cancellation only marks events; long-running simulations that
        reschedule aggressively (timeout patterns) would otherwise keep
        tombstones in the heap until their original deadline.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} (now={self._now})"
            )
        event = _ScheduledEvent(float(time), next(self._seq), callback, name=name)
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, name=name)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self._compact()
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` processed).

        Returns the number of events processed by this call.
        """
        processed = 0
        self._running = True
        try:
            while self._running:
                if max_events is not None and processed >= max_events:
                    break
                if not self.step():
                    break
                processed += 1
        finally:
            self._running = False
        return processed

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= ``time``; advances clock to ``time``.

        Returns the number of events processed by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} (now={self._now})"
            )
        processed = 0
        self._running = True
        try:
            while self._running:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if self._now < time:
            self._now = time
        return processed

    def stop(self) -> None:
        """Stop a running :meth:`run`/:meth:`run_until` after current event."""
        self._running = False
