"""User population and diurnal activity patterns.

Every campus host is used by a synthetic user whose flow-arrival rate
follows a diurnal curve (quiet overnight, morning ramp, lunchtime dip,
afternoon peak).  Per-user heterogeneity comes from a gamma-distributed
activity multiplier, giving the usual heavy-tailed "top talkers".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

SECONDS_PER_DAY = 86_400.0

#: gamma shape for per-user activity multipliers (scale 1/shape keeps
#: the mean at 1.0); shared by the discrete population and the fluid
#: cohort builder so both engines model the same heterogeneity.
GAMMA_SHAPE = 1.5


def diurnal_factor(time_s: float, base: float = 0.15) -> float:
    """Activity multiplier in [base, 1] as a function of time of day.

    The curve peaks mid-afternoon (~15:00) and bottoms out ~04:00, the
    standard shape for campus traffic.
    """
    day_fraction = (time_s % SECONDS_PER_DAY) / SECONDS_PER_DAY
    # Two harmonics: the main day/night cycle plus a lunchtime dip.
    main = 0.5 * (1.0 - math.cos(2 * math.pi * (day_fraction - 0.17)))
    dip = 0.12 * math.exp(-((day_fraction - 0.52) ** 2) / 0.0008)
    value = max(main - dip, 0.0)
    return base + (1.0 - base) * min(value, 1.0)


def diurnal_factor_array(times_s, base: float = 0.15) -> np.ndarray:
    """Vectorized :func:`diurnal_factor` over an array of timestamps.

    Same curve, numpy transcendentals; agrees with the scalar form to
    float64 rounding (property-tested in ``tests/netsim/test_users``).
    """
    times = np.asarray(times_s, dtype=np.float64)
    day_fraction = np.mod(times, SECONDS_PER_DAY) / SECONDS_PER_DAY
    main = 0.5 * (1.0 - np.cos(2.0 * np.pi * (day_fraction - 0.17)))
    dip = 0.12 * np.exp(-((day_fraction - 0.52) ** 2) / 0.0008)
    value = np.maximum(main - dip, 0.0)
    return base + (1.0 - base) * np.minimum(value, 1.0)


def sample_activities(n: int, rng: np.random.Generator) -> np.ndarray:
    """Per-user gamma activity multipliers (mean 1.0, heavy-tailed)."""
    return rng.gamma(shape=GAMMA_SHAPE, scale=1.0 / GAMMA_SHAPE,
                     size=int(n))


@dataclass
class User:
    """One user bound to one campus host."""

    host: str
    activity: float  # multiplicative rate factor, mean 1.0
    department: Optional[str] = None


class UserPopulation:
    """Assigns users to hosts and produces per-host arrival rates."""

    def __init__(self, hosts: List[str], rng: np.random.Generator,
                 mean_flows_per_hour: float = 120.0,
                 departments: Optional[Dict[str, str]] = None):
        if not hosts:
            raise ValueError("user population needs at least one host")
        self.users: List[User] = []
        activities = sample_activities(len(hosts), rng)
        for host, activity in zip(hosts, activities):
            dept = departments.get(host) if departments else None
            self.users.append(User(host=host, activity=float(activity),
                                   department=dept))
        self.mean_flows_per_hour = float(mean_flows_per_hour)

    def arrival_rate(self, user: User, time_s: float) -> float:
        """Instantaneous flow arrival rate (flows/second) for ``user``."""
        base_per_s = self.mean_flows_per_hour / 3600.0
        return base_per_s * user.activity * diurnal_factor(time_s)

    def next_interarrival(self, user: User, time_s: float,
                          rng: np.random.Generator) -> float:
        """Sample the next flow interarrival for ``user`` at ``time_s``.

        Uses the current-rate exponential approximation, which is
        accurate for interarrivals short relative to the diurnal
        timescale (always true at campus rates).
        """
        rate = self.arrival_rate(user, time_s)
        if rate <= 0:
            return SECONDS_PER_DAY
        return float(rng.exponential(1.0 / rate))

    def total_expected_rate(self, time_s: float) -> float:
        return sum(self.arrival_rate(u, time_s) for u in self.users)
