"""Feature extraction from the data store.

This is the paper's "top-down" workflow (§2): with the data store
populated, the researcher iterates on features without re-running
measurements.  The primary featurizer summarises, per (time window,
external endpoint) pair, what that endpoint did to the campus —
exactly the vantage point an ingress detector deployed at the border
has.  Feature values are computed from packets (and their metadata
tags) only; labels come from ground-truth windows.

All features are non-negative and bounded-ish; deployable models
compiled to switch tables quantize them (see
:mod:`repro.deploy.compiler`), so integers-per-window are preferred to
exotic statistics.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from operator import attrgetter, itemgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datastore.query import Query
from repro.learning.dataset import Dataset
from repro.netsim.packets import PacketRecord, Protocol, TcpFlags, u32_to_ip

FEATURE_NAMES = [
    "pkts",               # packets from this endpoint in window
    "bytes",              # bytes from this endpoint in window
    "mean_pkt_size",
    "udp_fraction",
    "dns_fraction",       # packets with port 53 on either side
    "dns_response_fraction",  # of dns packets, how many are responses
    "dns_any_fraction",   # payload-derived: QTYPE=ANY fraction
    "unique_dsts",        # distinct campus addresses touched
    "unique_dports",      # distinct destination ports touched
    "syn_fraction",
    "bytes_in_out_ratio",  # bytes toward campus / bytes from campus + 1
    "mean_ttl",
    "port53_src_fraction",  # packets sourced from port 53 (reflection)
    "wellknown_dport_fraction",
    "pkt_rate",           # packets / window length
]


@dataclass
class FeatureConfig:
    """Featurizer knobs."""

    window_s: float = 5.0
    min_packets: int = 2
    use_payload_features: bool = True


@dataclass
class WindowExample:
    """One (window, endpoint) aggregation before vectorisation."""

    window_start: float
    endpoint: str
    pkts: int = 0
    bytes: int = 0
    udp_pkts: int = 0
    dns_pkts: int = 0
    dns_responses: int = 0
    dns_any: int = 0
    dsts: set = field(default_factory=set)
    dports: set = field(default_factory=set)
    syns: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    ttl_sum: int = 0
    port53_src: int = 0
    wellknown_dport: int = 0
    #: votes for non-benign labels seen on this endpoint's packets
    #: (used when labeling from curated store labels, not ground truth)
    label_votes: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "WindowExample") -> None:
        """Fold another partial aggregation of the same (window,
        endpoint) group into this one.  Counters add, sets union, votes
        add; callers that need the serial vote *insertion order* (the
        ``max`` tie-break) must merge votes themselves — see
        :meth:`SourceWindowFeaturizer.examples_merged`."""
        self.pkts += other.pkts
        self.bytes += other.bytes
        self.udp_pkts += other.udp_pkts
        self.dns_pkts += other.dns_pkts
        self.dns_responses += other.dns_responses
        self.dns_any += other.dns_any
        self.dsts |= other.dsts
        self.dports |= other.dports
        self.syns += other.syns
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.ttl_sum += other.ttl_sum
        self.port53_src += other.port53_src
        self.wellknown_dport += other.wellknown_dport
        for label, count in other.label_votes.items():
            self.label_votes[label] = self.label_votes.get(label, 0) + count

    def vector(self, window_s: float) -> List[float]:
        pkts = max(self.pkts, 1)
        dns = max(self.dns_pkts, 1)
        return [
            float(self.pkts),
            float(self.bytes),
            self.bytes / pkts,
            self.udp_pkts / pkts,
            self.dns_pkts / pkts,
            self.dns_responses / dns,
            self.dns_any / dns,
            float(len(self.dsts)),
            float(len(self.dports)),
            self.syns / pkts,
            self.bytes_in / (self.bytes_out + 1.0),
            self.ttl_sum / pkts,
            self.port53_src / pkts,
            self.wellknown_dport / pkts,
            self.pkts / window_s,
        ]


WELL_KNOWN = {22, 23, 25, 53, 80, 123, 143, 443, 445, 587, 993, 3306,
              3389, 5432, 6379, 8080}
_WELL_KNOWN_ARR = np.array(sorted(WELL_KNOWN), dtype=np.float64)


# -- block-local aggregation (module-level: shipped to worker processes) ------
#
# The parallel featurize path splits aggregation into a records-free half
# that runs on a bare column block inside a worker (_block_examples) and a
# parent-side merge that reconstructs the serial table order from global
# record ids (SourceWindowFeaturizer.examples_merged).  Everything a block
# needs from the stored records — DNS tag verdicts, curated labels — is
# precomputed by the parent into flat arrays and shipped with the block.


def _block_plan(cols, time_range, window_s):
    """Validate + group one column block; mirrors ``_segment_plan`` but
    needs no segment.  Returns the plan tuple, ``()`` when the time
    range selects nothing, or None when the block resists vectorized
    aggregation."""
    if not isinstance(cols.src_ip, np.ndarray) \
            or not isinstance(cols.dst_ip, np.ndarray):
        return None
    ts = cols.timestamp
    if np.isnan(ts).any():
        return None
    if time_range is not None:
        start, end = time_range
        sel = np.ones(len(ts), dtype=bool)
        if start is not None:
            sel &= ts >= start
        if end is not None:
            sel &= ts <= end
        positions = np.flatnonzero(sel)
    else:
        positions = np.arange(len(ts))
    if len(positions) == 0:
        return ()

    widx = np.floor(ts[positions] / window_s)
    if not (widx.min() >= -(1 << 31) and widx.max() < (1 << 31)):
        return None
    dports = cols.dst_port[positions].astype(np.int64)
    if len(dports) and not (dports.min() >= 0 and dports.max() < (1 << 16)):
        return None

    in_code = cols.direction.code_of("in")
    dir_in = (cols.direction.codes[positions] == in_code) \
        if in_code is not None else np.zeros(len(positions), dtype=bool)
    src = cols.src_ip[positions].astype(np.uint64)
    dst = cols.dst_ip[positions].astype(np.uint64)
    endpoint = np.where(dir_in, src, dst)
    group_key = ((widx.astype(np.int64) + (1 << 31)).astype(np.uint64)
                 << 32) | endpoint
    uniq, first, inv = np.unique(group_key, return_index=True,
                                 return_inverse=True)
    return (positions, widx, dir_in, dst, inv,
            np.argsort(first, kind="stable"), first, uniq)


def _block_examples(cols, time_range, window_s, use_payload,
                    resp_mask, any_mask, tagged_mask,
                    curated_codes, curated_values):
    """Aggregate one column block into partial examples (records-free).

    ``resp_mask``/``any_mask``/``tagged_mask`` are per-row DNS tag
    verdicts and ``curated_codes``/``curated_values`` the dict-encoded
    curated labels (code -1 = none), both precomputed from the stored
    records by the parent.

    Returns ``(examples, votes, first_positions)`` — examples in
    first-occurrence order with *empty* ``label_votes``, per-example
    vote maps ``{label: (first_row, count)}``, and each group's first
    row index — or None when the block needs the record path.
    """
    plan = _block_plan(cols, time_range, window_s)
    if plan is None:
        return None
    if plan == ():
        return ([], [], [])
    (positions, widx, dir_in, dst, inv, order, first, uniq) = plan
    n_groups = len(uniq)
    sizes = cols.size[positions]
    sp = cols.src_port[positions]
    dp = cols.dst_port[positions]

    def per_group(weights):
        return np.bincount(inv, weights=weights, minlength=n_groups)

    pkts = np.bincount(inv, minlength=n_groups)
    bytes_total = per_group(sizes)
    ttl_sum = per_group(cols.ttl[positions])
    udp = per_group(cols.protocol[positions] == float(Protocol.UDP))
    is_dns = (sp == 53) | (dp == 53)
    dns_pkts = per_group(is_dns)
    bytes_in = per_group(sizes * dir_in)
    bytes_out = per_group(sizes * ~dir_in)
    flags = cols.flags[positions].astype(np.int64)
    syns = per_group((flags & int(TcpFlags.SYN) != 0)
                     & (flags & int(TcpFlags.ACK) == 0))
    wellknown = per_group(np.isin(dp, _WELL_KNOWN_ARR) & dir_in)
    port53_src = per_group((sp == 53) & dir_in)

    # DNS tag counters, fully vectorized off the precomputed verdicts;
    # untagged (or payload-blind) DNS falls back to the port heuristic.
    tagged = (tagged_mask[positions] if use_payload
              else np.zeros(len(positions), dtype=bool))
    heuristic = dir_in & (sp == 53)
    dns_resp = per_group(is_dns & ((tagged & resp_mask[positions])
                                   | (~tagged & heuristic)))
    dns_any = per_group(is_dns & tagged & any_mask[positions])

    examples: List[WindowExample] = [None] * n_groups
    first_positions: List[int] = [0] * n_groups
    for j in order.tolist():
        example = WindowExample(
            window_start=float(widx[first[j]]) * window_s,
            endpoint=u32_to_ip(int(uniq[j] & 0xFFFFFFFF)))
        example.pkts = int(pkts[j])
        example.bytes = int(bytes_total[j])
        example.ttl_sum = int(ttl_sum[j])
        example.udp_pkts = int(udp[j])
        example.dns_pkts = int(dns_pkts[j])
        example.dns_responses = int(dns_resp[j])
        example.dns_any = int(dns_any[j])
        example.bytes_in = int(bytes_in[j])
        example.bytes_out = int(bytes_out[j])
        example.syns = int(syns[j])
        example.wellknown_dport = int(wellknown[j])
        example.port53_src = int(port53_src[j])
        examples[j] = example
        first_positions[j] = int(positions[first[j]])

    in_idx = np.flatnonzero(dir_in)
    if len(in_idx):
        inv64 = inv.astype(np.uint64)
        for k in np.unique((inv64[in_idx] << 32) | dst[in_idx]).tolist():
            examples[k >> 32].dsts.add(u32_to_ip(k & 0xFFFFFFFF))
        dp64 = dp.astype(np.uint64)
        for k in np.unique((inv64[in_idx] << 16) | dp64[in_idx]).tolist():
            examples[k >> 16].dports.add(k & 0xFFFF)

    # Label votes as {label: (first_row, count)}: the parent needs the
    # first-occurrence row to rebuild the serial vote insertion order.
    votes: List[Dict[str, Tuple[int, int]]] = [dict() for _ in range(n_groups)]
    label_values = cols.label.values
    code_votable = np.array(
        [v != "" and v != "benign" for v in label_values], dtype=bool)
    codes = cols.label.codes[positions]
    votable = code_votable[codes]
    if curated_codes is not None:
        votable = votable | (curated_codes[positions] >= 0)
    for i in np.flatnonzero(votable).tolist():
        pos = int(positions[i])
        label = ""
        if curated_codes is not None and curated_codes[pos] >= 0:
            label = curated_values[curated_codes[pos]]
        label = label or label_values[codes[i]]
        if label and label != "benign":
            group_votes = votes[inv[i]]
            entry = group_votes.get(label)
            group_votes[label] = (pos, 1) if entry is None \
                else (entry[0], entry[1] + 1)

    ordered = order.tolist()
    return ([examples[j] for j in ordered],
            [votes[j] for j in ordered],
            [first_positions[j] for j in ordered])


class SourceWindowFeaturizer:
    """Aggregates packets per (window, external endpoint).

    The "external endpoint" of a packet is its non-campus side: the
    source for inbound packets, the destination for outbound ones.
    This matches what an ingress filter can key on.
    """

    def __init__(self, config: Optional[FeatureConfig] = None):
        self.config = config or FeatureConfig()

    # -- aggregation --------------------------------------------------------

    def aggregate(self, packets_with_tags: Iterable[Tuple[PacketRecord,
                                                          Dict[str, str]]]) \
            -> List[WindowExample]:
        window_s = self.config.window_s
        table: Dict[Tuple[float, str], WindowExample] = {}
        for packet, tags in packets_with_tags:
            if packet.direction == "in":
                endpoint, campus_side = packet.src_ip, packet.dst_ip
            else:
                endpoint, campus_side = packet.dst_ip, packet.src_ip
            window_start = math.floor(packet.timestamp / window_s) * window_s
            key = (window_start, endpoint)
            example = table.get(key)
            if example is None:
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                table[key] = example
            self._accumulate(example, packet, tags)
        return [e for e in table.values()
                if e.pkts >= self.config.min_packets]

    def _accumulate(self, example: WindowExample, packet: PacketRecord,
                    tags: Dict[str, str],
                    label: Optional[str] = None) -> None:
        if label and label != "benign":
            example.label_votes[label] = \
                example.label_votes.get(label, 0) + 1
        example.pkts += 1
        example.bytes += packet.size
        example.ttl_sum += packet.ttl
        if packet.protocol == int(Protocol.UDP):
            example.udp_pkts += 1
        is_dns = 53 in (packet.src_port, packet.dst_port)
        if is_dns:
            example.dns_pkts += 1
            if self.config.use_payload_features and tags:
                if tags.get("dns_qr") == "response":
                    example.dns_responses += 1
                if tags.get("dns_qtype") == "ANY":
                    example.dns_any += 1
            elif packet.direction == "in" and packet.src_port == 53:
                # Without payload access, fall back to port heuristics.
                example.dns_responses += 1
        if packet.direction == "in":
            example.bytes_in += packet.size
            example.dsts.add(packet.dst_ip)
            example.dports.add(packet.dst_port)
            if packet.dst_port in WELL_KNOWN:
                example.wellknown_dport += 1
            if packet.src_port == 53:
                example.port53_src += 1
        else:
            example.bytes_out += packet.size
        if packet.is_syn():
            example.syns += 1

    # -- vectorisation -------------------------------------------------------

    def to_dataset(self, examples: Sequence[WindowExample],
                   ground_truth=None,
                   class_names: Optional[List[str]] = None) -> Dataset:
        """Vectorise examples.

        Labels come from ground-truth actor windows when
        ``ground_truth`` is given; otherwise from the per-example
        curated label votes (majority non-benign label, if any).
        """
        if class_names is None:
            labels = {"benign"}
            if ground_truth is not None:
                labels |= {w.label for w in ground_truth.windows}
            else:
                for example in examples:
                    labels |= set(example.label_votes)
            class_names = sorted(labels)
        class_index = {name: i for i, name in enumerate(class_names)}

        X, y, keys = [], [], []
        for example in examples:
            X.append(example.vector(self.config.window_s))
            label = "benign"
            if ground_truth is not None:
                mid = example.window_start + self.config.window_s / 2.0
                for window in ground_truth.windows:
                    if window.contains(mid) and example.endpoint in \
                            window.actors:
                        label = window.label
                        break
            elif example.label_votes:
                label = max(example.label_votes,
                            key=example.label_votes.get)
            y.append(class_index.get(label, class_index.get("benign", 0)))
            keys.append((example.window_start, example.endpoint))
        if not X:
            X = np.zeros((0, len(FEATURE_NAMES)))
            y = np.zeros((0,), dtype=int)
        return Dataset(np.asarray(X, dtype=float), np.asarray(y, dtype=int),
                       list(FEATURE_NAMES), class_names, keys=keys)

    # -- store-driven extraction ----------------------------------------------

    def from_store(self, store, ground_truth=None,
                   time_range: Optional[Tuple] = None,
                   class_names: Optional[List[str]] = None,
                   executor=None) -> Dataset:
        """One query, one pass: the top-down workflow.

        Without ``ground_truth``, labels come from the store's curated
        per-record labels (set by :class:`repro.datastore.labels.Labeler`
        or restored by import), which is how a standalone exported
        store stays trainable.

        When every packet segment exposes a columnar block with uint32
        address columns, aggregation runs vectorized over the columns
        (:meth:`examples_columnar`); otherwise it falls back to the
        record-at-a-time pass (:meth:`examples_from_records`).  Both
        produce identical examples in identical order.

        Sharded stores — and any store when ``executor`` carries live
        workers — go through :meth:`examples_merged`, which aggregates
        per segment (in worker processes when possible) and merges on
        global record ids; it too is bit-identical to the serial paths.
        """
        if getattr(store, "shards", None) is not None or (
                executor is not None and executor.parallel):
            examples = self.examples_merged(store, time_range,
                                            executor=executor)
        else:
            examples = self.examples_columnar(store, time_range)
        if examples is None:
            examples = self.examples_from_records(store, time_range)
        return self.to_dataset(examples, ground_truth=ground_truth,
                               class_names=class_names)

    def examples_from_records(self, store,
                              time_range: Optional[Tuple] = None) \
            -> List[WindowExample]:
        """Record-at-a-time aggregation (the semantics reference)."""
        stored = store.query(Query(collection="packets",
                                   time_range=time_range,
                                   order_by_time=False))
        window_s = self.config.window_s
        table: Dict[Tuple[float, str], WindowExample] = {}
        for s in stored:
            packet = s.record
            if packet.direction == "in":
                endpoint = packet.src_ip
            else:
                endpoint = packet.dst_ip
            window_start = math.floor(packet.timestamp / window_s) \
                * window_s
            key = (window_start, endpoint)
            example = table.get(key)
            if example is None:
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                table[key] = example
            self._accumulate(example, packet, s.tags,
                             label=s.label or packet.label)
        return [e for e in table.values()
                if e.pkts >= self.config.min_packets]

    def examples_columnar(self, store,
                          time_range: Optional[Tuple] = None) \
            -> Optional[List[WindowExample]]:
        """Vectorized aggregation straight off the segment columns.

        Returns None when any segment resists columnar processing
        (no column block, non-canonical addresses, NaN timestamps,
        out-of-range windows or ports) — the caller then takes the
        record path.  Validation happens before any accumulation so a
        late fallback never observes a half-built table.
        """
        segments = [s for s in store.segments("packets") if s.records]
        plans = []
        for segment in segments:
            plan = self._segment_plan(segment, time_range)
            if plan is None:
                return None
            plans.append(plan)

        table: Dict[Tuple[float, str], WindowExample] = {}
        for segment, plan in zip(segments, plans):
            if plan:
                self._merge_segment(table, segment, plan)
        return [e for e in table.values()
                if e.pkts >= self.config.min_packets]

    # -- parallel / sharded aggregation ---------------------------------------

    def _segment_aux(self, segment, cols):
        """Records-derived inputs for :func:`_block_examples`.

        Runs in the parent (only it holds the stored records): per-row
        DNS tag verdicts for the tag-aware counters and dict-encoded
        curated labels.  Cost is one pass over the DNS rows plus one
        attribute sweep for curated labels — the heavy bincount math
        stays in the workers.
        """
        n = len(cols)
        records = segment.records
        resp = np.zeros(n, dtype=bool)
        anyq = np.zeros(n, dtype=bool)
        tagged = np.zeros(n, dtype=bool)
        if self.config.use_payload_features:
            dns_rows = np.flatnonzero((cols.src_port == 53.0)
                                      | (cols.dst_port == 53.0))
            for i in dns_rows.tolist():
                tags = records[i].tags
                if tags:
                    tagged[i] = True
                    if tags.get("dns_qr") == "response":
                        resp[i] = True
                    if tags.get("dns_qtype") == "ANY":
                        anyq[i] = True
        curated_codes = None
        curated_values: List[str] = []
        curated = list(map(attrgetter("label"), records))
        if any(curated):
            code_of: Dict[str, int] = {}
            curated_codes = np.fromiter(
                (code_of.setdefault(c, len(code_of)) if c else -1
                 for c in curated),
                dtype=np.int64, count=n)
            curated_values = list(code_of)
        return (resp, anyq, tagged, curated_codes, curated_values)

    def examples_merged(self, store, time_range: Optional[Tuple] = None,
                        executor=None) -> Optional[List[WindowExample]]:
        """Per-segment aggregation merged on global record ids.

        Each segment's column block is reduced independently — in
        worker processes when ``executor`` has live workers, serially
        otherwise — and the partial examples are merged so that group
        order and vote insertion order follow the store-wide *first
        record id* of each group.  For an unsharded store that equals
        :meth:`examples_columnar` exactly; for a sharded store (whose
        segment list interleaves record ids shard-major) it equals the
        unsharded serial reference on the same batches.

        Returns None when any segment resists columnar processing.
        """
        segments = [s for s in store.segments("packets") if s.records]
        blocks = []
        for segment in segments:
            cols = segment.columns()
            if cols is None or not isinstance(cols.src_ip, np.ndarray) \
                    or not isinstance(cols.dst_ip, np.ndarray):
                return None
            blocks.append((segment, cols, self._segment_aux(segment, cols)))

        window_s = self.config.window_s
        use_payload = self.config.use_payload_features
        partials = None
        if executor is not None and executor.parallel and len(blocks) > 1:
            from repro.parallel.kernels import scatter_featurize
            partials = scatter_featurize(blocks, time_range, window_s,
                                         use_payload, executor)
        if partials is None:
            partials = [_block_examples(cols, time_range, window_s,
                                        use_payload, *aux)
                        for _, cols, aux in blocks]
        if any(p is None for p in partials):
            return None

        # key -> [merged example, group-wide first rid,
        #         {label: (first vote rid, count)}]
        groups: Dict[Tuple[float, str], List] = {}
        for (segment, _, _), partial in zip(blocks, partials):
            records = segment.records
            for example, vote_map, first_pos in zip(*partial):
                first_rid = records[first_pos].rid
                key = (example.window_start, example.endpoint)
                entry = groups.get(key)
                if entry is None:
                    groups[key] = entry = [example, first_rid, {}]
                else:
                    entry[0].merge(example)
                    if first_rid < entry[1]:
                        entry[1] = first_rid
                merged_votes = entry[2]
                for label, (pos, count) in vote_map.items():
                    vote_rid = records[pos].rid
                    known = merged_votes.get(label)
                    merged_votes[label] = (vote_rid, count) \
                        if known is None \
                        else (min(known[0], vote_rid), known[1] + count)

        min_packets = self.config.min_packets
        out: List[WindowExample] = []
        for example, _, merged_votes in sorted(groups.values(),
                                               key=itemgetter(1)):
            # insertion order by first vote rid = serial vote order
            example.label_votes = {
                label: count for label, (_, count) in
                sorted(merged_votes.items(), key=lambda kv: kv[1][0])
            }
            if example.pkts >= min_packets:
                out.append(example)
        return out

    def _segment_plan(self, segment, time_range):
        """Validate + group one segment's columns; () = nothing selected."""
        cols = segment.columns()
        if cols is None or not isinstance(cols.src_ip, np.ndarray) \
                or not isinstance(cols.dst_ip, np.ndarray):
            return None
        ts = cols.timestamp
        if np.isnan(ts).any():
            return None
        if time_range is not None:
            start, end = time_range
            sel = np.ones(len(ts), dtype=bool)
            if start is not None:
                sel &= ts >= start
            if end is not None:
                sel &= ts <= end
            positions = np.flatnonzero(sel)
        else:
            positions = np.arange(len(ts))
        if len(positions) == 0:
            return ()

        window_s = self.config.window_s
        widx = np.floor(ts[positions] / window_s)
        if not (widx.min() >= -(1 << 31) and widx.max() < (1 << 31)):
            return None               # window ids must pack into 32 bits
        dports = cols.dst_port[positions].astype(np.int64)
        if len(dports) and not (dports.min() >= 0
                                and dports.max() < (1 << 16)):
            return None               # ports must pack into 16 bits

        in_code = cols.direction.code_of("in")
        dir_in = (cols.direction.codes[positions] == in_code) \
            if in_code is not None else np.zeros(len(positions), dtype=bool)
        src = cols.src_ip[positions].astype(np.uint64)
        dst = cols.dst_ip[positions].astype(np.uint64)
        endpoint = np.where(dir_in, src, dst)
        group_key = ((widx.astype(np.int64) + (1 << 31)).astype(np.uint64)
                     << 32) | endpoint
        uniq, first, inv = np.unique(group_key, return_index=True,
                                     return_inverse=True)
        return (positions, widx, dir_in, dst, inv,
                np.argsort(first, kind="stable"), first, uniq)

    def _merge_segment(self, table, segment, plan) -> None:
        (positions, widx, dir_in, dst, inv, order, first, uniq) = plan
        cols = segment.columns()
        window_s = self.config.window_s
        n_groups = len(uniq)
        sizes = cols.size[positions]
        sp = cols.src_port[positions]
        dp = cols.dst_port[positions]

        def per_group(weights):
            return np.bincount(inv, weights=weights, minlength=n_groups)

        pkts = np.bincount(inv, minlength=n_groups)
        bytes_total = per_group(sizes)
        ttl_sum = per_group(cols.ttl[positions])
        udp = per_group(cols.protocol[positions] == float(Protocol.UDP))
        is_dns = (sp == 53) | (dp == 53)
        dns_pkts = per_group(is_dns)
        bytes_in = per_group(sizes * dir_in)
        bytes_out = per_group(sizes * ~dir_in)
        flags = cols.flags[positions].astype(np.int64)
        syns = per_group((flags & int(TcpFlags.SYN) != 0)
                         & (flags & int(TcpFlags.ACK) == 0))
        wellknown = per_group(np.isin(dp, _WELL_KNOWN_ARR) & dir_in)
        port53_src = per_group((sp == 53) & dir_in)

        # Tag-derived DNS counters need the stored records' tag dicts.
        dns_resp = np.zeros(n_groups, dtype=np.int64)
        dns_any = np.zeros(n_groups, dtype=np.int64)
        records = segment.records
        use_payload = self.config.use_payload_features
        for i in np.flatnonzero(is_dns).tolist():
            tags = records[positions[i]].tags
            if use_payload and tags:
                if tags.get("dns_qr") == "response":
                    dns_resp[inv[i]] += 1
                if tags.get("dns_qtype") == "ANY":
                    dns_any[inv[i]] += 1
            elif dir_in[i] and sp[i] == 53:
                dns_resp[inv[i]] += 1

        # First-occurrence group order keeps table insertion order (and
        # hence Dataset key order) identical to the record path.
        by_group: List[Optional[WindowExample]] = [None] * n_groups
        for j in order.tolist():
            window_start = float(widx[first[j]]) * window_s
            endpoint = u32_to_ip(int(uniq[j] & 0xFFFFFFFF))
            key = (window_start, endpoint)
            example = table.get(key)
            if example is None:
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                table[key] = example
            by_group[j] = example
            example.pkts += int(pkts[j])
            example.bytes += int(bytes_total[j])
            example.ttl_sum += int(ttl_sum[j])
            example.udp_pkts += int(udp[j])
            example.dns_pkts += int(dns_pkts[j])
            example.dns_responses += int(dns_resp[j])
            example.dns_any += int(dns_any[j])
            example.bytes_in += int(bytes_in[j])
            example.bytes_out += int(bytes_out[j])
            example.syns += int(syns[j])
            example.wellknown_dport += int(wellknown[j])
            example.port53_src += int(port53_src[j])

        in_idx = np.flatnonzero(dir_in)
        if len(in_idx):
            inv64 = inv.astype(np.uint64)
            for k in np.unique((inv64[in_idx] << 32)
                               | dst[in_idx]).tolist():
                by_group[k >> 32].dsts.add(u32_to_ip(k & 0xFFFFFFFF))
            dp64 = dp.astype(np.uint64)
            for k in np.unique((inv64[in_idx] << 16)
                               | dp64[in_idx]).tolist():
                by_group[k >> 16].dports.add(k & 0xFFFF)

        self._merge_votes(by_group, records, cols, positions, inv)

    @staticmethod
    def _merge_votes(by_group, records, cols, positions, inv) -> None:
        """Per-example label votes, in packet order (tie-breaks match)."""
        label_values = cols.label.values
        code_votable = np.array(
            [v != "" and v != "benign" for v in label_values], dtype=bool
        )
        codes = cols.label.codes[positions]
        votable = code_votable[codes]
        curated = list(map(attrgetter("label"), records))
        if any(curated):
            votable = votable | np.fromiter(
                (bool(curated[p]) for p in positions.tolist()),
                dtype=bool, count=len(positions),
            )
        for i in np.flatnonzero(votable).tolist():
            label = curated[positions[i]] or label_values[codes[i]]
            if label and label != "benign":
                votes = by_group[inv[i]].label_votes
                votes[label] = votes.get(label, 0) + 1
