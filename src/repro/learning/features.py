"""Feature extraction from the data store.

This is the paper's "top-down" workflow (§2): with the data store
populated, the researcher iterates on features without re-running
measurements.  The primary featurizer summarises, per (time window,
external endpoint) pair, what that endpoint did to the campus —
exactly the vantage point an ingress detector deployed at the border
has.  Feature values are computed from packets (and their metadata
tags) only; labels come from ground-truth windows.

All features are non-negative and bounded-ish; deployable models
compiled to switch tables quantize them (see
:mod:`repro.deploy.compiler`), so integers-per-window are preferred to
exotic statistics.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datastore.query import Query
from repro.learning.dataset import Dataset
from repro.netsim.packets import PacketRecord, Protocol, TcpFlags

FEATURE_NAMES = [
    "pkts",               # packets from this endpoint in window
    "bytes",              # bytes from this endpoint in window
    "mean_pkt_size",
    "udp_fraction",
    "dns_fraction",       # packets with port 53 on either side
    "dns_response_fraction",  # of dns packets, how many are responses
    "dns_any_fraction",   # payload-derived: QTYPE=ANY fraction
    "unique_dsts",        # distinct campus addresses touched
    "unique_dports",      # distinct destination ports touched
    "syn_fraction",
    "bytes_in_out_ratio",  # bytes toward campus / bytes from campus + 1
    "mean_ttl",
    "port53_src_fraction",  # packets sourced from port 53 (reflection)
    "wellknown_dport_fraction",
    "pkt_rate",           # packets / window length
]


@dataclass
class FeatureConfig:
    """Featurizer knobs."""

    window_s: float = 5.0
    min_packets: int = 2
    use_payload_features: bool = True


@dataclass
class WindowExample:
    """One (window, endpoint) aggregation before vectorisation."""

    window_start: float
    endpoint: str
    pkts: int = 0
    bytes: int = 0
    udp_pkts: int = 0
    dns_pkts: int = 0
    dns_responses: int = 0
    dns_any: int = 0
    dsts: set = field(default_factory=set)
    dports: set = field(default_factory=set)
    syns: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    ttl_sum: int = 0
    port53_src: int = 0
    wellknown_dport: int = 0
    #: votes for non-benign labels seen on this endpoint's packets
    #: (used when labeling from curated store labels, not ground truth)
    label_votes: Dict[str, int] = field(default_factory=dict)

    def vector(self, window_s: float) -> List[float]:
        pkts = max(self.pkts, 1)
        dns = max(self.dns_pkts, 1)
        return [
            float(self.pkts),
            float(self.bytes),
            self.bytes / pkts,
            self.udp_pkts / pkts,
            self.dns_pkts / pkts,
            self.dns_responses / dns,
            self.dns_any / dns,
            float(len(self.dsts)),
            float(len(self.dports)),
            self.syns / pkts,
            self.bytes_in / (self.bytes_out + 1.0),
            self.ttl_sum / pkts,
            self.port53_src / pkts,
            self.wellknown_dport / pkts,
            self.pkts / window_s,
        ]


WELL_KNOWN = {22, 23, 25, 53, 80, 123, 143, 443, 445, 587, 993, 3306,
              3389, 5432, 6379, 8080}


class SourceWindowFeaturizer:
    """Aggregates packets per (window, external endpoint).

    The "external endpoint" of a packet is its non-campus side: the
    source for inbound packets, the destination for outbound ones.
    This matches what an ingress filter can key on.
    """

    def __init__(self, config: Optional[FeatureConfig] = None):
        self.config = config or FeatureConfig()

    # -- aggregation --------------------------------------------------------

    def aggregate(self, packets_with_tags: Iterable[Tuple[PacketRecord,
                                                          Dict[str, str]]]) \
            -> List[WindowExample]:
        window_s = self.config.window_s
        table: Dict[Tuple[float, str], WindowExample] = {}
        for packet, tags in packets_with_tags:
            if packet.direction == "in":
                endpoint, campus_side = packet.src_ip, packet.dst_ip
            else:
                endpoint, campus_side = packet.dst_ip, packet.src_ip
            window_start = math.floor(packet.timestamp / window_s) * window_s
            key = (window_start, endpoint)
            example = table.get(key)
            if example is None:
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                table[key] = example
            self._accumulate(example, packet, tags)
        return [e for e in table.values()
                if e.pkts >= self.config.min_packets]

    def _accumulate(self, example: WindowExample, packet: PacketRecord,
                    tags: Dict[str, str],
                    label: Optional[str] = None) -> None:
        if label and label != "benign":
            example.label_votes[label] = \
                example.label_votes.get(label, 0) + 1
        example.pkts += 1
        example.bytes += packet.size
        example.ttl_sum += packet.ttl
        if packet.protocol == int(Protocol.UDP):
            example.udp_pkts += 1
        is_dns = 53 in (packet.src_port, packet.dst_port)
        if is_dns:
            example.dns_pkts += 1
            if self.config.use_payload_features and tags:
                if tags.get("dns_qr") == "response":
                    example.dns_responses += 1
                if tags.get("dns_qtype") == "ANY":
                    example.dns_any += 1
            elif packet.direction == "in" and packet.src_port == 53:
                # Without payload access, fall back to port heuristics.
                example.dns_responses += 1
        if packet.direction == "in":
            example.bytes_in += packet.size
            example.dsts.add(packet.dst_ip)
            example.dports.add(packet.dst_port)
            if packet.dst_port in WELL_KNOWN:
                example.wellknown_dport += 1
            if packet.src_port == 53:
                example.port53_src += 1
        else:
            example.bytes_out += packet.size
        if packet.is_syn():
            example.syns += 1

    # -- vectorisation -------------------------------------------------------

    def to_dataset(self, examples: Sequence[WindowExample],
                   ground_truth=None,
                   class_names: Optional[List[str]] = None) -> Dataset:
        """Vectorise examples.

        Labels come from ground-truth actor windows when
        ``ground_truth`` is given; otherwise from the per-example
        curated label votes (majority non-benign label, if any).
        """
        if class_names is None:
            labels = {"benign"}
            if ground_truth is not None:
                labels |= {w.label for w in ground_truth.windows}
            else:
                for example in examples:
                    labels |= set(example.label_votes)
            class_names = sorted(labels)
        class_index = {name: i for i, name in enumerate(class_names)}

        X, y, keys = [], [], []
        for example in examples:
            X.append(example.vector(self.config.window_s))
            label = "benign"
            if ground_truth is not None:
                mid = example.window_start + self.config.window_s / 2.0
                for window in ground_truth.windows:
                    if window.contains(mid) and example.endpoint in \
                            window.actors:
                        label = window.label
                        break
            elif example.label_votes:
                label = max(example.label_votes,
                            key=example.label_votes.get)
            y.append(class_index.get(label, class_index.get("benign", 0)))
            keys.append((example.window_start, example.endpoint))
        if not X:
            X = np.zeros((0, len(FEATURE_NAMES)))
            y = np.zeros((0,), dtype=int)
        return Dataset(np.asarray(X, dtype=float), np.asarray(y, dtype=int),
                       list(FEATURE_NAMES), class_names, keys=keys)

    # -- store-driven extraction ----------------------------------------------

    def from_store(self, store, ground_truth=None,
                   time_range: Optional[Tuple] = None,
                   class_names: Optional[List[str]] = None) -> Dataset:
        """One query, one pass: the top-down workflow.

        Without ``ground_truth``, labels come from the store's curated
        per-record labels (set by :class:`repro.datastore.labels.Labeler`
        or restored by import), which is how a standalone exported
        store stays trainable.
        """
        stored = store.query(Query(collection="packets",
                                   time_range=time_range,
                                   order_by_time=False))
        window_s = self.config.window_s
        table: Dict[Tuple[float, str], WindowExample] = {}
        for s in stored:
            packet = s.record
            if packet.direction == "in":
                endpoint = packet.src_ip
            else:
                endpoint = packet.dst_ip
            window_start = math.floor(packet.timestamp / window_s) \
                * window_s
            key = (window_start, endpoint)
            example = table.get(key)
            if example is None:
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                table[key] = example
            self._accumulate(example, packet, s.tags,
                             label=s.label or packet.label)
        examples = [e for e in table.values()
                    if e.pkts >= self.config.min_packets]
        return self.to_dataset(examples, ground_truth=ground_truth,
                               class_names=class_names)
