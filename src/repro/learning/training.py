"""Training orchestration: fit, time, and score models uniformly."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.learning.dataset import Dataset
from repro.learning.metrics import (
    accuracy,
    classification_report,
    f1_score,
    precision,
    recall,
    roc_auc,
)
from repro.learning.models import (
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)

#: Named model factories used across experiments ("open-sourced learning
#: algorithms" in the paper's reproducibility story, §5).
MODEL_REGISTRY: Dict[str, Callable] = {
    "tree": lambda: DecisionTreeClassifier(max_depth=8, min_samples_leaf=3),
    "forest": lambda: RandomForestClassifier(n_estimators=30, max_depth=12,
                                             min_samples_leaf=2),
    "boosting": lambda: GradientBoostingClassifier(n_estimators=60,
                                                   max_depth=3),
    "logistic": lambda: LogisticRegression(),
    "mlp": lambda: MLPClassifier(hidden=(32, 16), epochs=40),
    "knn": lambda: KNeighborsClassifier(k=7),
    "naive_bayes": lambda: GaussianNB(),
}


@dataclass
class TrainResult:
    """Everything one fit/evaluate run produced."""

    model_name: str
    model: object
    train_seconds: float
    metrics: Dict[str, float]
    report: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __str__(self) -> str:
        metric_text = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(self.metrics.items())
        )
        return (f"{self.model_name}: {metric_text} "
                f"({self.train_seconds:.2f}s train)")


def train_and_evaluate(model_name: str, train: Dataset, test: Dataset,
                       positive_class: Optional[str] = None,
                       model: Optional[object] = None) -> TrainResult:
    """Fit a registry model on ``train`` and score it on ``test``.

    ``positive_class`` selects the class used for binary
    precision/recall/F1/AUC (defaults to index 1 when binary).
    """
    if model is None:
        try:
            factory = MODEL_REGISTRY[model_name]
        except KeyError:
            known = ", ".join(sorted(MODEL_REGISTRY))
            raise KeyError(
                f"unknown model {model_name!r}; one of: {known}"
            ) from None
        model = factory()

    start = time.perf_counter()
    model.fit(train.X, train.y)
    train_seconds = time.perf_counter() - start

    y_pred = model.predict(test.X)
    metrics: Dict[str, float] = {"accuracy": accuracy(test.y, y_pred)}

    positive_index = None
    if positive_class is not None:
        positive_index = train.class_names.index(positive_class)
    elif train.n_classes == 2:
        positive_index = 1
    if positive_index is not None:
        metrics["precision"] = precision(test.y, y_pred, positive_index)
        metrics["recall"] = recall(test.y, y_pred, positive_index)
        metrics["f1"] = f1_score(test.y, y_pred, positive_index)
        proba = model.predict_proba(test.X)
        if proba.shape[1] > positive_index:
            metrics["auc"] = roc_auc(
                (test.y == positive_index).astype(int),
                proba[:, positive_index],
            )

    return TrainResult(
        model_name=model_name,
        model=model,
        train_seconds=train_seconds,
        metrics=metrics,
        report=classification_report(test.y, y_pred, test.class_names),
    )
