"""Train/test splitting utilities."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.learning.dataset import Dataset


def train_test_split(dataset: Dataset, test_fraction: float = 0.3,
                     seed: int = 0, stratify: bool = True) -> \
        Tuple[Dataset, Dataset]:
    """Random (optionally stratified) split."""
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0,1): {test_fraction}")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    if stratify:
        test_indices = []
        train_indices = []
        for cls in np.unique(dataset.y):
            members = np.flatnonzero(dataset.y == cls)
            rng.shuffle(members)
            cut = max(int(round(len(members) * test_fraction)), 1) \
                if len(members) > 1 else 0
            test_indices.extend(members[:cut])
            train_indices.extend(members[cut:])
        train_indices = np.asarray(sorted(train_indices))
        test_indices = np.asarray(sorted(test_indices))
    else:
        order = rng.permutation(n)
        cut = max(int(round(n * test_fraction)), 1)
        test_indices = np.sort(order[:cut])
        train_indices = np.sort(order[cut:])
    return dataset.subset(train_indices), dataset.subset(test_indices)


def stratified_kfold(dataset: Dataset, k: int = 5, seed: int = 0) -> \
        Iterator[Tuple[Dataset, Dataset]]:
    """Yield (train, test) datasets for k stratified folds."""
    if k < 2:
        raise ValueError("k must be >= 2")
    rng = np.random.default_rng(seed)
    folds = [[] for _ in range(k)]
    for cls in np.unique(dataset.y):
        members = np.flatnonzero(dataset.y == cls)
        rng.shuffle(members)
        for i, index in enumerate(members):
            folds[i % k].append(int(index))
    for i in range(k):
        test_indices = np.asarray(sorted(folds[i]))
        train_indices = np.asarray(sorted(
            idx for j, fold in enumerate(folds) if j != i for idx in fold
        ))
        if len(test_indices) == 0 or len(train_indices) == 0:
            continue
        yield dataset.subset(train_indices), dataset.subset(test_indices)
