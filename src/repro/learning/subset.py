"""Minimal collection specs for industry collaboration (§5).

"a campus network-based study may identify precisely-defined
problem-specific small subsets of data that are amenable for
continuous collection even in a large production network where a more
full-fledged data collection would be infeasible."

Given a task learned on the full-fidelity campus store, greedy
backward elimination finds the smallest feature subset that keeps
holdout quality within tolerance; the result is rendered as a
*collection specification* — what a large ISP would actually have to
measure (which of their counters, at which granularity) to run the
model, instead of full-packet capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.learning.dataset import Dataset
from repro.learning.metrics import f1_score
from repro.learning.split import train_test_split

#: What each window feature costs to collect at scale.  "counter"
#: features fall out of standard SNMP/NetFlow counters; "flow"
#: features need per-flow state; "payload" features need DPI/full
#: capture — the expensive tier the collaboration spec tries to avoid.
FEATURE_COLLECTION_TIER: Dict[str, str] = {
    "pkts": "counter",
    "bytes": "counter",
    "mean_pkt_size": "counter",
    "udp_fraction": "counter",
    "dns_fraction": "flow",
    "dns_response_fraction": "payload",
    "dns_any_fraction": "payload",
    "unique_dsts": "flow",
    "unique_dports": "flow",
    "syn_fraction": "flow",
    "bytes_in_out_ratio": "counter",
    "mean_ttl": "flow",
    "port53_src_fraction": "flow",
    "wellknown_dport_fraction": "flow",
    "pkt_rate": "counter",
}

TIER_ORDER = ["counter", "flow", "payload"]


@dataclass
class CollectionSpec:
    """The deliverable of a subset study."""

    features: List[str]
    metric_full: float
    metric_subset: float
    window_s: float
    tiers_required: List[str]

    @property
    def needs_full_capture(self) -> bool:
        return "payload" in self.tiers_required

    def render(self) -> str:
        lines = [
            f"collection spec ({len(self.features)} features, "
            f"window {self.window_s:.0f}s):",
            f"  task quality: subset={self.metric_subset:.3f} "
            f"vs full={self.metric_full:.3f}",
            f"  heaviest tier required: "
            f"{self.tiers_required[-1] if self.tiers_required else '-'}",
        ]
        for tier in TIER_ORDER:
            members = [f for f in self.features
                       if FEATURE_COLLECTION_TIER.get(f) == tier]
            if members:
                lines.append(f"  [{tier}] " + ", ".join(members))
        return "\n".join(lines)


def _evaluate(model_factory: Callable, dataset: Dataset,
              columns: Sequence[int], seed: int,
              positive: int = 1) -> float:
    subset = Dataset(dataset.X[:, list(columns)], dataset.y,
                     [dataset.feature_names[c] for c in columns],
                     list(dataset.class_names))
    train, test = train_test_split(subset, test_fraction=0.35, seed=seed)
    model = model_factory()
    model.fit(train.X, train.y)
    return f1_score(test.y, model.predict(test.X), positive=positive)


def minimal_feature_subset(model_factory: Callable, dataset: Dataset,
                           tolerance: float = 0.02, seed: int = 0,
                           positive: int = 1) -> CollectionSpec:
    """Greedy backward elimination under a quality tolerance.

    Repeatedly drops the feature whose removal hurts holdout F1 the
    least, as long as the result stays within ``tolerance`` of the
    full-feature score.  Ties prefer dropping the *most expensive*
    collection tier first, so the spec gravitates toward plain
    counters.
    """
    if dataset.n_classes != 2:
        raise ValueError("subset search expects a binarized dataset")
    columns = list(range(dataset.n_features))
    full_score = _evaluate(model_factory, dataset, columns, seed,
                           positive)
    floor = full_score - tolerance

    def tier_rank(column: int) -> int:
        name = dataset.feature_names[column]
        tier = FEATURE_COLLECTION_TIER.get(name, "flow")
        return TIER_ORDER.index(tier)

    current = full_score
    while len(columns) > 1:
        candidates = []
        for column in columns:
            remaining = [c for c in columns if c != column]
            score = _evaluate(model_factory, dataset, remaining, seed,
                              positive)
            candidates.append((score, tier_rank(column), column))
        # best score first; among ties, drop the most expensive tier
        candidates.sort(key=lambda t: (-t[0], -t[1]))
        best_score, _, drop = candidates[0]
        if best_score < floor:
            break
        columns = [c for c in columns if c != drop]
        current = best_score

    names = [dataset.feature_names[c] for c in columns]
    tiers = sorted(
        {FEATURE_COLLECTION_TIER.get(name, "flow") for name in names},
        key=TIER_ORDER.index,
    )
    return CollectionSpec(
        features=names,
        metric_full=full_score,
        metric_subset=current,
        window_s=5.0,
        tiers_required=tiers,
    )
