"""Gym-style reinforcement learning for network automation.

The repro hint for this paper points at the Park/Pantheon line of
work: casting network automation tasks as RL environments.  This
sub-package provides the environment interface, a tabular Q-learning
agent, and a DDoS-mitigation environment built on the same event
generators the rest of the platform uses.  The trained policy is a
first-class "learning model" in the development loop: it can be
VIPER-extracted into a decision tree (:mod:`repro.xai.viper`) and
compiled for the switch like any other deployable model.
"""

from repro.learning.rl.env import Env, Discrete, Box
from repro.learning.rl.mitigation_env import DdosMitigationEnv, MitigationAction
from repro.learning.rl.qlearning import QLearningAgent, discretize
from repro.learning.rl.policies import (
    ClassifierPolicy,
    GreedyQPolicy,
    Policy,
    PolicyEvaluation,
    RandomPolicy,
    StaticThresholdPolicy,
    evaluate_policy,
)

__all__ = [
    "Env",
    "Discrete",
    "Box",
    "DdosMitigationEnv",
    "MitigationAction",
    "QLearningAgent",
    "discretize",
    "Policy",
    "PolicyEvaluation",
    "RandomPolicy",
    "GreedyQPolicy",
    "StaticThresholdPolicy",
    "ClassifierPolicy",
    "evaluate_policy",
]
