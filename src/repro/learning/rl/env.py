"""Minimal Gym-style environment interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Discrete:
    """Finite action/observation space {0, ..., n-1}."""

    n: int

    def contains(self, value) -> bool:
        return isinstance(value, (int, np.integer)) and 0 <= value < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))


@dataclass(frozen=True)
class Box:
    """Bounded continuous space."""

    low: tuple
    high: tuple

    @property
    def shape(self) -> tuple:
        return (len(self.low),)

    def contains(self, value) -> bool:
        value = np.asarray(value, dtype=float)
        if value.shape != self.shape:
            return False
        return bool(np.all(value >= self.low) and np.all(value <= self.high))

    def clip(self, value) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=float), self.low, self.high)


class Env(abc.ABC):
    """The familiar reset/step contract.

    ``step`` returns ``(observation, reward, done, info)``.
    """

    observation_space: Box
    action_space: Discrete

    @abc.abstractmethod
    def reset(self, seed: Optional[int] = None) -> np.ndarray:
        """Start a new episode; returns the first observation."""

    @abc.abstractmethod
    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict]:
        """Apply an action for one control interval."""
