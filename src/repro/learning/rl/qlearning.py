"""Tabular Q-learning over discretized observations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.rl.env import Env


def discretize(observation: np.ndarray, bins: int = 8) -> Tuple[int, ...]:
    """Map a [0,1]^d observation to a tuple of bin indices."""
    clipped = np.clip(np.asarray(observation, dtype=float), 0.0, 1.0)
    indices = np.minimum((clipped * bins).astype(int), bins - 1)
    return tuple(int(i) for i in indices)


@dataclass
class TrainingHistory:
    episode_rewards: List[float] = field(default_factory=list)

    def mean_tail(self, n: int = 20) -> float:
        tail = self.episode_rewards[-n:]
        return float(np.mean(tail)) if tail else 0.0


class QLearningAgent:
    """Epsilon-greedy tabular Q-learning.

    The Q-table doubles as the *teacher* for VIPER policy extraction:
    :meth:`q_values` exposes per-state action values so the student
    can weight states by how much the action choice matters.
    """

    def __init__(self, n_actions: int, bins: int = 8, alpha: float = 0.2,
                 gamma: float = 0.97, epsilon: float = 1.0,
                 epsilon_decay: float = 0.995, epsilon_min: float = 0.05,
                 seed: int = 0):
        self.n_actions = int(n_actions)
        self.bins = int(bins)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.epsilon_min = float(epsilon_min)
        self.rng = np.random.default_rng(seed)
        self._q: Dict[Tuple[int, ...], np.ndarray] = defaultdict(
            lambda: np.zeros(self.n_actions)
        )

    def q_values(self, observation: np.ndarray) -> np.ndarray:
        return self._q[discretize(observation, self.bins)].copy()

    def act(self, observation: np.ndarray, greedy: bool = True) -> int:
        if not greedy and self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.n_actions))
        values = self._q[discretize(observation, self.bins)]
        best = np.flatnonzero(values == values.max())
        return int(best[0])

    def train(self, env: Env, episodes: int = 300,
              seed_offset: int = 10_000) -> TrainingHistory:
        history = TrainingHistory()
        for episode in range(episodes):
            observation = env.reset(seed=seed_offset + episode)
            state = discretize(observation, self.bins)
            total_reward = 0.0
            done = False
            while not done:
                action = self.act(observation, greedy=False)
                observation, reward, done, _ = env.step(action)
                next_state = discretize(observation, self.bins)
                best_next = float(self._q[next_state].max()) if not done \
                    else 0.0
                td_target = reward + self.gamma * best_next
                self._q[state][action] += self.alpha * (
                    td_target - self._q[state][action]
                )
                state = next_state
                total_reward += reward
            self.epsilon = max(self.epsilon * self.epsilon_decay,
                               self.epsilon_min)
            history.episode_rewards.append(total_reward)
        return history

    @property
    def states_visited(self) -> int:
        return len(self._q)
