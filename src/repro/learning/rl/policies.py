"""Policies and policy evaluation."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.learning.rl.env import Env
from repro.learning.rl.mitigation_env import MitigationAction


class Policy(abc.ABC):
    """Maps observations to actions."""

    @abc.abstractmethod
    def act(self, observation: np.ndarray) -> int:
        """Choose an action for one observation."""


class RandomPolicy(Policy):
    def __init__(self, n_actions: int, seed: int = 0):
        self.n_actions = n_actions
        self.rng = np.random.default_rng(seed)

    def act(self, observation: np.ndarray) -> int:
        return int(self.rng.integers(self.n_actions))


class GreedyQPolicy(Policy):
    """Greedy wrapper around a trained Q-learning agent."""

    def __init__(self, agent):
        self.agent = agent

    def act(self, observation: np.ndarray) -> int:
        return self.agent.act(observation, greedy=True)


class StaticThresholdPolicy(Policy):
    """The operator's hand-written rule (baseline for E12).

    Rate-limit when total DNS volume is high; escalate to the targeted
    ANY filter only when the ANY fraction is overwhelming.
    """

    def __init__(self, volume_threshold: float = 0.25,
                 any_threshold: float = 0.7):
        self.volume_threshold = volume_threshold
        self.any_threshold = any_threshold

    def act(self, observation: np.ndarray) -> int:
        volume, _response_ratio, any_fraction, _conc = observation
        if any_fraction >= self.any_threshold:
            return int(MitigationAction.DROP_ANY)
        if volume >= self.volume_threshold:
            return int(MitigationAction.RATE_LIMIT)
        return int(MitigationAction.ALLOW)


class ClassifierPolicy(Policy):
    """Adapts any fitted classifier (e.g. an extracted tree) to a policy."""

    def __init__(self, model):
        self.model = model

    def act(self, observation: np.ndarray) -> int:
        return int(self.model.predict(
            np.asarray(observation, dtype=float).reshape(1, -1))[0])


@dataclass
class PolicyEvaluation:
    """Aggregate outcome over evaluation episodes."""

    mean_reward: float
    attack_admitted_fraction: float
    benign_dropped_fraction: float
    episodes: int
    action_counts: Dict[int, int] = field(default_factory=dict)


def evaluate_policy(env: Env, policy: Policy, episodes: int = 30,
                    seed_offset: int = 777_000) -> PolicyEvaluation:
    """Run greedy rollouts and aggregate mitigation quality."""
    rewards = []
    attack_offered = 0.0
    attack_through = 0.0
    benign_total = 0.0
    benign_dropped = 0.0
    action_counts: Dict[int, int] = {}
    for episode in range(episodes):
        observation = env.reset(seed=seed_offset + episode)
        done = False
        total = 0.0
        while not done:
            action = policy.act(observation)
            action_counts[action] = action_counts.get(action, 0) + 1
            observation, reward, done, info = env.step(action)
            total += reward
            attack_offered += info["attack_offered_mbps"]
            attack_through += info["attack_through_mbps"]
            benign_dropped += info["benign_dropped_mbps"]
            benign_total += env.benign_dns_mbps
        rewards.append(total)
    return PolicyEvaluation(
        mean_reward=float(np.mean(rewards)),
        attack_admitted_fraction=(
            attack_through / attack_offered if attack_offered > 0 else 0.0
        ),
        benign_dropped_fraction=(
            benign_dropped / benign_total if benign_total > 0 else 0.0
        ),
        episodes=episodes,
        action_counts=action_counts,
    )
