"""DDoS-mitigation control as an RL environment.

One episode is a stretch of border time divided into control intervals
(default 1 s).  Each interval the agent observes DNS-traffic telemetry
(the same counters the deployed switch program senses) and picks a
mitigation posture.  A hidden two-state Markov process turns a DNS
amplification attack on and off; the reward trades off attack bytes
admitted against benign DNS traffic harmed — the §2 automation goal
("drop attack traffic on ingress if confidence in detection is at
least 90%") expressed as a scalar objective.

The environment intentionally runs on an abstracted border model
rather than the full fluid simulator: RL needs tens of thousands of
episode steps, and the observation/action semantics are identical to
what the control loop sees in the full-stack experiments (E3/E12
cross-validate a policy trained here against the full simulator).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.learning.rl.env import Box, Discrete, Env

MBPS = 1_000_000.0


class MitigationAction(enum.IntEnum):
    """Agent actions, mildest to bluntest."""

    ALLOW = 0          # no intervention
    RATE_LIMIT = 1     # cap inbound UDP/53 at `limit_mbps`
    DROP_ANY = 2       # drop DNS responses to ANY queries (targeted)


class DdosMitigationEnv(Env):
    """Border DNS mitigation with a hidden attack process.

    Observation (all normalised to ~[0, 1]):
      0. inbound DNS rate / `rate_scale`
      1. DNS response/query packet ratio (squashed)
      2. fraction of DNS bytes carrying QTYPE=ANY
      3. victim concentration (max share of DNS bytes to one dst)
    """

    def __init__(self, episode_len: int = 120, interval_s: float = 1.0,
                 benign_dns_mbps: float = 8.0, attack_mbps: float = 800.0,
                 attack_start_prob: float = 0.03,
                 attack_stop_prob: float = 0.08,
                 limit_mbps: float = 15.0, drop_any_fp: float = 0.02,
                 rate_scale_mbps: float = 1000.0,
                 collateral_weight: float = 8.0,
                 action_cost: Tuple[float, float, float] = (0.0, 0.02, 0.01),
                 seed: int = 0):
        self.episode_len = int(episode_len)
        self.interval_s = float(interval_s)
        self.benign_dns_mbps = float(benign_dns_mbps)
        self.attack_mbps = float(attack_mbps)
        self.attack_start_prob = float(attack_start_prob)
        self.attack_stop_prob = float(attack_stop_prob)
        self.limit_mbps = float(limit_mbps)
        self.drop_any_fp = float(drop_any_fp)
        self.rate_scale_mbps = float(rate_scale_mbps)
        self.collateral_weight = float(collateral_weight)
        self.action_cost = tuple(action_cost)
        self._base_seed = seed
        self.rng = np.random.default_rng(seed)

        self.observation_space = Box(low=(0.0, 0.0, 0.0, 0.0),
                                     high=(1.0, 1.0, 1.0, 1.0))
        self.action_space = Discrete(len(MitigationAction))

        self._step_index = 0
        self._attack_on = False
        self._attack_intensity = 0.0

    # -- episode mechanics ---------------------------------------------------

    def reset(self, seed: Optional[int] = None) -> np.ndarray:
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        self._step_index = 0
        self._attack_on = False
        self._attack_intensity = 0.0
        return self._observe(self._rates())

    def _advance_attack(self) -> None:
        if self._attack_on:
            if self.rng.random() < self.attack_stop_prob:
                self._attack_on = False
                self._attack_intensity = 0.0
        else:
            if self.rng.random() < self.attack_start_prob:
                self._attack_on = True
                self._attack_intensity = float(
                    self.attack_mbps * self.rng.lognormal(0.0, 0.3)
                )

    def _rates(self) -> Dict[str, float]:
        """Offered benign/attack DNS rates for this interval (Mbps)."""
        benign = self.benign_dns_mbps * float(self.rng.lognormal(0.0, 0.25))
        attack = self._attack_intensity if self._attack_on else 0.0
        return {"benign": benign, "attack": attack}

    def _observe(self, rates: Dict[str, float]) -> np.ndarray:
        total = rates["benign"] + rates["attack"]
        # Benign DNS runs near 1 response/query; amplification pushes
        # the byte-weighted response share toward 1.
        response_ratio = (0.55 * rates["benign"] + 0.985 * rates["attack"]) \
            / max(total, 1e-9)
        any_fraction = rates["attack"] / max(total, 1e-9)
        any_fraction *= float(self.rng.uniform(0.92, 1.0))   # sensing noise
        concentration = 0.12 + 0.85 * rates["attack"] / max(total, 1e-9)
        obs = np.asarray([
            min(total / self.rate_scale_mbps, 1.0),
            min(response_ratio, 1.0),
            min(any_fraction, 1.0),
            min(concentration, 1.0),
        ])
        noise = self.rng.normal(0.0, 0.01, size=4)
        return self.observation_space.clip(obs + noise)

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict]:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        self._advance_attack()
        rates = self._rates()
        benign, attack = rates["benign"], rates["attack"]

        if action == MitigationAction.ALLOW:
            attack_through = attack
            benign_dropped = 0.0
        elif action == MitigationAction.RATE_LIMIT:
            total = benign + attack
            if total <= self.limit_mbps:
                attack_through = attack
                benign_dropped = 0.0
            else:
                keep = self.limit_mbps / total
                attack_through = attack * keep
                benign_dropped = benign * (1.0 - keep)
        else:  # DROP_ANY: targeted filter on the amplification signature
            attack_through = attack * 0.02      # residual non-ANY attack
            benign_dropped = benign * self.drop_any_fp

        reward = (
            -attack_through / self.rate_scale_mbps
            - self.collateral_weight * benign_dropped / self.rate_scale_mbps
            - self.action_cost[action]
        )
        self._step_index += 1
        done = self._step_index >= self.episode_len
        observation = self._observe(rates)
        info = {
            "attack_offered_mbps": attack,
            "attack_through_mbps": attack_through,
            "benign_dropped_mbps": benign_dropped,
            "attack_on": self._attack_on,
        }
        return observation, float(reward), done, info
