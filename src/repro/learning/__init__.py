"""From-scratch learning substrate.

The development loop (Fig. 2) trains "typically complex and
heavyweight black-box learning models" offline on the data store.  To
keep the platform dependency-free, every model is implemented here on
numpy: trees, forests, gradient boosting, logistic regression, an MLP,
kNN, and Gaussian naive Bayes — plus dataset handling, feature
extraction from the data store, metrics, and a Gym-style RL
environment for automation tasks (the Park-style angle).

Public entry points:

* :class:`~repro.learning.dataset.Dataset` and
  :mod:`repro.learning.split` — data handling.
* :mod:`repro.learning.features` — data-store-to-feature-matrix
  extraction (the "top-down feature engineering" the paper argues for).
* :mod:`repro.learning.models` — the estimators.
* :mod:`repro.learning.metrics` — evaluation.
* :mod:`repro.learning.training` — fit/evaluate orchestration.
* :mod:`repro.learning.rl` — environments and tabular Q-learning.
"""

from repro.learning.dataset import Dataset
from repro.learning.features import (
    FeatureConfig,
    SourceWindowFeaturizer,
    WindowExample,
)
from repro.learning.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
    classification_report,
)
from repro.learning.split import train_test_split, stratified_kfold
from repro.learning.training import TrainResult, train_and_evaluate, MODEL_REGISTRY
from repro.learning.calibration import (
    CalibrationReport,
    PlattCalibrator,
    calibration_report,
)
from repro.learning.subset import CollectionSpec, minimal_feature_subset

__all__ = [
    "Dataset",
    "FeatureConfig",
    "SourceWindowFeaturizer",
    "WindowExample",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
    "confusion_matrix",
    "classification_report",
    "train_test_split",
    "stratified_kfold",
    "TrainResult",
    "train_and_evaluate",
    "MODEL_REGISTRY",
    "CalibrationReport",
    "PlattCalibrator",
    "calibration_report",
    "CollectionSpec",
    "minimal_feature_subset",
]
