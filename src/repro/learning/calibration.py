"""Confidence calibration.

The §2 action rule — "drop attack traffic on ingress if confidence in
detection is at least 90%" — is only meaningful if 0.90 *means* 90%:
the switch's confidence gate consumes the model's probabilities
directly.  This module measures calibration (reliability curve,
expected calibration error) and provides Platt scaling to repair a
miscalibrated binary model before deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class ReliabilityBin:
    """One confidence bucket of the reliability curve."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    empirical_accuracy: float


@dataclass
class CalibrationReport:
    """Reliability curve + scalar summaries."""

    bins: List[ReliabilityBin]
    ece: float                  # expected calibration error
    max_gap: float              # worst |confidence - accuracy| over bins
    n_samples: int

    def render(self) -> str:
        lines = [f"ECE={self.ece:.4f}  max_gap={self.max_gap:.4f}  "
                 f"n={self.n_samples}"]
        for b in self.bins:
            if b.count == 0:
                continue
            lines.append(
                f"  [{b.lower:.2f},{b.upper:.2f}) n={b.count:5d} "
                f"conf={b.mean_confidence:.3f} acc={b.empirical_accuracy:.3f}"
            )
        return "\n".join(lines)


def calibration_report(y_true, proba, n_bins: int = 10) -> CalibrationReport:
    """Reliability analysis of a classifier's predicted class.

    ``proba`` is the (n, k) probability matrix; each sample contributes
    its argmax confidence vs whether the argmax was correct.
    """
    y_true = np.asarray(y_true, dtype=int)
    proba = np.asarray(proba, dtype=float)
    if proba.ndim != 2 or len(proba) != len(y_true):
        raise ValueError("proba must be (n_samples, n_classes)")
    if n_bins < 1:
        raise ValueError("need at least one bin")
    predicted = np.argmax(proba, axis=1)
    confidence = proba[np.arange(len(proba)), predicted]
    correct = (predicted == y_true).astype(float)

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: List[ReliabilityBin] = []
    ece = 0.0
    max_gap = 0.0
    n = len(y_true)
    for i in range(n_bins):
        lo, hi = edges[i], edges[i + 1]
        if i == n_bins - 1:
            mask = (confidence >= lo) & (confidence <= hi)
        else:
            mask = (confidence >= lo) & (confidence < hi)
        count = int(mask.sum())
        if count:
            mean_conf = float(confidence[mask].mean())
            accuracy = float(correct[mask].mean())
            gap = abs(mean_conf - accuracy)
            ece += count / n * gap
            max_gap = max(max_gap, gap)
        else:
            mean_conf = accuracy = 0.0
        bins.append(ReliabilityBin(lower=float(lo), upper=float(hi),
                                   count=count, mean_confidence=mean_conf,
                                   empirical_accuracy=accuracy))
    return CalibrationReport(bins=bins, ece=float(ece),
                             max_gap=float(max_gap), n_samples=n)


class PlattCalibrator:
    """Platt scaling for binary classifiers.

    Fits ``P(y=1 | s) = sigmoid(a * s + b)`` on a held-out calibration
    set, where ``s`` is the model's raw positive-class probability.
    Exposes the same ``predict`` / ``predict_proba`` interface so the
    calibrated model drops into the development loop unchanged.
    """

    def __init__(self, model, n_iter: int = 500, learning_rate: float = 1.0):
        self.model = model
        self.n_iter = n_iter
        self.learning_rate = learning_rate
        self.a_: float = 1.0
        self.b_: float = 0.0
        self.n_classes_ = 2

    def fit(self, X, y) -> "PlattCalibrator":
        y = np.asarray(y, dtype=float)
        scores = np.asarray(self.model.predict_proba(X))[:, 1]
        # Platt's target smoothing guards against overconfident labels.
        n_pos = max(y.sum(), 1.0)
        n_neg = max(len(y) - y.sum(), 1.0)
        targets = np.where(y > 0.5, (n_pos + 1) / (n_pos + 2),
                           1.0 / (n_neg + 2))
        a, b = 1.0, 0.0
        for _ in range(self.n_iter):
            z = np.clip(a * scores + b, -35, 35)
            p = 1.0 / (1.0 + np.exp(-z))
            grad = p - targets
            grad_a = float(np.mean(grad * scores))
            grad_b = float(np.mean(grad))
            a -= self.learning_rate * grad_a
            b -= self.learning_rate * grad_b
        self.a_, self.b_ = a, b
        return self

    def predict_proba(self, X) -> np.ndarray:
        scores = np.asarray(self.model.predict_proba(X))[:, 1]
        z = np.clip(self.a_ * scores + self.b_, -35, 35)
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(int)
