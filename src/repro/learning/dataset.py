"""Feature-matrix container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class Dataset:
    """A named feature matrix with integer-encoded labels.

    Attributes
    ----------
    X:
        (n_samples, n_features) float array.
    y:
        (n_samples,) int array of class indices.
    feature_names:
        Column names, length n_features.
    class_names:
        Class index -> human-readable label.
    keys:
        Optional per-row provenance (e.g. (window_start, src_ip)).
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: List[str]
    class_names: List[str]
    keys: Optional[List] = None

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if len(self.y) != len(self.X):
            raise ValueError("X and y length mismatch")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError("feature_names length mismatch")
        if self.keys is not None and len(self.keys) != len(self.X):
            raise ValueError("keys length mismatch")

    def __len__(self) -> int:
        return len(self.X)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.y, minlength=self.n_classes)
        return {name: int(c) for name, c in zip(self.class_names, counts)}

    def subset(self, indices) -> "Dataset":
        indices = np.asarray(indices)
        keys = None
        if self.keys is not None:
            keys = [self.keys[i] for i in indices]
        return Dataset(self.X[indices], self.y[indices],
                       list(self.feature_names), list(self.class_names),
                       keys=keys)

    def feature(self, name: str) -> np.ndarray:
        """Column by name."""
        try:
            index = self.feature_names.index(name)
        except ValueError:
            raise KeyError(f"no feature named {name!r}") from None
        return self.X[:, index]

    def binarize(self, positive_label: str) -> "Dataset":
        """Collapse to {negative, positive_label} (index 1 = positive)."""
        if positive_label not in self.class_names:
            raise KeyError(f"no class named {positive_label!r}")
        positive_index = self.class_names.index(positive_label)
        y = (self.y == positive_index).astype(int)
        return Dataset(self.X.copy(), y, list(self.feature_names),
                       ["other", positive_label], keys=self.keys)

    @staticmethod
    def concatenate(datasets: Sequence["Dataset"]) -> "Dataset":
        if not datasets:
            raise ValueError("nothing to concatenate")
        first = datasets[0]
        for d in datasets[1:]:
            if d.feature_names != first.feature_names:
                raise ValueError("feature name mismatch")
            if d.class_names != first.class_names:
                raise ValueError("class name mismatch")
        keys = None
        if all(d.keys is not None for d in datasets):
            keys = [k for d in datasets for k in d.keys]
        return Dataset(
            np.vstack([d.X for d in datasets]),
            np.concatenate([d.y for d in datasets]),
            list(first.feature_names),
            list(first.class_names),
            keys=keys,
        )
