"""CART decision trees (classification and regression).

The classifier is the backbone of the whole platform: it is a capable
standalone model, the weak learner inside the forest and the booster,
the *student* family for XAI model extraction
(:mod:`repro.xai.distill`), and the only model family the switch
compiler (:mod:`repro.deploy.compiler`) can lower to match-action
tables.  The tree is therefore exposed structurally: every node
carries its feature, threshold, children, and class distribution, and
the classifier offers :meth:`decision_path` for evidence lists.

Splits are axis-aligned ``x[f] <= t``; thresholds are midpoints of
consecutive distinct sorted values; impurity is Gini (classifier) or
variance (regressor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.learning.models.base import Classifier, NotFittedError


@dataclass
class TreeNode:
    """One node; leaves have ``feature is None``."""

    node_id: int
    n_samples: int
    value: np.ndarray              # class counts (clf) or [mean] (reg)
    depth: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.leaf_count() + self.right.leaf_count()

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()

    def max_depth(self) -> int:
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class _TreeBuilder:
    """Shared recursive CART builder."""

    def __init__(self, criterion: str, max_depth: Optional[int],
                 min_samples_split: int, min_samples_leaf: int,
                 max_features: Optional[int],
                 rng: Optional[np.random.Generator]):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self._next_id = 0

    def _new_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def build(self, X: np.ndarray, y: np.ndarray,
              sample_weight: Optional[np.ndarray],
              n_classes: int) -> TreeNode:
        weight = (np.ones(len(y)) if sample_weight is None
                  else np.asarray(sample_weight, dtype=float))
        return self._build_node(X, y, weight, n_classes, depth=0)

    # -- node construction -------------------------------------------------

    def _node_value(self, y, weight, n_classes) -> np.ndarray:
        if self.criterion == "gini":
            counts = np.zeros(n_classes)
            np.add.at(counts, y.astype(int), weight)
            return counts
        total = weight.sum()
        mean = float(np.average(y, weights=weight)) if total > 0 else 0.0
        return np.asarray([mean])

    def _impurity(self, y, weight, value) -> float:
        if self.criterion == "gini":
            return _gini(value)
        if weight.sum() == 0:
            return 0.0
        mean = value[0]
        return float(np.average((y - mean) ** 2, weights=weight))

    def _build_node(self, X, y, weight, n_classes, depth) -> TreeNode:
        value = self._node_value(y, weight, n_classes)
        node = TreeNode(
            node_id=self._new_id(),
            n_samples=len(y),
            value=value,
            depth=depth,
            impurity=self._impurity(y, weight, value),
        )
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or node.impurity <= 1e-12
        ):
            return node
        split = self._best_split(X, y, weight, n_classes)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build_node(X[mask], y[mask], weight[mask],
                                     n_classes, depth + 1)
        node.right = self._build_node(X[~mask], y[~mask], weight[~mask],
                                      n_classes, depth + 1)
        return node

    # -- split search -------------------------------------------------------

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        assert self.rng is not None, "max_features requires an rng"
        return self.rng.choice(n_features, size=self.max_features,
                               replace=False)

    def _best_split(self, X, y, weight, n_classes) -> Optional[Tuple[int,
                                                                     float]]:
        best_gain = 1e-12
        best: Optional[Tuple[int, float]] = None
        for feature in self._candidate_features(X.shape[1]):
            result = self._best_split_on_feature(
                X[:, feature], y, weight, n_classes)
            if result is not None and result[1] > best_gain:
                best = (int(feature), result[0])
                best_gain = result[1]
        return best

    def _best_split_on_feature(self, column, y, weight, n_classes):
        order = np.argsort(column, kind="mergesort")
        xs = column[order]
        ys = y[order]
        ws = weight[order]
        # Positions where the value changes are the only valid cuts.
        distinct = np.flatnonzero(np.diff(xs) > 0) + 1
        if len(distinct) == 0:
            return None
        total_w = ws.sum()
        if self.criterion == "gini":
            onehot = np.zeros((len(ys), n_classes))
            onehot[np.arange(len(ys)), ys.astype(int)] = 1.0
            onehot *= ws[:, None]
            cum = np.cumsum(onehot, axis=0)
            total = cum[-1]
            left = cum[distinct - 1]
            right = total - left
            left_w = left.sum(axis=1)
            right_w = right.sum(axis=1)
            valid = (left_w >= self.min_samples_leaf) & \
                    (right_w >= self.min_samples_leaf)
            if not np.any(valid):
                return None
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - np.sum(
                    (left / np.maximum(left_w[:, None], 1e-12)) ** 2, axis=1)
                gini_right = 1.0 - np.sum(
                    (right / np.maximum(right_w[:, None], 1e-12)) ** 2, axis=1)
            parent = _gini(total)
            gain = parent - (left_w * gini_left + right_w * gini_right) / total_w
        else:
            yw = ys * ws
            cum_w = np.cumsum(ws)
            cum_yw = np.cumsum(yw)
            cum_y2w = np.cumsum(ys * yw)
            left_w = cum_w[distinct - 1]
            right_w = total_w - left_w
            valid = (left_w >= self.min_samples_leaf) & \
                    (right_w >= self.min_samples_leaf)
            if not np.any(valid):
                return None
            left_sum = cum_yw[distinct - 1]
            right_sum = cum_yw[-1] - left_sum
            left_sq = cum_y2w[distinct - 1]
            right_sq = cum_y2w[-1] - left_sq
            var_left = left_sq - left_sum ** 2 / np.maximum(left_w, 1e-12)
            var_right = right_sq - right_sum ** 2 / np.maximum(right_w, 1e-12)
            parent_var = cum_y2w[-1] - cum_yw[-1] ** 2 / total_w
            gain = (parent_var - var_left - var_right) / total_w

        gain = np.where(valid, gain, -np.inf)
        best_index = int(np.argmax(gain))
        if not np.isfinite(gain[best_index]) or gain[best_index] <= 1e-12:
            return None
        cut = distinct[best_index]
        threshold = (xs[cut - 1] + xs[cut]) / 2.0
        return float(threshold), float(gain[best_index])


class DecisionTreeClassifier(Classifier):
    """CART classifier with structural introspection.

    Parameters mirror the scikit-learn names where they overlap.
    """

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: Optional[int] = None,
                 random_state: Optional[int] = None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: Optional[TreeNode] = None
        self.n_features_: Optional[int] = None

    def fit(self, X, y, sample_weight=None, n_classes: Optional[int] = None):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = n_classes or int(y.max()) + 1
        self.n_features_ = X.shape[1]
        rng = (np.random.default_rng(self.random_state)
               if self.max_features is not None else None)
        builder = _TreeBuilder("gini", self.max_depth,
                               self.min_samples_split, self.min_samples_leaf,
                               self.max_features, rng)
        self.root_ = builder.build(X, y, sample_weight, self.n_classes_)
        return self

    def _leaf_for(self, x) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold \
                else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        out = np.zeros((len(X), self.n_classes_))
        for i, x in enumerate(X):
            counts = self._leaf_for(x).value
            total = counts.sum()
            out[i] = counts / total if total > 0 else 1.0 / self.n_classes_
        return out

    def decision_path(self, x) -> List[TreeNode]:
        """Root-to-leaf node sequence for one sample (evidence lists)."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        path = []
        node = self.root_
        while True:
            path.append(node)
            if node.is_leaf:
                return path
            node = node.left if x[node.feature] <= node.threshold \
                else node.right

    def leaves(self) -> List[TreeNode]:
        self._check_fitted()
        out: List[TreeNode] = []
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend((node.right, node.left))
        return out

    @property
    def n_leaves(self) -> int:
        self._check_fitted()
        return self.root_.leaf_count()

    @property
    def depth(self) -> int:
        self._check_fitted()
        return self.root_.max_depth()

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum 1."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)
        stack = [self.root_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            left, right = node.left, node.right
            n = node.n_samples
            decrease = node.impurity * n - (
                left.impurity * left.n_samples
                + right.impurity * right.n_samples
            )
            importances[node.feature] += max(decrease, 0.0)
            stack.extend((left, right))
        total = importances.sum()
        return importances / total if total > 0 else importances


class DecisionTreeRegressor:
    """CART regressor (variance splitting); booster weak learner."""

    def __init__(self, max_depth: Optional[int] = 3,
                 min_samples_split: int = 2, min_samples_leaf: int = 1):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.root_: Optional[TreeNode] = None

    def fit(self, X, y, sample_weight=None):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("bad shapes for regression fit")
        builder = _TreeBuilder("mse", self.max_depth, self.min_samples_split,
                               self.min_samples_leaf, None, None)
        self.root_ = builder.build(X, y, sample_weight, n_classes=1)
        return self

    def predict(self, X) -> np.ndarray:
        if self.root_ is None:
            raise NotFittedError("regressor not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, x in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.value[0]
        return out
