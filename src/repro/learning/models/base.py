"""Estimator base classes."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict is called before fit."""


class Classifier(abc.ABC):
    """Minimal classifier interface shared by all models.

    Subclasses set ``self.n_classes_`` during fit and implement
    :meth:`predict_proba`; :meth:`predict` defaults to argmax.
    """

    n_classes_: Optional[int] = None

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on (n_samples, n_features) X and int labels y."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, shape (n_samples, n_classes)."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return np.argmax(proba, axis=1)

    def _check_fitted(self) -> None:
        if self.n_classes_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    @staticmethod
    def _check_Xy(X, y=None):
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y is None:
            return X
        y = np.asarray(y, dtype=int)
        if len(y) != len(X):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if y.min() < 0:
            raise ValueError("labels must be non-negative ints")
        return X, y
