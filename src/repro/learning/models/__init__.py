"""From-scratch estimators (numpy only).

* :class:`DecisionTreeClassifier` / :class:`DecisionTreeRegressor` —
  CART; the classifier doubles as the *deployable* model family the
  XAI layer extracts and the compiler lowers to match-action tables.
* :class:`RandomForestClassifier` — bagged trees with feature
  subsampling (a canonical "black-box" teacher).
* :class:`GradientBoostingClassifier` — boosted regression trees on
  logistic loss (the heavyweight teacher used in most experiments).
* :class:`LogisticRegression`, :class:`MLPClassifier`,
  :class:`KNeighborsClassifier`, :class:`GaussianNB` — additional
  teachers/baselines.
"""

from repro.learning.models.base import Classifier, NotFittedError
from repro.learning.models.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    TreeNode,
)
from repro.learning.models.forest import RandomForestClassifier
from repro.learning.models.boosting import GradientBoostingClassifier
from repro.learning.models.linear import LogisticRegression
from repro.learning.models.mlp import MLPClassifier
from repro.learning.models.knn import KNeighborsClassifier
from repro.learning.models.naive_bayes import GaussianNB

__all__ = [
    "Classifier",
    "NotFittedError",
    "TreeNode",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "KNeighborsClassifier",
    "GaussianNB",
]
