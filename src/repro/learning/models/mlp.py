"""Multi-layer perceptron classifier (numpy, Adam, ReLU)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.models.base import Classifier


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(Classifier):
    """Fully-connected network with ReLU hidden layers and softmax out.

    Standardizes inputs internally; optimises cross-entropy with Adam
    over mini-batches.  Deliberately the most "black-box" teacher in
    the zoo — no structural introspection at all.
    """

    def __init__(self, hidden: Sequence[int] = (32, 16), epochs: int = 60,
                 batch_size: int = 64, learning_rate: float = 1e-3,
                 l2: float = 1e-4, random_state: int = 0):
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.random_state = random_state
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def _init_params(self, d_in: int, rng: np.random.Generator) -> None:
        sizes = [d_in, *self.hidden, self.n_classes_]
        self._weights = []
        self._biases = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / a)
            self._weights.append(rng.normal(0.0, scale, size=(a, b)))
            self._biases.append(np.zeros(b))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [X]
        h = X
        for W, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.maximum(h @ W + b, 0.0)
            activations.append(h)
        logits = h @ self._weights[-1] + self._biases[-1]
        return activations, logits

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = self._standardize(X)
        rng = np.random.default_rng(self.random_state)
        self._init_params(Xs.shape[1], rng)

        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = len(Xs)
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0

        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = Xs[batch], onehot[batch]
                activations, logits = self._forward(xb)
                proba = _softmax(logits)
                delta = (proba - yb) / len(batch)

                grads_w = []
                grads_b = []
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_prev = activations[layer]
                    grads_w.append(a_prev.T @ delta
                                   + self.l2 * self._weights[layer])
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * \
                            (activations[layer] > 0)
                grads_w.reverse()
                grads_b.reverse()

                step += 1
                for i in range(len(self._weights)):
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    mw_hat = m_w[i] / (1 - beta1 ** step)
                    vw_hat = v_w[i] / (1 - beta2 ** step)
                    mb_hat = m_b[i] / (1 - beta1 ** step)
                    vb_hat = v_b[i] / (1 - beta2 ** step)
                    self._weights[i] -= self.learning_rate * mw_hat / \
                        (np.sqrt(vw_hat) + eps)
                    self._biases[i] -= self.learning_rate * mb_hat / \
                        (np.sqrt(vb_hat) + eps)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        _, logits = self._forward(self._standardize(X))
        return _softmax(logits)
