"""Gaussian naive Bayes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learning.models.base import Classifier


class GaussianNB(Classifier):
    """Per-class diagonal Gaussians with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self._theta: Optional[np.ndarray] = None
        self._var: Optional[np.ndarray] = None
        self._priors: Optional[np.ndarray] = None

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        n_features = X.shape[1]
        self._theta = np.zeros((self.n_classes_, n_features))
        self._var = np.ones((self.n_classes_, n_features))
        self._priors = np.zeros(self.n_classes_)
        global_var = X.var(axis=0).max() + 1e-12
        for cls in range(self.n_classes_):
            members = X[y == cls]
            self._priors[cls] = len(members) / len(X)
            if len(members) == 0:
                continue
            self._theta[cls] = members.mean(axis=0)
            self._var[cls] = members.var(axis=0) + \
                self.var_smoothing * global_var
        self._var[self._var <= 0] = self.var_smoothing * global_var
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        log_priors = np.log(np.maximum(self._priors, 1e-12))
        log_like = np.zeros((len(X), self.n_classes_))
        for cls in range(self.n_classes_):
            diff = X - self._theta[cls]
            log_like[:, cls] = -0.5 * np.sum(
                np.log(2 * np.pi * self._var[cls]) +
                diff ** 2 / self._var[cls], axis=1
            )
        joint = log_like + log_priors
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        return proba / proba.sum(axis=1, keepdims=True)
