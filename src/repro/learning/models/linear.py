"""Multinomial logistic regression (full-batch gradient descent + L2)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learning.models.base import Classifier


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegression(Classifier):
    """Softmax regression with standardized inputs.

    Inputs are standardized internally (mean/std from fit) so the
    default learning rate behaves across the wildly different feature
    scales network data produces.
    """

    def __init__(self, learning_rate: float = 0.5, n_iter: int = 300,
                 l2: float = 1e-3):
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = self._standardize(X)
        n, d = Xs.shape
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0
        self.weights_ = np.zeros((d, self.n_classes_))
        self.bias_ = np.zeros(self.n_classes_)
        for _ in range(self.n_iter):
            proba = _softmax(Xs @ self.weights_ + self.bias_)
            error = (proba - onehot) / n
            grad_w = Xs.T @ error + self.l2 * self.weights_
            grad_b = error.sum(axis=0)
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        return _softmax(self._standardize(X) @ self.weights_ + self.bias_)
