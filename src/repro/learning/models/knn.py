"""k-nearest-neighbours classifier (standardized Euclidean)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learning.models.base import Classifier


class KNeighborsClassifier(Classifier):
    """Brute-force kNN with internal standardization."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        self._X = (X - self._mean) / self._std
        self._y = y
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        Xs = (X - self._mean) / self._std
        k = min(self.k, len(self._X))
        out = np.zeros((len(Xs), self.n_classes_))
        # Chunked distance computation to bound memory.
        chunk = 256
        for start in range(0, len(Xs), chunk):
            block = Xs[start:start + chunk]
            d2 = ((block[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for row, neighbor_ids in enumerate(nearest):
                votes = np.bincount(self._y[neighbor_ids],
                                    minlength=self.n_classes_)
                out[start + row] = votes / votes.sum()
        return out
