"""Random forest classifier (bagging + feature subsampling)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.learning.models.base import Classifier
from repro.learning.models.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated CART trees.

    ``max_features=None`` defaults to round(sqrt(n_features)), the
    usual heuristic.
    """

    def __init__(self, n_estimators: int = 50,
                 max_depth: Optional[int] = None,
                 min_samples_leaf: int = 1,
                 max_features: Optional[int] = None,
                 random_state: int = 0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: List[DecisionTreeClassifier] = []

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        n_features = X.shape[1]
        max_features = self.max_features or max(
            int(round(np.sqrt(n_features))), 1)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        for i in range(self.n_estimators):
            indices = rng.integers(0, len(X), size=len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], y[indices], n_classes=self.n_classes_)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        proba = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            proba += tree.predict_proba(X)
        return proba / len(self.trees_)

    def feature_importances(self) -> np.ndarray:
        self._check_fitted()
        total = np.zeros(self.trees_[0].n_features_)
        for tree in self.trees_:
            total += tree.feature_importances()
        return total / len(self.trees_)
