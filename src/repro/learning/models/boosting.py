"""Gradient-boosted trees on logistic loss.

Binary boosting fits regression trees to the negative gradient of the
log loss; multi-class uses one-vs-rest over K binary boosters (simple
and robust for the handful of event classes the platform sees).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.learning.models.base import Classifier
from repro.learning.models.tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class _BinaryBooster:
    """One boosted ensemble for a {0,1} target."""

    def __init__(self, n_estimators: int, learning_rate: float,
                 max_depth: int, min_samples_leaf: int, subsample: float,
                 rng: np.random.Generator):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.rng = rng
        self.trees: List[DecisionTreeRegressor] = []
        self.base_score = 0.0

    def fit(self, X: np.ndarray, y01: np.ndarray) -> None:
        positive_rate = float(np.clip(np.mean(y01), 1e-6, 1 - 1e-6))
        self.base_score = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(len(X), self.base_score)
        for _ in range(self.n_estimators):
            gradient = y01 - _sigmoid(raw)        # negative gradient
            if self.subsample < 1.0:
                mask = self.rng.random(len(X)) < self.subsample
                if mask.sum() < 2:
                    mask[:] = True
            else:
                mask = np.ones(len(X), dtype=bool)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[mask], gradient[mask])
            raw += self.learning_rate * tree.predict(X)
            self.trees.append(tree)

    def decision(self, X: np.ndarray) -> np.ndarray:
        raw = np.full(len(X), self.base_score)
        for tree in self.trees:
            raw += self.learning_rate * tree.predict(X)
        return raw


class GradientBoostingClassifier(Classifier):
    """The platform's default heavyweight black-box teacher."""

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 1,
                 subsample: float = 1.0, random_state: int = 0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.boosters_: List[_BinaryBooster] = []

    def fit(self, X, y):
        X, y = self._check_Xy(X, y)
        self.n_classes_ = int(y.max()) + 1
        rng = np.random.default_rng(self.random_state)
        self.boosters_ = []
        if self.n_classes_ == 2:
            booster = self._make_booster(rng)
            booster.fit(X, (y == 1).astype(float))
            self.boosters_.append(booster)
        else:
            for cls in range(self.n_classes_):
                booster = self._make_booster(rng)
                booster.fit(X, (y == cls).astype(float))
                self.boosters_.append(booster)
        return self

    def _make_booster(self, rng) -> _BinaryBooster:
        return _BinaryBooster(self.n_estimators, self.learning_rate,
                              self.max_depth, self.min_samples_leaf,
                              self.subsample, rng)

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._check_Xy(X)
        if self.n_classes_ == 2:
            p1 = _sigmoid(self.boosters_[0].decision(X))
            return np.column_stack([1 - p1, p1])
        raw = np.column_stack([b.decision(X) for b in self.boosters_])
        raw -= raw.max(axis=1, keepdims=True)
        expraw = np.exp(raw)
        return expraw / expraw.sum(axis=1, keepdims=True)
