"""Classification metrics (binary and multi-class)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


def _validate(y_true, y_pred) -> tuple:
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: Optional[int] = None) -> \
        np.ndarray:
    """Rows = true class, columns = predicted class."""
    y_true, y_pred = _validate(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[t, p] += 1
    return matrix


def precision(y_true, y_pred, positive: int = 1) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    predicted_positive = np.sum(y_pred == positive)
    if predicted_positive == 0:
        return 0.0
    true_positive = np.sum((y_pred == positive) & (y_true == positive))
    return float(true_positive / predicted_positive)


def recall(y_true, y_pred, positive: int = 1) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    actual_positive = np.sum(y_true == positive)
    if actual_positive == 0:
        return 0.0
    true_positive = np.sum((y_pred == positive) & (y_true == positive))
    return float(true_positive / actual_positive)


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def roc_auc(y_true, scores) -> float:
    """Binary AUC via the rank statistic (ties get average rank)."""
    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("shape mismatch")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum = float(np.sum(ranks[y_true == 1]))
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def classification_report(y_true, y_pred,
                          class_names: Optional[List[str]] = None) -> \
        Dict[str, Dict[str, float]]:
    """Per-class precision/recall/F1 plus overall accuracy."""
    y_true, y_pred = _validate(y_true, y_pred)
    n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    if class_names is None:
        class_names = [str(i) for i in range(n_classes)]
    report: Dict[str, Dict[str, float]] = {}
    for index, name in enumerate(class_names[:n_classes]):
        support = int(np.sum(y_true == index))
        report[name] = {
            "precision": precision(y_true, y_pred, positive=index),
            "recall": recall(y_true, y_pred, positive=index),
            "f1": f1_score(y_true, y_pred, positive=index),
            "support": float(support),
        }
    report["_overall"] = {"accuracy": accuracy(y_true, y_pred),
                          "support": float(len(y_true))}
    return report
