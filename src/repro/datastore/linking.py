"""Cross-source record linking.

§5: stored data is "linked and indexed to provide fast and flexible
search capabilities".  The linker materialises the joins researchers
actually use:

* packets <-> assembled flow records (canonical 5-tuple + time overlap);
* flow records <-> sensor logs (shared endpoint IPs + time proximity).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datastore.query import Query
from repro.netsim.packets import FiveTuple


@dataclass
class LinkedView:
    """All store records related to one flow."""

    flow: object                       # StoredRecord of a FlowRecord
    packets: List = field(default_factory=list)
    logs: List = field(default_factory=list)


class RecordLinker:
    """Builds linked views across collections."""

    def __init__(self, store, log_window_s: float = 30.0):
        self.store = store
        self.log_window_s = float(log_window_s)

    @staticmethod
    def _flow_key(record) -> Tuple:
        return FiveTuple(record.src_ip, record.dst_ip, record.src_port,
                         record.dst_port, record.protocol).canonical()

    def link_flow(self, stored_flow) -> LinkedView:
        """Linked view for one stored flow record."""
        flow = stored_flow.record
        key = self._flow_key(flow)
        view = LinkedView(flow=stored_flow)
        packet_hits = self.store.query(Query(
            collection="packets",
            time_range=(flow.first_seen - 1e-6, flow.last_seen + 1e-6),
            predicate=lambda s: self._flow_key(s.record) == key,
            order_by_time=True,
        ))
        view.packets = packet_hits
        endpoints = {flow.src_ip, flow.dst_ip}
        log_hits = self.store.query(Query(
            collection="logs",
            time_range=(flow.first_seen - self.log_window_s,
                        flow.last_seen + self.log_window_s),
            predicate=lambda s: bool(
                {s.record.attrs.get("src_ip"), s.record.attrs.get("dst_ip")}
                & endpoints
            ),
            order_by_time=True,
        ))
        view.logs = log_hits
        return view

    def link_all_flows(self, time_range: Optional[Tuple] = None) -> \
            List[LinkedView]:
        """Linked views for every flow record (optionally time-bounded).

        Uses a single pass over packets/logs rather than per-flow
        queries, so it stays linear in store size.
        """
        flows = self.store.query(Query(collection="flows",
                                       time_range=time_range))
        views = {id(s): LinkedView(flow=s) for s in flows}
        by_key: Dict[Tuple, List] = defaultdict(list)
        by_endpoint: Dict[str, List] = defaultdict(list)
        for stored in flows:
            record = stored.record
            by_key[self._flow_key(record)].append(stored)
            by_endpoint[record.src_ip].append(stored)
            by_endpoint[record.dst_ip].append(stored)

        for packet in self.store.query(Query(collection="packets",
                                             time_range=time_range,
                                             order_by_time=False)):
            key = self._flow_key(packet.record)
            for stored_flow in by_key.get(key, ()):
                flow = stored_flow.record
                if flow.first_seen - 1e-6 <= packet.record.timestamp \
                        <= flow.last_seen + 1e-6:
                    views[id(stored_flow)].packets.append(packet)

        for log in self.store.query(Query(collection="logs",
                                          time_range=None,
                                          order_by_time=False)):
            attrs = log.record.attrs
            for ip in (attrs.get("src_ip"), attrs.get("dst_ip")):
                if not ip:
                    continue
                for stored_flow in by_endpoint.get(ip, ()):
                    flow = stored_flow.record
                    if (flow.first_seen - self.log_window_s
                            <= log.record.timestamp
                            <= flow.last_seen + self.log_window_s):
                        view = views[id(stored_flow)]
                        if log not in view.logs:
                            view.logs.append(log)
        return list(views.values())
