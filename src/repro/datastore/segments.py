"""Append-only segments with per-segment indexes."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datastore.index import HashIndex, InvertedIndex, TimeIndex
from repro.datastore.schema import CollectionSchema


class Segment:
    """A bounded run of stored records plus its local indexes.

    Records are wrapped :class:`~repro.datastore.store.StoredRecord`
    instances.  A segment seals when full; sealed segments are the unit
    of retention eviction.
    """

    def __init__(self, schema: CollectionSchema, segment_id: int,
                 capacity: int = 50_000):
        if capacity <= 0:
            raise ValueError("segment capacity must be positive")
        self.schema = schema
        self.segment_id = segment_id
        self.capacity = capacity
        self.records: List = []
        self.sealed = False
        self.bytes_estimate = 0
        self.time_index = TimeIndex()
        self.field_indexes: Dict[str, HashIndex] = {
            f: HashIndex() for f in schema.indexed_fields
        }
        self.tag_index = InvertedIndex()

    @property
    def full(self) -> bool:
        return len(self.records) >= self.capacity

    def append(self, stored) -> int:
        """Add a stored record; returns its position in the segment."""
        if self.sealed:
            raise RuntimeError(f"segment {self.segment_id} is sealed")
        position = len(self.records)
        self.records.append(stored)
        record = stored.record
        self.bytes_estimate += self.schema.size_fn(record)
        self.time_index.add(self.schema.time_of(record), position)
        for field, index in self.field_indexes.items():
            index.add(self.schema.field_of(record, field), position)
        if stored.tags:
            self.tag_index.add(stored.tags, position)
        return position

    def seal(self) -> None:
        self.sealed = True
        self.time_index.seal()

    @property
    def min_time(self) -> Optional[float]:
        return self.time_index.min_time

    @property
    def max_time(self) -> Optional[float]:
        return self.time_index.max_time

    def overlaps(self, start: Optional[float], end: Optional[float]) -> bool:
        lo, hi = self.min_time, self.max_time
        if lo is None:
            return False
        if start is not None and hi < start:
            return False
        if end is not None and lo > end:
            return False
        return True

    def __len__(self) -> int:
        return len(self.records)
