"""Append-only segments with per-segment indexes and columnar mirrors.

A segment's ``records`` list is the source of truth; everything else —
hash/tag indexes, the struct-of-arrays column block, zone maps — is an
acceleration structure built lazily on first use.  Batch ingest
therefore costs little more than extending a list, and queries that
never touch an index never pay for one.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Optional

from repro.datastore.index import HashIndex, InvertedIndex, TimeIndex
from repro.datastore.schema import CollectionSchema
from repro.netsim.packets import PacketColumns


class Segment:
    """A bounded run of stored records plus its local indexes.

    Records are wrapped :class:`~repro.datastore.store.StoredRecord`
    instances.  A segment seals when full; sealed segments are the unit
    of retention eviction.  For columnar collections (packets),
    :meth:`columns` exposes the records as a cached
    :class:`~repro.netsim.packets.PacketColumns` block that the
    vectorized query path filters with numpy masks and prunes with
    per-segment zone maps.
    """

    def __init__(self, schema: CollectionSchema, segment_id: int,
                 capacity: int = 50_000):
        if capacity <= 0:
            raise ValueError("segment capacity must be positive")
        self.schema = schema
        self.segment_id = segment_id
        self.capacity = capacity
        self.records: List = []
        self.sealed = False
        self.bytes_estimate = 0
        self.time_index = TimeIndex()
        self._field_indexes: Optional[Dict[str, HashIndex]] = None
        self._field_indexed_upto = 0
        self._tag_index: Optional[InvertedIndex] = None
        self._tag_indexed_upto = 0
        self._columns: Optional[PacketColumns] = None
        self._columns_len = -1
        self._stats = None
        self._stats_rows = -1

    @property
    def full(self) -> bool:
        return len(self.records) >= self.capacity

    # -- append ------------------------------------------------------------

    def append(self, stored) -> int:
        """Add a stored record; returns its position in the segment."""
        if self.sealed:
            raise RuntimeError(f"segment {self.segment_id} is sealed")
        position = len(self.records)
        self.records.append(stored)
        record = stored.record
        self.bytes_estimate += self.schema.size_fn(record)
        self.time_index.add(self.schema.time_of(record), position)
        return position

    def append_batch(self, batch: List) -> None:
        """Add stored records in bulk (caller must respect capacity)."""
        if self.sealed:
            raise RuntimeError(f"segment {self.segment_id} is sealed")
        if not batch:
            return
        start = len(self.records)
        self.records.extend(batch)
        records = [s.record for s in batch]
        if self.schema.batch_size_fn is not None:
            self.bytes_estimate += self.schema.batch_size_fn(records)
        else:
            size_fn = self.schema.size_fn
            self.bytes_estimate += sum(map(size_fn, records))
        times = list(map(attrgetter(self.schema.time_field), records))
        self.time_index.add_batch(times, range(start, start + len(batch)))

    def seal(self, build_stats: bool = False) -> None:
        self.sealed = True
        self.time_index.seal()
        if build_stats:
            self.build_stats()

    # -- lazy acceleration structures --------------------------------------

    @property
    def field_indexes(self) -> Dict[str, HashIndex]:
        """Per-field hash indexes, built/extended on first use."""
        if self._field_indexes is None:
            self._field_indexes = {
                f: HashIndex() for f in self.schema.indexed_fields
            }
            self._field_indexed_upto = 0
        n = len(self.records)
        if self._field_indexed_upto < n:
            field_of = self.schema.field_of
            start = self._field_indexed_upto
            fresh = [s.record for s in self.records[start:n]]
            for fld, index in self._field_indexes.items():
                index.add_batch((field_of(r, fld) for r in fresh), start)
            self._field_indexed_upto = n
        return self._field_indexes

    @property
    def tag_index(self) -> InvertedIndex:
        """Inverted tag index, built/extended on first use."""
        if self._tag_index is None:
            self._tag_index = InvertedIndex()
            self._tag_indexed_upto = 0
        n = len(self.records)
        if self._tag_indexed_upto < n:
            for position in range(self._tag_indexed_upto, n):
                tags = self.records[position].tags
                if tags:
                    self._tag_index.add(tags, position)
            self._tag_indexed_upto = n
        return self._tag_index

    def invalidate_indexes(self) -> None:
        """Drop lazily built structures (after out-of-band tag edits)."""
        self._field_indexes = None
        self._field_indexed_upto = 0
        self._tag_index = None
        self._tag_indexed_upto = 0
        self._columns = None
        self._columns_len = -1
        self._stats = None
        self._stats_rows = -1

    # -- planner statistics --------------------------------------------------

    def build_stats(self):
        """Build (or rebuild) the planner's per-column stats block.

        Called at seal time when the owning store opted in
        (``stats_on_seal``), by :meth:`DataStore.build_stats`, and by
        anything that wants cost-based planning over this segment.
        """
        from repro.datastore.stats import SegmentStats

        self._stats = SegmentStats.build(self)
        self._stats_rows = len(self.records)
        return self._stats

    def stats(self):
        """The stats block, or None when never built / gone stale.

        Staleness is by row count, exactly like the cached column
        block: the planner silently falls back to heuristic costs for
        a growing segment rather than trusting a snapshot of it.
        """
        if self._stats is not None and self._stats_rows == len(self.records):
            return self._stats
        return None

    def adopt_stats(self, stats) -> None:
        """Install a pre-merged stats block instead of rebuilding it.

        The compactor merges the input segments' blocks at sketch
        granularity (:func:`~repro.datastore.stats.merge_column_stats`)
        — one table add per column instead of a full distinct-value
        pass over the merged rows.
        """
        self._stats = stats
        self._stats_rows = len(self.records)

    def adopt_columns(self, columns: PacketColumns) -> bool:
        """Install a pre-built column block instead of rebuilding it.

        The sharded ingest path slices one already-materialized
        :class:`PacketColumns` batch per shard; when the slice covers
        exactly this segment's records, adopting it skips the
        per-record rebuild in :meth:`columns`.  Rejected (returns
        False) unless lengths line up and the schema is columnar.
        """
        if not self.schema.columnar or len(columns) != len(self.records):
            return False
        self._columns = columns
        self._columns_len = len(self.records)
        return True

    def columns(self) -> Optional[PacketColumns]:
        """Cached struct-of-arrays mirror, or None (non-columnar schema,
        or records that resist array conversion — fall back to the
        record-at-a-time path)."""
        if not self.schema.columnar:
            return None
        n = len(self.records)
        if self._columns_len != n:
            try:
                self._columns = PacketColumns.from_records(
                    [s.record for s in self.records]
                )
            except Exception:
                self._columns = None
            self._columns_len = n
        return self._columns

    # -- time span ----------------------------------------------------------

    @property
    def min_time(self) -> Optional[float]:
        return self.time_index.min_time

    @property
    def max_time(self) -> Optional[float]:
        return self.time_index.max_time

    def overlaps(self, start: Optional[float], end: Optional[float]) -> bool:
        lo, hi = self.min_time, self.max_time
        if lo is None:
            return False
        if start is not None and hi < start:
            return False
        if end is not None and lo > end:
            return False
        return True

    def __len__(self) -> int:
        return len(self.records)
