"""Collection schemas: how the store reads fields off heterogeneous records."""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class CollectionSchema:
    """Describes one collection's time axis and indexable fields.

    ``columnar`` marks collections whose records can be mirrored into a
    struct-of-arrays block (:class:`repro.netsim.packets.PacketColumns`)
    for the vectorized query path; ``batch_size_fn`` is an optional
    whole-batch equivalent of ``size_fn`` (must agree exactly with
    summing ``size_fn`` per record).
    """

    name: str
    time_field: str
    indexed_fields: tuple
    size_fn: Callable
    columnar: bool = False
    batch_size_fn: Optional[Callable] = None

    def time_of(self, record) -> float:
        """The record's position on the collection's time axis."""
        return float(getattr(record, self.time_field))

    def field_of(self, record, field: str):
        """Indexed-field accessor (None when the field is absent)."""
        return getattr(record, field, None)


def _packet_size(record) -> int:
    # Fixed header + payload fragment + strings, matching pcapng format.
    return 44 + len(record.payload) + len(record.app) + len(record.label)


def _packet_batch_size(records) -> int:
    # Three C-level attrgetter/map passes beat one Python-level genexpr.
    return (
        44 * len(records)
        + sum(map(len, map(attrgetter("payload"), records)))
        + sum(map(len, map(attrgetter("app"), records)))
        + sum(map(len, map(attrgetter("label"), records)))
    )


def _flow_size(record) -> int:
    return 96


def _log_size(record) -> int:
    return 48 + len(record.message)


PACKETS = CollectionSchema(
    name="packets",
    time_field="timestamp",
    indexed_fields=("src_ip", "dst_ip", "dst_port", "protocol", "direction"),
    size_fn=_packet_size,
    columnar=True,
    batch_size_fn=_packet_batch_size,
)

FLOWS = CollectionSchema(
    name="flows",
    time_field="first_seen",
    indexed_fields=("src_ip", "dst_ip", "dst_port", "protocol", "label"),
    size_fn=_flow_size,
)

LOGS = CollectionSchema(
    name="logs",
    time_field="timestamp",
    indexed_fields=("source", "kind"),
    size_fn=_log_size,
)

SCHEMAS: Dict[str, CollectionSchema] = {
    s.name: s for s in (PACKETS, FLOWS, LOGS)
}
