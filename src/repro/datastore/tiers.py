"""Tiered storage: hot memtable → warm sealed segments → cold mmap files.

The paper's platform promises *continuous* campus-scale capture, which
batch ``ingest_packets`` alone cannot honor: a store that only grows
in RAM neither absorbs sustained pressure nor outlives the process.
This module adds an LSM-flavored tier ladder behind the existing
planner/executors:

* **hot** — one unsealed write-optimized :class:`Segment` (the
  memtable) per store; appends are list-extends, nothing else.
* **warm** — sealed, ``(time, rid)``-sorted in-memory segments with
  columnar mirrors and (optionally) planner stats.
* **cold** — compressed on-disk segment directories opened with
  ``numpy`` memory maps, so a store bigger than RAM stays queryable
  without faulting whole segments in.

All three tiers satisfy the same *SegmentSource* duck type the planner
and executors already consume (``records``, ``columns()``, ``stats()``,
``min_time``/``max_time``/``overlaps``, ``schema``, ``segment_id``),
so queries treat a half-compacted store exactly like a quiesced one.
Bit-identity with a flat store holds because rids are assigned in
global ingest order and every tiered query goes through the
deterministic ``(time, rid)`` merge
(:func:`~repro.datastore.planner.execute_plan_sharded`), which is the
same order a flat store's stable time-sort produces.

Compaction is a *stepped* state machine, not a thread: callers (the
CLI loop, tests, a platform tick) invoke :meth:`Compactor.step`, and
every disk-touching op reuses the PR 3 crash-atomicity protocol —
write into a ``*.tmp-<pid>`` directory, ``os.replace`` into place,
commit by atomically rewriting ``registry.json``; per-file SHA-256
checksums are verified on reopen.  A crash at *any* injectable step
(``chaos`` ``compact.crash``) leaves either the inputs or the output
registered, never neither.

Backpressure: :class:`IngestQueue` bounds the capture→store path by
record count; a refused batch is charged to the capture engine's
:class:`~repro.capture.engine.CaptureStats` via
``account_backpressure`` — never silently dropped.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.faults import CompactorCrashError, FaultKind
from repro.datastore import schema as schemas
from repro.datastore.persistence import PersistenceError, _sha256
from repro.datastore.segments import Segment
from repro.datastore.stats import ColumnStats, SegmentStats, \
    merge_column_stats
from repro.datastore.store import DataStore, ShardedDataStore, StoredRecord
from repro.netsim.packets import _STRING_FIELDS, NUMERIC_FIELDS, \
    DictColumn, PacketColumns, u32_to_ip

COLD_FORMAT_VERSION = 1
REGISTRY_NAME = "registry.json"
SEGMENT_MANIFEST = "manifest.json"
STATS_NAME = "stats.json"


def _counter_value(counter) -> int:
    """Next value an ``itertools.count`` will yield, without consuming
    it (the counter's pickle form carries it)."""
    return counter.__reduce__()[1][0]


# -- policy ------------------------------------------------------------------


@dataclass(frozen=True)
class TierPolicy:
    """Knobs for the tier ladder.

    ``memtable_records`` bounds the hot tier (the seal size);
    ``seal_age_s`` additionally seals a non-full memtable once it has
    been open that long on the store's clock.  ``warm_fanin`` warm
    segments merge into one; more than ``warm_max_segments`` warm
    segments spill the oldest to disk (when a spill dir is
    configured); ``cold_fanin`` cold segments merge into one.
    """

    memtable_records: int = 4096
    seal_age_s: Optional[float] = None
    warm_fanin: int = 4
    warm_max_segments: int = 8
    cold_fanin: int = 4

    def __post_init__(self):
        if self.memtable_records <= 0:
            raise ValueError("memtable_records must be positive")
        if self.seal_age_s is not None and self.seal_age_s <= 0:
            raise ValueError("seal_age_s must be positive (or None)")
        if self.warm_fanin < 2:
            raise ValueError("warm_fanin must be at least 2")
        if self.warm_max_segments < 1:
            raise ValueError("warm_max_segments must be at least 1")
        if self.cold_fanin < 2:
            raise ValueError("cold_fanin must be at least 2")


# -- cold format helpers -----------------------------------------------------


def _narrow(arr: np.ndarray) -> np.ndarray:
    """Smallest unsigned dtype holding the column exactly.

    Numpy's comparison promotion keeps equality semantics identical to
    the float64 original (an int-valued probe compares exactly either
    way), so narrowing only changes bytes on disk, never answers.
    Non-integral or negative data falls back to float64.
    """
    data = np.asarray(arr)
    if data.size == 0:
        return data.astype(np.uint8)
    if data.dtype.kind == "u":
        top = int(data.max())
    elif data.dtype.kind in "if":
        data = data.astype(np.float64)
        if not (np.all(np.isfinite(data)) and np.all(data >= 0)
                and np.all(data == np.floor(data))):
            return data
        top = int(data.max())
    else:
        return data
    for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if top <= np.iinfo(dtype).max:
            return data.astype(dtype)
    return np.asarray(arr, dtype=np.float64)


def _write_blob(target: Path, stem: str, chunks: List[bytes]) -> None:
    """Variable-length rows as one byte file plus an offsets array."""
    offsets = np.zeros(len(chunks) + 1, dtype=np.uint64)
    with (target / f"{stem}.bin").open("wb") as fh:
        at = 0
        for index, chunk in enumerate(chunks):
            fh.write(chunk)
            at += len(chunk)
            offsets[index + 1] = at
    np.save(target / f"{stem}.off.npy", offsets)


class _BlobColumn:
    """Read side of :func:`_write_blob`: ``[]`` returns row bytes."""

    __slots__ = ("_data", "_offsets")

    def __init__(self, path: Path, offsets: np.ndarray):
        self._offsets = offsets
        self._data = np.memmap(path, dtype=np.uint8, mode="r") \
            if path.stat().st_size else np.zeros(0, dtype=np.uint8)

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [self[i] for i in range(*key.indices(len(self)))]
        position = int(key)
        if position < 0:
            position += len(self)
        lo = int(self._offsets[position])
        hi = int(self._offsets[position + 1])
        return bytes(self._data[lo:hi])

    def __iter__(self):
        for position in range(len(self)):
            yield self[position]


def _meta_bytes(stored: StoredRecord) -> bytes:
    return json.dumps({"t": stored.tags, "l": stored.label},
                      separators=(",", ":"), sort_keys=True).encode()


def _stats_to_json(stats: SegmentStats) -> Dict:
    """Stats block → JSON.  counts/topk serialize as [key, count]
    pairs (JSON object keys would stringify the int/float keys and the
    reconstructed sketches would probe the wrong slots)."""
    columns = {}
    for fld, c in stats.columns.items():
        entry: Dict[str, object] = {
            "n": c.n, "ndv": c.ndv, "ip_canonical": c.ip_canonical,
            "topk": [[key, count] for key, count in c.topk],
            "hll": {"p": c.hll.p, "registers": c.hll._registers.tolist()},
        }
        if c.counts is not None:
            entry["counts"] = [[key, count]
                               for key, count in c.counts.items()]
        if c.cms is not None:
            entry["cms"] = {"width": c.cms.width, "depth": c.cms.depth,
                            "total": c.cms.total,
                            "table": c.cms._table.tolist()}
        columns[fld] = entry
    return {"n": stats.n, "columns": columns}


def _stats_from_json(payload: Dict) -> SegmentStats:
    """Rebuild a stats block written by :func:`_stats_to_json`.

    Blooms are dropped on purpose (per-segment sizing does not
    serialize compactly); a missing Bloom only means less pruning,
    never a wrong answer.  Hashing is process-independent (blake2b),
    so the restored CMS/HLL probe identically.
    """
    from repro.deploy.sketches import CountMinSketch, HyperLogLog
    columns: Dict[str, ColumnStats] = {}
    for fld, entry in payload["columns"].items():
        hll = HyperLogLog(p=entry["hll"]["p"])
        hll._registers = np.asarray(entry["hll"]["registers"],
                                    dtype=np.int8)
        counts = None
        if "counts" in entry:
            counts = {key: count for key, count in entry["counts"]}
        cms = None
        if "cms" in entry:
            spec = entry["cms"]
            cms = CountMinSketch(width=spec["width"], depth=spec["depth"])
            cms._table = np.asarray(spec["table"], dtype=np.int64)
            cms.total = spec["total"]
        columns[fld] = ColumnStats(
            field_name=fld, n=entry["n"], ndv=entry["ndv"], counts=counts,
            cms=cms, bloom=None, hll=hll,
            topk=[(key, count) for key, count in entry["topk"]],
            ip_canonical=entry["ip_canonical"])
    return SegmentStats(n=payload["n"], columns=columns)


def _write_cold_files(target: Path, segment_id: int, cols: PacketColumns,
                      rids: np.ndarray, metas: List[bytes]) -> Dict:
    """Write one cold segment's data files; returns the manifest body.

    Rows must already be ``(time, rid)``-sorted — the manifest records
    ``time_sorted`` so readers skip the ordering scan.
    """
    n = len(rids)
    encodings: Dict[str, Dict] = {}
    minmax: Dict[str, List[float]] = {}
    for fld in NUMERIC_FIELDS:
        arr = np.asarray(getattr(cols, fld), dtype=np.float64)
        data = arr if fld == "timestamp" else _narrow(arr)
        np.save(target / f"{fld}.npy", data)
        encodings[fld] = {"kind": "numeric", "file": f"{fld}.npy"}
        if n:
            minmax[fld] = [float(arr.min()), float(arr.max())]
    for fld in ("src_ip", "dst_ip"):
        column = getattr(cols, fld)
        if isinstance(column, DictColumn):
            np.save(target / f"{fld}.codes.npy",
                    _narrow(np.asarray(column.codes)))
            encodings[fld] = {"kind": "dict", "file": f"{fld}.codes.npy",
                              "values": list(column.values)}
        else:
            arr = np.asarray(column, dtype=np.uint32)
            np.save(target / f"{fld}.npy", arr)
            encodings[fld] = {"kind": "u32", "file": f"{fld}.npy"}
            if n:
                minmax[fld] = [float(arr.min()), float(arr.max())]
    for fld in _STRING_FIELDS:
        column = getattr(cols, fld)
        np.save(target / f"{fld}.codes.npy",
                _narrow(np.asarray(column.codes)))
        encodings[fld] = {"kind": "dict", "file": f"{fld}.codes.npy",
                          "values": list(column.values)}
    _write_blob(target, "payload", [bytes(p) for p in cols.payload])
    _write_blob(target, "meta", metas)
    np.save(target / "rids.npy", np.asarray(rids, dtype=np.uint64))
    ts = np.asarray(cols.timestamp, dtype=np.float64)
    return {
        "format_version": COLD_FORMAT_VERSION,
        "segment_id": segment_id,
        "n": n,
        "min_time": float(ts[0]) if n else None,
        "max_time": float(ts[-1]) if n else None,
        "max_rid": int(rids.max()) if n else 0,
        "encodings": encodings,
        "minmax": minmax,
    }


def _finish_manifest(target: Path, manifest: Dict) -> None:
    """Checksum every data file and commit the per-segment manifest."""
    files = sorted(p.name for p in target.iterdir())
    manifest["bytes"] = int(sum((target / f).stat().st_size
                               for f in files))
    manifest["checksums"] = {name: _sha256(target / name)
                             for name in files}
    (target / SEGMENT_MANIFEST).write_text(json.dumps(manifest, indent=2))


def _sorted_cold_rows(segment) \
        -> Tuple[PacketColumns, np.ndarray, List[bytes]]:
    """(columns, rids, meta rows) of one warm segment in (time, rid)
    order (a no-op reorder for a properly sealed segment)."""
    cols = segment.columns()
    if cols is None:
        cols = PacketColumns.from_records(
            [s.record for s in segment.records])
    records = segment.records
    rids = np.fromiter((s.rid for s in records), dtype=np.uint64,
                       count=len(records))
    metas = [_meta_bytes(s) for s in records]
    ts = np.asarray(cols.timestamp, dtype=np.float64)
    order = np.lexsort((rids, ts))
    if not np.array_equal(order, np.arange(len(order))):
        cols = cols.take(order)
        rids = rids[order]
        metas = [metas[i] for i in order.tolist()]
    return cols, rids, metas


# -- cold read side ----------------------------------------------------------


class _ColdRecords:
    """A cold segment's ``records`` facade: length, truthiness, and
    on-demand :class:`StoredRecord` materialization — every accessor
    the executors use, without a list of objects in RAM."""

    __slots__ = ("_segment",)

    def __init__(self, segment: "ColdSegment"):
        self._segment = segment

    def __len__(self) -> int:
        return len(self._segment)

    def __bool__(self) -> bool:
        return len(self._segment) > 0

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [self[i] for i in range(*key.indices(len(self)))]
        segment = self._segment
        position = int(key)
        if position < 0:
            position += len(segment)
        meta = json.loads(segment.meta_blob[position])
        return StoredRecord(rid=int(segment.rids[position]),
                            record=segment.columns().record(position),
                            tags=meta["t"] or {}, label=meta["l"])

    def __iter__(self):
        for position in range(len(self)):
            yield self[position]


class ColdSegment:
    """A sealed, immutable, on-disk segment opened via ``mmap``.

    Satisfies the same SegmentSource duck type as
    :class:`~repro.datastore.segments.Segment`: the planner prunes it
    from the manifest's time span and the deserialized stats block
    without faulting a single data page, and the vectorized scan path
    streams only the pages its masks touch.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        manifest_path = self.directory / SEGMENT_MANIFEST
        if not manifest_path.exists():
            raise PersistenceError(f"no {SEGMENT_MANIFEST} in {directory}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format_version") != COLD_FORMAT_VERSION:
            raise PersistenceError(
                f"unsupported cold format {manifest.get('format_version')}")
        self.manifest = manifest
        self.schema = schemas.SCHEMAS["packets"]
        self.segment_id = int(manifest["segment_id"])
        self.sealed = True
        self.n = int(manifest["n"])
        self.capacity = max(self.n, 1)
        self.bytes_estimate = int(manifest["bytes"])
        self._cols: Optional[PacketColumns] = None
        self._rids = None
        self._meta = None
        self._records: Optional[_ColdRecords] = None
        self._stats: Optional[SegmentStats] = None
        self._stats_loaded = False

    # -- integrity ----------------------------------------------------------

    def verify_checksums(self) -> None:
        """SHA-256 every data file against the manifest (reopen path)."""
        for name, expected in self.manifest["checksums"].items():
            path = self.directory / name
            if not path.exists():
                raise PersistenceError(
                    f"cold segment {self.segment_id} is missing {name}")
            actual = _sha256(path)
            if actual != expected:
                raise PersistenceError(
                    f"checksum mismatch in cold segment {self.segment_id} "
                    f"file {name} (expected {expected[:12]}…, got "
                    f"{actual[:12]}…)")

    # -- SegmentSource surface ----------------------------------------------

    def _load(self, name: str) -> np.ndarray:
        return np.load(self.directory / name, mmap_mode="r")

    @property
    def rids(self) -> np.ndarray:
        if self._rids is None:
            self._rids = self._load("rids.npy")
        return self._rids

    @property
    def meta_blob(self) -> _BlobColumn:
        if self._meta is None:
            self._meta = _BlobColumn(self.directory / "meta.bin",
                                     self._load("meta.off.npy"))
        return self._meta

    @property
    def records(self) -> _ColdRecords:
        if self._records is None:
            self._records = _ColdRecords(self)
        return self._records

    def columns(self) -> PacketColumns:
        if self._cols is None:
            kw: Dict[str, object] = {}
            for fld, encoding in self.manifest["encodings"].items():
                if encoding["kind"] == "dict":
                    kw[fld] = DictColumn(self._load(encoding["file"]),
                                         list(encoding["values"]))
                else:
                    kw[fld] = self._load(encoding["file"])
            kw["payload"] = _BlobColumn(self.directory / "payload.bin",
                                        self._load("payload.off.npy"))
            cols = PacketColumns(**kw)
            cols._time_sorted = True     # rows are written (time, rid)-sorted
            for fld, bounds in self.manifest["minmax"].items():
                cols._minmax[fld] = (bounds[0], bounds[1])
            self._cols = cols
        return self._cols

    def stats(self) -> Optional[SegmentStats]:
        if not self._stats_loaded:
            self._stats_loaded = True
            path = self.directory / STATS_NAME
            if path.exists():
                self._stats = _stats_from_json(json.loads(path.read_text()))
        return self._stats

    def build_stats(self) -> SegmentStats:
        self._stats = SegmentStats.build(self)
        self._stats_loaded = True
        return self._stats

    def adopt_columns(self, columns) -> bool:
        return False                      # immutable: nothing to adopt

    def invalidate_indexes(self) -> None:
        self._records = None              # cold data itself cannot change

    @property
    def full(self) -> bool:
        return True

    @property
    def min_time(self) -> Optional[float]:
        return self.manifest["min_time"]

    @property
    def max_time(self) -> Optional[float]:
        return self.manifest["max_time"]

    def overlaps(self, start: Optional[float], end: Optional[float]) -> bool:
        lo, hi = self.min_time, self.max_time
        if lo is None:
            return False
        if start is not None and hi < start:
            return False
        if end is not None and lo > end:
            return False
        return True

    def append(self, stored) -> int:
        raise RuntimeError(f"cold segment {self.segment_id} is immutable")

    def append_batch(self, batch) -> None:
        raise RuntimeError(f"cold segment {self.segment_id} is immutable")

    def __len__(self) -> int:
        return self.n


# -- cold merge helpers ------------------------------------------------------


def _concat_dict(columns: List[DictColumn]) -> DictColumn:
    """Union the value tables, remap codes, concatenate."""
    code_of: Dict[str, int] = {}
    parts = []
    for column in columns:
        remap = np.asarray([code_of.setdefault(v, len(code_of))
                            for v in column.values], dtype=np.int64)
        parts.append(remap[np.asarray(column.codes, dtype=np.int64)])
    codes = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
    return DictColumn(codes, list(code_of))


def _concat_ip(columns: List) -> object:
    """uint32 concat when every part is uint32; dictionary otherwise."""
    if not any(isinstance(c, DictColumn) for c in columns):
        return np.concatenate([np.asarray(c, dtype=np.uint32)
                               for c in columns])
    dicts = []
    for column in columns:
        if isinstance(column, DictColumn):
            dicts.append(column)
        else:
            dicts.append(DictColumn.encode(
                [u32_to_ip(int(v)) for v in column]))
    return _concat_dict(dicts)


def _merge_cold_rows(inputs: List[ColdSegment]) \
        -> Tuple[PacketColumns, np.ndarray, List[bytes]]:
    """All input rows merged into global (time, rid) order."""
    all_cols = [segment.columns() for segment in inputs]
    ts = np.concatenate([np.asarray(c.timestamp, dtype=np.float64)
                         for c in all_cols])
    rids = np.concatenate([np.asarray(segment.rids, dtype=np.uint64)
                           for segment in inputs])
    order = np.lexsort((rids, ts))
    kw: Dict[str, object] = {}
    for fld in NUMERIC_FIELDS:
        kw[fld] = np.concatenate(
            [np.asarray(getattr(c, fld), dtype=np.float64)
             for c in all_cols])[order]
    for fld in ("src_ip", "dst_ip"):
        merged = _concat_ip([getattr(c, fld) for c in all_cols])
        kw[fld] = merged.take(order) if isinstance(merged, DictColumn) \
            else merged[order]
    for fld in _STRING_FIELDS:
        kw[fld] = _concat_dict(
            [getattr(c, fld) for c in all_cols]).take(order)
    payloads: List[bytes] = []
    metas: List[bytes] = []
    for segment, cols in zip(inputs, all_cols):
        payloads.extend(cols.payload)
        metas.extend(segment.meta_blob)
    positions = order.tolist()
    kw["payload"] = [payloads[i] for i in positions]
    return PacketColumns(**kw), rids[order], [metas[i] for i in positions]


def _merged_stats(inputs: List) -> Optional[SegmentStats]:
    """Compaction-granularity stats merge, or None when any input
    lacks a block (caller decides whether to rebuild)."""
    parts = [segment.stats() for segment in inputs]
    if any(part is None for part in parts):
        return None
    fields = set(parts[0].columns)
    for part in parts[1:]:
        fields &= set(part.columns)
    columns = {fld: merge_column_stats([part.columns[fld]
                                        for part in parts])
               for fld in sorted(fields)}
    return SegmentStats(n=sum(part.n for part in parts), columns=columns)


# -- ingest queue ------------------------------------------------------------


class IngestQueue:
    """Bounded batch queue between the capture engine and the store.

    ``offer`` rejects a whole batch when accepting it would exceed the
    record capacity (or when an armed ``ingest.queue_stall`` chaos
    fault fires); the caller is responsible for accounting the
    rejection — see :class:`StreamingIngestor`.
    """

    def __init__(self, capacity_records: int = 65_536, fault_injector=None,
                 obs=None):
        if capacity_records <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_records = capacity_records
        self.fault_injector = fault_injector
        self._batches: Deque[List] = deque()
        self.depth = 0
        self.offered_batches = 0
        self.accepted_records = 0
        self.rejected_records = 0
        self.rejected_batches = 0
        self.obs = obs
        if obs is not None:
            self._g_depth = obs.metrics.gauge("repro_ingest_queue_depth")
            self._m_rejected = obs.metrics.counter(
                "repro_ingest_queue_rejected_records_total")

    def offer(self, packets) -> bool:
        """Enqueue one captured batch; False = refused (backpressure).

        Accepts a record list or a :class:`~repro.netsim.packets.
        PacketColumns` batch; columnar batches stay columnar end to end
        (no per-record copy here, and the store ingests the columns
        directly when the queue drains).
        """
        if not len(packets):
            return True
        self.offered_batches += 1
        injector = self.fault_injector
        stalled = injector is not None and injector.should_fire(
            FaultKind.QUEUE_STALL, batch=len(packets))
        if stalled or self.depth + len(packets) > self.capacity_records:
            self.rejected_records += len(packets)
            self.rejected_batches += 1
            if self.obs is not None:
                self._m_rejected.inc(len(packets))
            return False
        self._batches.append(packets if isinstance(packets, PacketColumns)
                             else list(packets))
        self.depth += len(packets)
        self.accepted_records += len(packets)
        if self.obs is not None:
            self._g_depth.set(self.depth)
        return True

    def take(self) -> Optional[List]:
        """Dequeue the oldest batch, or None when drained."""
        if not self._batches:
            return None
        batch = self._batches.popleft()
        self.depth -= len(batch)
        if self.obs is not None:
            self._g_depth.set(self.depth)
        return batch

    def __len__(self) -> int:
        return self.depth


class StreamingIngestor:
    """capture → bounded queue → store, with accounted backpressure.

    Subscribe an instance to a :class:`~repro.capture.engine.
    CaptureEngine` (done automatically when ``engine`` is given): each
    captured batch is offered to the queue; refused batches are
    charged back to the engine's stats.  :meth:`pump` moves queued
    batches into the store; :meth:`drain` empties the queue and runs
    the compactor until debt-free.
    """

    def __init__(self, store, engine=None, queue: Optional[IngestQueue]
                 = None, queue_records: int = 65_536, obs=None):
        self.store = store
        self.engine = engine
        self.queue = queue if queue is not None else IngestQueue(
            queue_records,
            fault_injector=getattr(store, "fault_injector", None),
            obs=obs if obs is not None else getattr(store, "obs", None))
        self.ingested_records = 0
        if engine is not None:
            engine.subscribe(self)

    def __call__(self, packets: List) -> None:
        if not self.queue.offer(packets) and self.engine is not None:
            self.engine.account_backpressure(packets)

    def pump(self, max_batches: Optional[int] = None) -> int:
        """Move up to ``max_batches`` queued batches into the store."""
        moved = 0
        while max_batches is None or moved < max_batches:
            batch = self.queue.take()
            if batch is None:
                break
            self.ingested_records += self.store.ingest_packets(batch)
            moved += 1
        return moved

    def drain(self, compact: bool = True) -> int:
        moved = self.pump()
        compactor = getattr(self.store, "compactor", None)
        if compact and compactor is not None:
            # run() is bounded per call; a long day can owe more than
            # one round's worth, and drain promises debt-free.
            while compactor.run():
                pass
        return moved


# -- compactor ---------------------------------------------------------------


class Compactor:
    """Stepped background compaction for one :class:`TieredDataStore`.

    Threadless and deterministic: :meth:`debt` lists the ops the
    policy currently owes, :meth:`step` executes exactly one, and the
    segment list only changes *between* steps — which is what lets the
    equivalence suite interleave queries with a live compaction and
    still demand bit-identical answers.
    """

    def __init__(self, store: "TieredDataStore"):
        self.store = store
        self.completed: Dict[str, int] = {}

    def _chaos_step(self, step: str) -> None:
        injector = self.store.fault_injector
        if injector is not None and injector.should_fire(
                FaultKind.COMPACT_CRASH, step=step):
            raise CompactorCrashError(
                f"injected compactor crash at {step}")

    def debt(self) -> List[Tuple[str, List]]:
        """Owed ops, most urgent first: merge warm runs, spill the
        oldest warm segment past the cap, merge small cold segments."""
        store = self.store
        policy = store.policy
        _, warm, cold = store.tier_segments()
        ops: List[Tuple[str, List]] = []
        if len(warm) >= policy.warm_fanin:
            ops.append(("warm-merge", warm[:policy.warm_fanin]))
        if store.spill_dir is not None \
                and len(warm) > policy.warm_max_segments:
            ops.append(("spill", [warm[0]]))
        if store.spill_dir is not None and len(cold) >= policy.cold_fanin:
            ops.append(("cold-merge", cold[:policy.cold_fanin]))
        return ops

    def step(self) -> Optional[str]:
        """Execute the most urgent owed op; None when debt-free."""
        ops = self.debt()
        if not ops:
            return None
        kind, inputs = ops[0]
        obs = self.store.obs
        if obs is None:
            self._dispatch(kind, inputs)
        else:
            with obs.span("store.tiers.compact", op=kind,
                          inputs=len(inputs)):
                self._dispatch(kind, inputs)
        self.completed[kind] = self.completed.get(kind, 0) + 1
        self.store._update_tier_gauges()
        return kind

    def run(self, max_steps: int = 64) -> List[str]:
        """Step until debt-free (or ``max_steps``); returns op kinds."""
        done: List[str] = []
        while len(done) < max_steps:
            kind = self.step()
            if kind is None:
                break
            done.append(kind)
        return done

    def _dispatch(self, kind: str, inputs: List) -> None:
        if kind == "warm-merge":
            self._warm_merge(inputs)
        elif kind == "spill":
            self._spill(inputs[0])
        else:
            self._cold_merge(inputs)

    def _splice(self, inputs: List, replacement) -> None:
        """Replace ``inputs`` with ``replacement`` at the first input's
        position — one assignment, so queries between steps never see
        a half-applied compaction."""
        segments = self.store._segments["packets"]
        drop = {id(segment) for segment in inputs[1:]}
        first = inputs[0]
        segments[:] = [
            replacement if segment is first else segment
            for segment in segments if id(segment) not in drop
        ]

    # -- ops ----------------------------------------------------------------

    def _warm_merge(self, inputs: List[Segment]) -> None:
        """Merge small warm runs into one sorted warm segment (RAM
        only — crash-safe because nothing is published until the final
        list splice)."""
        self._chaos_step("warm-merge:plan")
        store = self.store
        rows: List[Tuple[float, int, StoredRecord]] = []
        for segment in inputs:
            time_of = segment.schema.time_of
            rows.extend((time_of(stored.record), stored.rid, stored)
                        for stored in segment.records)
        rows.sort(key=lambda row: (row[0], row[1]))
        merged = Segment(schemas.SCHEMAS["packets"],
                         next(store._segment_ids),
                         capacity=max(len(rows), 1))
        merged.append_batch([stored for _, _, stored in rows])
        stats = _merged_stats(inputs)
        merged.seal(build_stats=stats is None and store.stats_on_seal)
        if stats is not None:
            merged.adopt_stats(stats)
        self._chaos_step("warm-merge:apply")
        self._splice(inputs, merged)

    def _spill(self, segment: Segment) -> None:
        """Age one warm segment into the cold on-disk format.

        Crash-atomic: data lands in a tmp dir, ``os.replace`` promotes
        it, and the registry rewrite is the commit point — a crash at
        any step leaves the warm segment authoritative (plus debris
        the next attempt or reopen clears).
        """
        store = self.store
        self._chaos_step("spill:plan")
        name = f"seg-{segment.segment_id:08d}"
        target = store.spill_dir / name
        tmp = store.spill_dir / f"{name}.tmp-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        self._chaos_step("spill:write:columns")
        cols, rids, metas = _sorted_cold_rows(segment)
        manifest = _write_cold_files(tmp, segment.segment_id, cols, rids,
                                     metas)
        self._chaos_step("spill:write:stats")
        stats = segment.stats()
        if stats is None:
            stats = segment.build_stats()
        (tmp / STATS_NAME).write_text(json.dumps(_stats_to_json(stats)))
        self._chaos_step("spill:write:manifest")
        _finish_manifest(tmp, manifest)
        self._chaos_step("spill:swap")
        if target.exists():
            shutil.rmtree(target)   # unregistered leftover of a past crash
        os.replace(tmp, target)
        self._chaos_step("spill:registry")
        _, _, cold = store.tier_segments()
        store._write_registry([c.directory.name for c in cold] + [name])
        self._chaos_step("spill:apply")
        self._splice([segment], ColdSegment(target))

    def _cold_merge(self, inputs: List[ColdSegment]) -> None:
        """Merge small cold segments into one larger one.

        Same commit protocol as :meth:`_spill`; the registry rewrite
        atomically swaps the inputs for the output, so every crash
        window leaves either set fully registered.  Input directories
        are deleted only after the in-memory splice; stragglers are
        orphans the next reopen clears.
        """
        store = self.store
        self._chaos_step("cold-merge:plan")
        segment_id = next(store._segment_ids)
        name = f"seg-{segment_id:08d}"
        target = store.spill_dir / name
        tmp = store.spill_dir / f"{name}.tmp-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        self._chaos_step("cold-merge:write:columns")
        cols, rids, metas = _merge_cold_rows(inputs)
        manifest = _write_cold_files(tmp, segment_id, cols, rids, metas)
        self._chaos_step("cold-merge:write:stats")
        stats = _merged_stats(inputs)
        if stats is not None:
            (tmp / STATS_NAME).write_text(
                json.dumps(_stats_to_json(stats)))
        self._chaos_step("cold-merge:write:manifest")
        _finish_manifest(tmp, manifest)
        self._chaos_step("cold-merge:swap")
        if target.exists():
            shutil.rmtree(target)
        os.replace(tmp, target)
        self._chaos_step("cold-merge:registry")
        merged_ids = {id(segment) for segment in inputs}
        _, _, cold = store.tier_segments()
        dirs: List[str] = []
        for segment in cold:
            if segment is inputs[0]:
                dirs.append(name)
            elif id(segment) not in merged_ids:
                dirs.append(segment.directory.name)
        store._write_registry(dirs)
        self._chaos_step("cold-merge:apply")
        self._splice(inputs, ColdSegment(target))
        self._chaos_step("cold-merge:cleanup")
        for segment in inputs:
            shutil.rmtree(segment.directory, ignore_errors=True)


# -- the tiered store --------------------------------------------------------


class TieredDataStore(DataStore):
    """A :class:`DataStore` whose packet collection lives on the tier
    ladder.  Flows and logs keep the flat behaviour (low volume).

    With a ``spill_dir`` the store resumes from an existing
    ``registry.json`` on construction: cold segments are reopened with
    verified checksums, id counters continue past the registry's
    watermarks, and debris from crashed compactions is cleared.
    """

    def __init__(self, metadata_extractor=None,
                 policy: Optional[TierPolicy] = None, spill_dir=None,
                 fault_injector=None, clock=None, obs=None,
                 stats_on_seal: bool = False):
        self.policy = policy if policy is not None else TierPolicy()
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._memtable_opened_at: Optional[float] = None
        self.resume_next_ids: Optional[Tuple[int, int]] = None
        super().__init__(metadata_extractor=metadata_extractor,
                         segment_capacity=self.policy.memtable_records,
                         fault_injector=fault_injector, clock=clock,
                         obs=obs, stats_on_seal=stats_on_seal)
        self.compactor = Compactor(self)
        if self.spill_dir is not None:
            self._resume_from_disk()

    # -- tiers --------------------------------------------------------------

    def tier_segments(self) -> Tuple[List, List, List]:
        """(hot, warm, cold) views of the packet segment list."""
        hot: List = []
        warm: List = []
        cold: List = []
        for segment in self._segments["packets"]:
            if isinstance(segment, ColdSegment):
                cold.append(segment)
            elif segment.sealed:
                warm.append(segment)
            else:
                hot.append(segment)
        return hot, warm, cold

    def tier_summary(self) -> Dict[str, Dict]:
        hot, warm, cold = self.tier_segments()
        out = {
            tier: {"segments": len(group),
                   "records": sum(len(s) for s in group),
                   "bytes": sum(s.bytes_estimate for s in group)}
            for tier, group in (("hot", hot), ("warm", warm),
                                ("cold", cold))
        }
        out["compaction_debt"] = len(self.compactor.debt())
        return out

    # -- sealing ------------------------------------------------------------

    def _memtable_aged(self) -> bool:
        age = self.policy.seal_age_s
        return (age is not None and self._memtable_opened_at is not None
                and self.clock.now() - self._memtable_opened_at >= age)

    def _open_segment(self, collection: str) -> Segment:
        if collection != "packets":
            return super()._open_segment(collection)
        segments = self._segments["packets"]
        tail = segments[-1] if segments else None
        if isinstance(tail, Segment) and not tail.sealed:
            if not tail.full and not self._memtable_aged():
                return tail
            self.seal_hot()
        segment = Segment(schemas.SCHEMAS["packets"],
                          next(self._segment_ids),
                          capacity=self.policy.memtable_records)
        segments.append(segment)
        self._memtable_opened_at = self.clock.now()
        return segment

    def seal_hot(self) -> Optional[Segment]:
        """Seal the memtable into a ``(time, rid)``-sorted warm segment.

        Within a memtable rids increase with append position, so a
        stable argsort on timestamp alone *is* the (time, rid) order.
        The sorted replacement is swapped in with one list assignment.
        """
        segments = self._segments["packets"]
        if not segments:
            return None
        memtable = segments[-1]
        if not isinstance(memtable, Segment) or memtable.sealed \
                or not memtable.records:
            return None
        cols = memtable.columns()
        n = len(memtable.records)
        sealed = Segment(memtable.schema, memtable.segment_id,
                         capacity=max(n, 1))
        if cols is not None:
            order = np.argsort(np.asarray(cols.timestamp), kind="stable")
            sealed.append_batch(
                [memtable.records[i] for i in order.tolist()])
            sealed.adopt_columns(cols.take(order))
        else:
            time_of = memtable.schema.time_of
            ordered = sorted(memtable.records,
                             key=lambda s: (time_of(s.record), s.rid))
            sealed.append_batch(ordered)
        sealed.seal(build_stats=self.stats_on_seal)
        segments[-1] = sealed
        self._memtable_opened_at = None
        if self.obs is not None:
            self._m_seals.inc()
        self._update_tier_gauges()
        return sealed

    def maybe_seal(self) -> bool:
        """Seal a full or aged memtable without waiting for ingest."""
        segments = self._segments["packets"]
        tail = segments[-1] if segments else None
        if isinstance(tail, Segment) and not tail.sealed and tail.records \
                and (tail.full or self._memtable_aged()):
            return self.seal_hot() is not None
        return False

    # -- queries ------------------------------------------------------------

    def query(self, query):
        """Tiered queries always go through the deterministic
        ``(time, rid)`` merge: segment regrouping by compaction then
        cannot perturb tie order, so answers stay bit-identical to a
        flat store fed the same batches."""
        from repro.datastore.planner import execute_plan_sharded, plan_query
        obs = self.obs
        if obs is None:
            return execute_plan_sharded(self, plan_query(self, query))
        with obs.span("store.query", collection=query.collection) as span:
            records = execute_plan_sharded(self, plan_query(self, query),
                                           obs=obs)
            span.set(rows=len(records))
        return records

    # -- persistence --------------------------------------------------------

    def _write_registry(self, dirs: List[str]) -> None:
        """Atomically commit the cold-tier membership (the commit point
        of every disk-touching compaction op)."""
        if self.spill_dir is None:
            return
        payload = {
            "format_version": COLD_FORMAT_VERSION,
            "segments": list(dirs),
            "next_segment_id": _counter_value(self._segment_ids),
            "next_record_id": _counter_value(self._record_ids),
        }
        tmp = self.spill_dir / f"{REGISTRY_NAME}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, self.spill_dir / REGISTRY_NAME)

    def _resume_from_disk(self) -> None:
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        registry_path = self.spill_dir / REGISTRY_NAME
        registered: List[str] = []
        payload = None
        if registry_path.exists():
            payload = json.loads(registry_path.read_text())
            if payload.get("format_version") != COLD_FORMAT_VERSION:
                raise PersistenceError(
                    "unsupported registry format "
                    f"{payload.get('format_version')}")
            registered = list(payload["segments"])
        keep = set(registered)
        for entry in sorted(self.spill_dir.iterdir()):
            if entry.name == REGISTRY_NAME:
                continue
            if entry.is_dir() and entry.name not in keep:
                shutil.rmtree(entry)          # crashed-compaction debris
            elif entry.is_file():
                entry.unlink()                # torn registry tmp file
        if payload is None:
            return
        cold: List[ColdSegment] = []
        for name in registered:
            segment = ColdSegment(self.spill_dir / name)
            segment.verify_checksums()
            cold.append(segment)
        self._segments["packets"][:0] = cold
        self._segment_ids = itertools.count(int(payload["next_segment_id"]))
        self._record_ids = itertools.count(int(payload["next_record_id"]))
        self.resume_next_ids = (int(payload["next_segment_id"]),
                                int(payload["next_record_id"]))
        self._update_tier_gauges()

    def flush_to_cold(self) -> int:
        """Seal the memtable and spill every warm segment to disk (the
        shutdown path: a reopened store then holds every record)."""
        if self.spill_dir is None:
            raise ValueError("flush_to_cold requires a spill_dir")
        self.seal_hot()
        flushed = 0
        while True:
            _, warm, _ = self.tier_segments()
            if not warm:
                break
            self.compactor._spill(warm[0])
            flushed += 1
        self._update_tier_gauges()
        return flushed

    # -- retention ----------------------------------------------------------

    def evict_segment(self, collection: str, segment) -> None:
        if not isinstance(segment, ColdSegment):
            super().evict_segment(collection, segment)
            return
        segments = self._segments["packets"]
        segments.remove(segment)
        _, _, cold = self.tier_segments()
        self._write_registry([c.directory.name for c in cold])
        shutil.rmtree(segment.directory, ignore_errors=True)
        self._update_tier_gauges()

    # -- obs ----------------------------------------------------------------

    def bind_obs(self, obs) -> None:
        super().bind_obs(obs)
        tiers = ("hot", "warm", "cold")
        self._m_tier_segments = {
            tier: obs.metrics.gauge("repro_tiers_segments", tier=tier)
            for tier in tiers}
        self._m_tier_bytes = {
            tier: obs.metrics.gauge("repro_tiers_bytes", tier=tier)
            for tier in tiers}
        self._m_debt = obs.metrics.gauge("repro_tiers_compaction_debt")
        self._m_seals = obs.metrics.counter("repro_tiers_seals_total")

    def _update_tier_gauges(self) -> None:
        if self.obs is None:
            return
        hot, warm, cold = self.tier_segments()
        for tier, group in (("hot", hot), ("warm", warm), ("cold", cold)):
            self._m_tier_segments[tier].set(len(group))
            self._m_tier_bytes[tier].set(
                sum(s.bytes_estimate for s in group))
        compactor = getattr(self, "compactor", None)
        if compactor is not None:
            self._m_debt.set(len(compactor.debt()))


# -- sharded tiering ---------------------------------------------------------


class _ShardedCompactor:
    """Facade over the per-shard compactors: same debt/step/run
    surface, stepping whichever shard owes work first."""

    def __init__(self, store: "TieredShardedDataStore"):
        self.store = store

    def debt(self) -> List[Tuple[str, List]]:
        return [op for shard in self.store.shards
                for op in shard.compactor.debt()]

    def step(self) -> Optional[str]:
        for shard in self.store.shards:
            kind = shard.compactor.step()
            if kind is not None:
                return kind
        return None

    def run(self, max_steps: int = 256) -> List[str]:
        done: List[str] = []
        while len(done) < max_steps:
            kind = self.step()
            if kind is None:
                break
            done.append(kind)
        return done


class TieredShardedDataStore(ShardedDataStore):
    """Time×flow-hash sharding where every shard is tiered.

    Each shard owns its own memtable, warm runs, compactor, and (under
    ``spill_dir``) a ``shard-<i>`` cold directory.  Rids still come
    from the parent's counter in input order, so the inherited
    ``(time, rid)`` sharded merge keeps answers bit-identical to a
    flat store regardless of per-shard compaction progress.
    """

    def __init__(self, n_shards: int, metadata_extractor=None,
                 fault_injector=None, clock=None, window_s: float = 5.0,
                 executor=None, obs=None, stats_on_seal: bool = False,
                 policy: Optional[TierPolicy] = None, spill_dir=None):
        self.policy = policy if policy is not None else TierPolicy()
        self.spill_root = Path(spill_dir) if spill_dir is not None else None
        super().__init__(n_shards, metadata_extractor=metadata_extractor,
                         segment_capacity=self.policy.memtable_records,
                         fault_injector=fault_injector, clock=clock,
                         window_s=window_s, executor=executor, obs=obs,
                         stats_on_seal=stats_on_seal)
        self.compactor = _ShardedCompactor(self)
        # Shards that resumed from disk had their id counters replaced
        # by the parent's shared ones; restart the shared counters past
        # every shard's registry watermark so ids never collide.
        floors = [shard.resume_next_ids for shard in self.shards
                  if shard.resume_next_ids is not None]
        if floors:
            segment_floor = max(max(f[0] for f in floors),
                                _counter_value(self._segment_ids))
            record_floor = max(max(f[1] for f in floors),
                               _counter_value(self._record_ids))
            self._segment_ids = itertools.count(segment_floor)
            self._record_ids = itertools.count(record_floor)
            for shard in self.shards:
                shard._segment_ids = self._segment_ids
                shard._record_ids = self._record_ids

    def _make_shard(self, index: int) -> TieredDataStore:
        spill = None if self.spill_root is None \
            else self.spill_root / f"shard-{index}"
        return TieredDataStore(metadata_extractor=None, policy=self.policy,
                               spill_dir=spill,
                               fault_injector=self.fault_injector,
                               clock=self.clock,
                               stats_on_seal=self.stats_on_seal)

    @property
    def spill_dir(self):
        return self.spill_root

    def tier_segments(self) -> Tuple[List, List, List]:
        hot: List = []
        warm: List = []
        cold: List = []
        for shard in self.shards:
            h, w, c = shard.tier_segments()
            hot.extend(h)
            warm.extend(w)
            cold.extend(c)
        return hot, warm, cold

    def tier_summary(self) -> Dict[str, Dict]:
        hot, warm, cold = self.tier_segments()
        out = {
            tier: {"segments": len(group),
                   "records": sum(len(s) for s in group),
                   "bytes": sum(s.bytes_estimate for s in group)}
            for tier, group in (("hot", hot), ("warm", warm),
                                ("cold", cold))
        }
        out["compaction_debt"] = len(self.compactor.debt())
        return out

    def seal_hot(self) -> int:
        return sum(1 for shard in self.shards
                   if shard.seal_hot() is not None)

    def maybe_seal(self) -> int:
        return sum(1 for shard in self.shards if shard.maybe_seal())

    def flush_to_cold(self) -> int:
        if self.spill_root is None:
            raise ValueError("flush_to_cold requires a spill_dir")
        return sum(shard.flush_to_cold() for shard in self.shards)

    def evict_segment(self, collection: str, segment) -> None:
        if not isinstance(segment, ColdSegment):
            super().evict_segment(collection, segment)
            return
        for shard in self.shards:
            if any(candidate is segment
                   for candidate in shard._segments["packets"]):
                shard.evict_segment(collection, segment)
                return
        raise ValueError("segment not held by any shard")
