"""Per-segment column statistics: the planner's cost-model fuel.

A :class:`SegmentStats` block summarizes one sealed segment per
sketchable column: exact distinct count at build time, an exact
value→count map while the column stays small, and the compact
sketches — count-min for per-value counts, Bloom for membership,
HyperLogLog for cross-segment distinct merging — once it does not.
The block is *lightweight by construction*: one ``np.unique`` (or
bincount over dictionary codes) per column, and hashing only over
distinct values, never rows.

The planner consumes stats three ways:

* **selectivity** — ``field == value`` match-fraction estimates order
  predicates cheapest-first;
* **membership** — a definite "value absent" prunes the whole segment
  before any column is touched (Bloom false positives only ever
  admit, so pruning stays exact);
* **sketch answers** — COUNT/DISTINCT/heavy-hitter aggregates are
  answered from the stats alone, with a composed error bound checked
  against the query's :class:`~repro.datastore.planner.ErrorBudget`.

Freshness is by row count, the same contract as the cached column
block: a stats object built over ``n`` records is ignored once the
segment grows past ``n``.  :func:`merge_column_stats` combines blocks
at compaction granularity — exact maps merge exactly, count-min
tables add, HLL registers take the register-wise max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.deploy.sketches import (
        BloomFilter,
        CountMinSketch,
        HyperLogLog,
    )
from repro.netsim.packets import (
    _STRING_FIELDS,
    NUMERIC_FIELDS,
    DictColumn,
    ip_to_u32,
    u32_to_ip,
)

#: packet columns the stats block summarizes (equality-filter targets;
#: range-shaped fields like size/timestamp are covered by zone maps).
SKETCHED_PACKET_FIELDS = (
    "src_ip", "dst_ip", "src_port", "dst_port", "protocol", "flow_id",
    "app", "direction", "label",
)

#: keep the exact value→count map while distinct values stay few;
#: beyond this the column degrades to count-min + Bloom summaries.
EXACT_COUNTS_MAX = 4096

#: exact top values retained per column (heavy-hitter candidates).
TOPK = 8

#: fixed count-min geometry, identical across segments so tables merge.
CMS_WIDTH = 1024
CMS_DEPTH = 3
CMS_EPS = math.e / CMS_WIDTH

#: fixed HLL precision; relative standard error = 1.04 / sqrt(2^p).
HLL_P = 12
#: two-sigma relative bound the DISTINCT budget check uses.
HLL_REL_BOUND = 2 * 1.04 / math.sqrt(1 << HLL_P)


def stat_key(value) -> Optional[Hashable]:
    """Canonical sketch key for a stored value or a filter value.

    Integral floats fold onto ints so a column's float64 ``443.0``
    and a query's ``443`` probe the same key.  Returns None for types
    the stats cannot reason about (bytes, tuples, ...): the caller
    must treat the column as unsummarized for that probe.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if math.isfinite(value) and value.is_integer():
            return int(value)
        return value
    if isinstance(value, str):
        return value
    return None


#: probe key for a value that provably matches nothing in a u32-backed
#: IP column (unparseable dotted-quad); real keys never contain NUL.
_NO_MATCH = "\x00no-match"


@dataclass
class ColumnStats:
    """Distinct/count summaries for one column of one segment."""

    field_name: str
    n: int
    ndv: int
    counts: Optional[Dict[Hashable, int]]
    cms: Optional[CountMinSketch]
    bloom: Optional[BloomFilter]
    hll: HyperLogLog
    topk: List[Tuple[Hashable, int]] = field(default_factory=list)
    #: IP columns only: keys are canonical dotted-quads (the column is
    #: stored as uint32, so equality compares parsed addresses, not raw
    #: strings).  Probes must canonicalize the same way or pruning
    #: would disagree with the vectorized comparison.
    ip_canonical: bool = False

    def _probe(self, value) -> Optional[Hashable]:
        """The key a filter value would occupy in this column's stats,
        matching the executor's equality semantics exactly."""
        if self.ip_canonical and self.field_name in ("src_ip", "dst_ip"):
            if not isinstance(value, str):
                return None
            try:
                return u32_to_ip(ip_to_u32(value))
            except ValueError:
                return _NO_MATCH
        return stat_key(value)

    def membership(self, value) -> Optional[bool]:
        """False when ``value`` is definitely absent; True when it may
        be present; None when the stats cannot tell (unsketchable
        probe type)."""
        key = self._probe(value)
        if key is None:
            return None
        if key is _NO_MATCH:
            return False
        if self.counts is not None:
            return key in self.counts
        if self.bloom is not None:
            return key in self.bloom
        return None

    def count_estimate(self, value) -> Optional[Tuple[int, int]]:
        """(estimate, error bound) for ``COUNT(field == value)``.

        The estimate never under-counts (exact map, or count-min's
        one-sided error); the bound is 0 for exact maps and
        ``ceil(eps * n)`` for count-min.  None when the probe type is
        unsummarized.
        """
        key = self._probe(value)
        if key is None:
            return None
        if key is _NO_MATCH:
            return 0, 0
        if self.counts is not None:
            return self.counts.get(key, 0), 0
        if self.bloom is not None and key not in self.bloom:
            return 0, 0
        if self.cms is not None:
            return self.cms.estimate(key), int(math.ceil(CMS_EPS * self.n))
        return None

    def selectivity(self, value) -> Optional[float]:
        """Estimated fraction of rows matching ``field == value``."""
        estimate = self.count_estimate(value)
        if estimate is None or self.n == 0:
            return None
        return min(1.0, estimate[0] / self.n)


def _keyed_value_counts(cols, fld) \
        -> Optional[Tuple[List, np.ndarray, bool]]:
    """(keys, counts, ip_canonical) over one column block, one pass."""
    if fld in NUMERIC_FIELDS:
        values, counts = np.unique(getattr(cols, fld), return_counts=True)
        return [stat_key(v) for v in values.tolist()], counts, False
    if fld in ("src_ip", "dst_ip"):
        column = getattr(cols, fld)
        if isinstance(column, DictColumn):
            tallies = np.bincount(column.codes, minlength=len(column.values))
            present = np.flatnonzero(tallies)
            return [column.values[i] for i in present.tolist()], \
                tallies[present], False
        values, counts = np.unique(column, return_counts=True)
        return [u32_to_ip(int(v)) for v in values.tolist()], counts, True
    if fld in _STRING_FIELDS:
        column = getattr(cols, fld)
        tallies = np.bincount(column.codes, minlength=len(column.values))
        present = np.flatnonzero(tallies)
        return [column.values[i] for i in present.tolist()], \
            tallies[present], False
    return None


def _column_stats_from_pairs(fld: str, keys: List, counts: np.ndarray,
                             ip_canonical: bool = False) -> ColumnStats:
    """Assemble one column's stats from its exact (key, count) pairs."""
    # Imported at call time: repro.deploy pulls in the learning package,
    # and a module-level import here would close an import cycle when
    # repro.learning is the entry point (learning.features -> datastore
    # -> planner -> stats -> deploy -> switch -> learning.features).
    from repro.deploy.sketches import BloomFilter, CountMinSketch, \
        HyperLogLog
    n = int(counts.sum()) if len(counts) else 0
    ndv = len(keys)
    hll = HyperLogLog(p=HLL_P)
    hll.add_batch(keys)
    order = sorted(range(ndv), key=lambda i: (-int(counts[i]), str(keys[i])))
    topk = [(keys[i], int(counts[i])) for i in order[:TOPK]]
    if ndv <= EXACT_COUNTS_MAX:
        exact = {key: int(count) for key, count in zip(keys, counts)}
        return ColumnStats(field_name=fld, n=n, ndv=ndv, counts=exact,
                           cms=None, bloom=None, hll=hll, topk=topk,
                           ip_canonical=ip_canonical)
    cms = CountMinSketch(width=CMS_WIDTH, depth=CMS_DEPTH)
    cms.add_batch(keys, [int(c) for c in counts])
    bloom = BloomFilter(capacity=ndv, fp_rate=0.01)
    bloom.add_batch(keys)
    return ColumnStats(field_name=fld, n=n, ndv=ndv, counts=None,
                       cms=cms, bloom=bloom, hll=hll, topk=topk,
                       ip_canonical=ip_canonical)


@dataclass
class SegmentStats:
    """Column summaries + row count for one segment, at build time."""

    n: int
    columns: Dict[str, ColumnStats]

    @classmethod
    def build(cls, segment) -> "SegmentStats":
        """One pass over the segment's columns (or records, for
        non-columnar collections restricted to indexed fields)."""
        cols = segment.columns()
        summaries: Dict[str, ColumnStats] = {}
        if cols is not None:
            for fld in SKETCHED_PACKET_FIELDS:
                pairs = _keyed_value_counts(cols, fld)
                if pairs is not None:
                    summaries[fld] = _column_stats_from_pairs(fld, *pairs)
            return cls(n=len(segment.records), columns=summaries)
        field_of = segment.schema.field_of
        for fld in segment.schema.indexed_fields:
            tallies: Dict[Hashable, int] = {}
            for stored in segment.records:
                key = stat_key(field_of(stored.record, fld))
                if key is not None:
                    tallies[key] = tallies.get(key, 0) + 1
            if tallies:
                keys = list(tallies)
                counts = np.fromiter(tallies.values(), dtype=np.int64,
                                     count=len(keys))
                summaries[fld] = _column_stats_from_pairs(fld, keys, counts)
        return cls(n=len(segment.records), columns=summaries)

    def column(self, fld: str) -> Optional[ColumnStats]:
        return self.columns.get(fld)


def merge_column_stats(parts: List[ColumnStats]) -> ColumnStats:
    """Combine one column's stats across segments (compaction unit).

    Exact maps merge exactly while the union stays small; otherwise
    the merge degrades to sketches: count-min tables add element-wise
    (same fixed geometry), HLL registers take the max.  Blooms are
    sized per segment so they only survive a merge when every part is
    exact (rebuilt) — a dropped Bloom just means less pruning, never
    a wrong answer.
    """
    if not parts:
        raise ValueError("merge_column_stats needs at least one part")
    from repro.deploy.sketches import CountMinSketch, HyperLogLog
    fld = parts[0].field_name
    n = sum(p.n for p in parts)
    # A merged block only keeps canonical-IP probing when every part
    # had it; mixed representations degrade to raw-string probes
    # (estimates only — the per-segment blocks still drive pruning).
    ip_canonical = all(p.ip_canonical for p in parts)
    hll = HyperLogLog(p=HLL_P)
    for p in parts:
        hll.merge(p.hll)
    if all(p.counts is not None for p in parts):
        merged: Dict[Hashable, int] = {}
        for p in parts:
            for key, count in p.counts.items():
                merged[key] = merged.get(key, 0) + count
        keys = list(merged)
        counts = np.fromiter(merged.values(), dtype=np.int64,
                             count=len(keys))
        out = _column_stats_from_pairs(fld, keys, counts,
                                       ip_canonical=ip_canonical)
        out.hll = hll
        return out
    cms = CountMinSketch(width=CMS_WIDTH, depth=CMS_DEPTH)
    for p in parts:
        if p.cms is not None:
            cms.merge(p.cms)
        elif p.counts:
            cms.add_batch(list(p.counts), list(p.counts.values()))
    candidates: Dict[Hashable, None] = {}
    for p in parts:
        for key, _ in p.topk:
            candidates.setdefault(key, None)
    ranked = sorted(
        ((key, sum(p.counts.get(key, 0) if p.counts is not None
                   else p.cms.estimate(key) if p.cms is not None else 0
                   for p in parts)) for key in candidates),
        key=lambda pair: (-pair[1], str(pair[0])))
    ndv = int(round(hll.estimate()))
    return ColumnStats(field_name=fld, n=n, ndv=ndv, counts=None,
                       cms=cms, bloom=None, hll=hll, topk=ranked[:TOPK],
                       ip_canonical=ip_canonical)
