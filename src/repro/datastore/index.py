"""Index structures for sealed segments.

Three index families cover the store's query patterns:

* :class:`TimeIndex` — records sorted by timestamp; range queries via
  bisection.
* :class:`HashIndex` — exact-match on a field (src_ip, dst_port, ...).
* :class:`InvertedIndex` — tag-key/tag-value postings for the
  on-the-fly metadata attached at ingest.

All indexes map to *positions within one segment*; the store stitches
segment-level results together.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple


class TimeIndex:
    """Sorted (timestamp, position) pairs for range scans.

    Additions accumulate unsorted and are merged lazily; the single
    merge implementation (:meth:`_merge`) sorts by ``(time, position)``
    so :meth:`range` results are deterministic for equal timestamps
    (ties break by ascending position).
    """

    def __init__(self):
        self._times: List[float] = []
        self._positions: List[int] = []
        self._dirty_times: List[float] = []
        self._dirty_positions: List[int] = []

    def add(self, timestamp: float, position: int) -> None:
        self._dirty_times.append(timestamp)
        self._dirty_positions.append(position)

    def add_batch(self, timestamps: Iterable[float],
                  positions: Iterable[int]) -> None:
        """Bulk add; positions must align with timestamps."""
        self._dirty_times.extend(timestamps)
        self._dirty_positions.extend(positions)

    def _merge(self) -> None:
        """Fold accumulated entries into the sorted arrays (idempotent)."""
        if not self._dirty_times:
            return
        merged = list(zip(self._times, self._positions))
        merged.extend(zip(self._dirty_times, self._dirty_positions))
        merged.sort()
        self._times = [t for t, _ in merged]
        self._positions = [p for _, p in merged]
        self._dirty_times = []
        self._dirty_positions = []

    def seal(self) -> None:
        """Merge pending entries; called when a segment seals."""
        self._merge()

    def range(self, start: Optional[float], end: Optional[float]) -> List[int]:
        """Positions with start <= t <= end (either bound optional).

        Results are ordered by (time, position) — deterministic even
        when many records share one timestamp.
        """
        self._merge()
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = len(self._times) if end is None else bisect.bisect_right(
            self._times, end)
        return self._positions[lo:hi]

    @property
    def min_time(self) -> Optional[float]:
        self._merge()
        return self._times[0] if self._times else None

    @property
    def max_time(self) -> Optional[float]:
        self._merge()
        return self._times[-1] if self._times else None

    def __len__(self) -> int:
        return len(self._times) + len(self._dirty_times)


class HashIndex:
    """Exact-match postings for one field."""

    def __init__(self):
        self._postings: Dict[object, List[int]] = defaultdict(list)

    def add(self, value, position: int) -> None:
        self._postings[value].append(position)

    def add_batch(self, values: Iterable, start: int = 0) -> None:
        """Bulk add values at consecutive positions from ``start``."""
        postings = self._postings
        for position, value in enumerate(values, start):
            postings[value].append(position)

    def lookup(self, value) -> List[int]:
        return self._postings.get(value, [])

    def values(self) -> Iterable:
        return self._postings.keys()

    def __len__(self) -> int:
        return sum(len(v) for v in self._postings.values())


class InvertedIndex:
    """Tag postings: (key, value) -> positions, plus key -> positions."""

    def __init__(self):
        self._kv: Dict[Tuple[str, str], List[int]] = defaultdict(list)
        self._keys: Dict[str, List[int]] = defaultdict(list)

    def add(self, tags: Dict[str, str], position: int) -> None:
        for key, value in tags.items():
            self._kv[(key, value)].append(position)
            self._keys[key].append(position)

    def lookup(self, key: str, value: Optional[str] = None) -> List[int]:
        if value is None:
            return self._keys.get(key, [])
        return self._kv.get((key, value), [])

    def keys(self) -> Iterable[str]:
        return self._keys.keys()
