"""Query engine: index-accelerated filtering and aggregation.

A :class:`Query` combines a time range, exact-match field filters, tag
filters, and an arbitrary residual predicate.  The executor picks, per
segment, the most selective available index (time range, hash index,
or inverted tag index), intersects candidate positions, then applies
the remaining filters record by record.  ``tests/datastore`` verifies
index-accelerated results always equal a full linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class Query:
    """Declarative description of what to fetch.

    Attributes
    ----------
    collection:
        "packets", "flows", or "logs".
    time_range:
        Optional (start, end) inclusive bounds; either may be None.
    where:
        Exact-match field filters, e.g. ``{"dst_port": 53}``.
    tags:
        Exact-match tag filters, e.g. ``{"dns_qtype": "ANY"}``; a value
        of ``None`` means "tag key present".
    predicate:
        Residual row filter: ``predicate(stored) -> bool``.
    limit:
        Maximum records returned (applied after time ordering).
    order_by_time:
        Sort results by the collection's time field.
    """

    collection: str
    time_range: Optional[Tuple[Optional[float], Optional[float]]] = None
    where: Dict[str, object] = field(default_factory=dict)
    tags: Dict[str, Optional[str]] = field(default_factory=dict)
    predicate: Optional[Callable] = None
    limit: Optional[int] = None
    order_by_time: bool = True


@dataclass
class Aggregation:
    """Group-and-reduce over query results.

    ``key_fn(stored) -> hashable`` chooses the group;
    ``value_fn(stored) -> float`` the contribution (default 1: count);
    ``reducer`` is "sum", "count", "max", "min", or "mean".
    """

    key_fn: Callable
    value_fn: Optional[Callable] = None
    reducer: str = "sum"


def _candidate_positions(segment, query: Query) -> Optional[List[int]]:
    """Smallest candidate set any single index yields, or None = all."""
    best: Optional[List[int]] = None

    if query.time_range is not None:
        start, end = query.time_range
        positions = segment.time_index.range(start, end)
        best = positions

    for fld, value in query.where.items():
        index = segment.field_indexes.get(fld)
        if index is None:
            continue
        positions = index.lookup(value)
        if best is None or len(positions) < len(best):
            best = positions

    for key, value in query.tags.items():
        positions = segment.tag_index.lookup(key, value)
        if best is None or len(positions) < len(best):
            best = positions

    return best


def _matches(stored, segment, query: Query) -> bool:
    record = stored.record
    schema = segment.schema
    if query.time_range is not None:
        start, end = query.time_range
        t = schema.time_of(record)
        if start is not None and t < start:
            return False
        if end is not None and t > end:
            return False
    for fld, value in query.where.items():
        if schema.field_of(record, fld) != value:
            return False
    for key, value in query.tags.items():
        actual = stored.tags.get(key)
        if actual is None:
            return False
        if value is not None and actual != value:
            return False
    if query.predicate is not None and not query.predicate(stored):
        return False
    return True


def execute_query(store, query: Query) -> List:
    """Run ``query`` against ``store`` (index-accelerated, time-ordered)."""
    segments = store.segments(query.collection)
    results = []
    for segment in segments:
        if query.time_range is not None and not segment.overlaps(
            *query.time_range
        ):
            continue
        candidates = _candidate_positions(segment, query)
        if candidates is None:
            rows = segment.records
        else:
            rows = [segment.records[p] for p in sorted(set(candidates))]
        for stored in rows:
            if _matches(stored, segment, query):
                results.append((segment.schema.time_of(stored.record), stored))

    if query.order_by_time:
        results.sort(key=lambda pair: pair[0])
    records = [stored for _, stored in results]
    if query.limit is not None:
        records = records[: query.limit]
    return records


_REDUCERS = {
    "sum": sum,
    "count": len,
    "max": max,
    "min": min,
    "mean": lambda values: sum(values) / len(values) if values else 0.0,
}


def execute_aggregate(store, query: Query, aggregation: Aggregation) -> Dict:
    """Group-and-reduce the query's results per ``aggregation``."""
    if aggregation.reducer not in _REDUCERS:
        known = ", ".join(sorted(_REDUCERS))
        raise ValueError(
            f"unknown reducer {aggregation.reducer!r}; one of {known}"
        )
    groups: Dict[object, List[float]] = {}
    value_fn = aggregation.value_fn or (lambda stored: 1.0)
    for stored in execute_query(store, query):
        key = aggregation.key_fn(stored)
        groups.setdefault(key, []).append(value_fn(stored))
    reducer = _REDUCERS[aggregation.reducer]
    return {key: reducer(values) for key, values in groups.items()}
