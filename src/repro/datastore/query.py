"""Query engine: zone-map pruning, vectorized filters, aggregation.

A :class:`Query` combines a time range, exact-match field filters, tag
filters, and an arbitrary residual predicate.  Per segment the executor
first consults zone maps (min/max of time and key fields) to prune the
whole segment without touching a single record, then — for columnar
collections — evaluates ``time_range``/``where`` as numpy masks over
the segment's column block, leaving only tag filters and residual
predicates to a record-at-a-time pass over the few surviving rows.
Collections without columns (flows, logs) keep the index-accelerated
record path: pick the most selective index, intersect, filter.

``execute_query_linear`` is the semantics reference — a plain linear
scan with no indexes and no columns.  ``tests/datastore`` verifies both
accelerated paths return *identical records in identical order*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


@dataclass
class Query:
    """Declarative description of what to fetch.

    Attributes
    ----------
    collection:
        "packets", "flows", or "logs".
    time_range:
        Optional (start, end) inclusive bounds; either may be None.
    where:
        Exact-match field filters, e.g. ``{"dst_port": 53}``.
    tags:
        Exact-match tag filters, e.g. ``{"dns_qtype": "ANY"}``; a value
        of ``None`` means "tag key present".
    predicate:
        Residual row filter: ``predicate(stored) -> bool``.
    limit:
        Maximum records returned (applied after time ordering).
    order_by_time:
        Sort results by the collection's time field.
    approx:
        Optional :class:`~repro.datastore.planner.ErrorBudget` (see
        :func:`~repro.datastore.planner.within`): lets sketch-
        answerable aggregates short-circuit to the per-segment stats
        when the composed error bound fits; record-returning queries
        ignore it (they are always exact).
    """

    collection: str
    time_range: Optional[Tuple[Optional[float], Optional[float]]] = None
    where: Dict[str, object] = field(default_factory=dict)
    tags: Dict[str, Optional[str]] = field(default_factory=dict)
    predicate: Optional[Callable] = None
    limit: Optional[int] = None
    order_by_time: bool = True
    approx: Optional[object] = None


@dataclass
class Aggregation:
    """Group-and-reduce over query results.

    ``key_fn(stored) -> hashable`` chooses the group;
    ``value_fn(stored) -> float`` the contribution (default 1: count);
    ``reducer`` is "sum", "count", "max", "min", or "mean".
    """

    key_fn: Callable
    value_fn: Optional[Callable] = None
    reducer: str = "sum"


_TIME_KEY = itemgetter(0)


def _candidate_positions(segment, query: Query) -> Optional[List[int]]:
    """Smallest candidate set any single index yields, or None = all."""
    best: Optional[List[int]] = None

    if query.time_range is not None:
        start, end = query.time_range
        positions = segment.time_index.range(start, end)
        best = positions

    for fld, value in query.where.items():
        index = segment.field_indexes.get(fld)
        if index is None:
            continue
        positions = index.lookup(value)
        if best is None or len(positions) < len(best):
            best = positions

    for key, value in query.tags.items():
        positions = segment.tag_index.lookup(key, value)
        if best is None or len(positions) < len(best):
            best = positions

    return best


def _matches(stored, segment, query: Query) -> bool:
    record = stored.record
    schema = segment.schema
    if query.time_range is not None:
        start, end = query.time_range
        t = schema.time_of(record)
        if start is not None and t < start:
            return False
        if end is not None and t > end:
            return False
    for fld, value in query.where.items():
        if schema.field_of(record, fld) != value:
            return False
    for key, value in query.tags.items():
        actual = stored.tags.get(key)
        if actual is None:
            return False
        if value is not None and actual != value:
            return False
    if query.predicate is not None and not query.predicate(stored):
        return False
    return True


def _columnar_scan(segment, cols, query: Query, where_items=None,
                   gather: bool = False) -> List[Tuple[float, object]]:
    """Vectorized per-segment scan; returns (time, stored) pairs.

    Pairs are time-ordered when the query asks for time ordering,
    position-ordered otherwise — exactly matching the record path.

    ``where_items`` lets the planner substitute a selectivity-ordered
    predicate sequence (same set as ``query.where``; AND-masks
    commute, so the selected rows are identical in any order).  With
    ``gather`` the predicates after the first evaluate only at the
    survivors of the running mask — fancy-indexed gathers instead of
    whole-column comparisons — which is how a selective leading
    predicate makes the rest nearly free.
    """
    items = list(query.where.items()) if where_items is None else where_items
    # Zone maps: rule the whole segment out before touching any column.
    for fld, value in items:
        if not cols.zone_admits(fld, value):
            return []

    lo, hi = 0, len(cols)
    mask: Optional[np.ndarray] = None
    if query.time_range is not None:
        start, end = query.time_range
        if cols.time_sorted:
            lo, hi = cols.time_slice(start, end)
            if lo >= hi:
                return []
        else:
            ts = cols.timestamp
            mask = np.ones(len(ts), dtype=bool)
            if start is not None:
                mask &= ts >= start
            if end is not None:
                mask &= ts <= end

    residual = False
    positions: Optional[np.ndarray] = None
    if gather:
        for fld, value in items:
            if positions is None:
                field_mask = cols.equals_mask(fld, value, lo, hi)
                if field_mask is None:
                    residual = True  # unknown field: check per record
                    continue
                mask = field_mask if mask is None else (mask & field_mask)
                positions = np.flatnonzero(mask) + lo
            elif len(positions):
                hits = cols.equals_at(fld, value, positions)
                if hits is None:
                    residual = True
                    continue
                positions = positions[hits]
    else:
        for fld, value in items:
            field_mask = cols.equals_mask(fld, value, lo, hi)
            if field_mask is None:
                residual = True      # payload/unknown field: per record
                continue
            mask = field_mask if mask is None else (mask & field_mask)

    if positions is None:
        if mask is None:
            positions = np.arange(lo, hi)
        else:
            positions = np.flatnonzero(mask) + lo
    if len(positions) == 0:
        return []

    records = segment.records
    ts = cols.timestamp
    if residual or query.tags or query.predicate is not None:
        kept = [p for p in positions.tolist()
                if _matches(records[p], segment, query)]
        pairs = [(float(ts[p]), records[p]) for p in kept]
        if query.order_by_time:
            pairs.sort(key=_TIME_KEY)
        return pairs

    if query.order_by_time and not cols.time_sorted:
        positions = positions[np.argsort(ts[positions], kind="stable")]
    return list(zip(ts[positions].tolist(),
                    map(records.__getitem__, positions.tolist())))


def columnar_positions(cols, time_range, where, where_items=None,
                       gather: bool = False) -> Optional[np.ndarray]:
    """Purely vectorized row selection over one column block.

    The worker-side half of the parallel scan: zone maps, time slice,
    and equality masks only — no records, no tags, no predicates.
    Returns ascending positions, or ``None`` when some ``where`` field
    cannot be evaluated vectorized (caller must fall back to the serial
    path, which handles residual fields per record).

    ``where_items``/``gather`` carry the planner's per-segment
    predicate order and gather choice into the worker (same semantics
    as :func:`_columnar_scan`, minus the residual path — workers have
    no records to fall back to).
    """
    items = list(where.items()) if where_items is None else where_items
    for fld, value in items:
        if not cols.zone_admits(fld, value):
            return np.zeros(0, dtype=np.int64)

    lo, hi = 0, len(cols)
    mask: Optional[np.ndarray] = None
    if time_range is not None:
        start, end = time_range
        if cols.time_sorted:
            lo, hi = cols.time_slice(start, end)
            if lo >= hi:
                return np.zeros(0, dtype=np.int64)
        else:
            ts = cols.timestamp
            mask = np.ones(len(ts), dtype=bool)
            if start is not None:
                mask &= ts >= start
            if end is not None:
                mask &= ts <= end

    if gather:
        positions: Optional[np.ndarray] = None
        for fld, value in items:
            if positions is None:
                field_mask = cols.equals_mask(fld, value, lo, hi)
                if field_mask is None:
                    return None
                mask = field_mask if mask is None else (mask & field_mask)
                positions = (np.flatnonzero(mask) + lo).astype(np.int64)
            elif len(positions):
                hits = cols.equals_at(fld, value, positions)
                if hits is None:
                    return None
                positions = positions[hits]
        if positions is not None:
            return positions
    else:
        for fld, value in items:
            field_mask = cols.equals_mask(fld, value, lo, hi)
            if field_mask is None:
                return None
            mask = field_mask if mask is None else (mask & field_mask)

    if mask is None:
        return np.arange(lo, hi, dtype=np.int64)
    return (np.flatnonzero(mask) + lo).astype(np.int64)


def _record_scan(segment,
                 query: Query) -> Tuple[List[Tuple[float, object]], bool]:
    """Index-accelerated record path for one segment.

    Returns the (time, stored) pairs plus whether they came out already
    time-ordered (lets the caller skip the final re-sort).
    """
    candidates = _candidate_positions(segment, query)
    if candidates is None:
        rows = segment.records
    else:
        rows = [segment.records[p] for p in sorted(set(candidates))]
    time_of = segment.schema.time_of
    pairs: List[Tuple[float, object]] = []
    ordered = True
    previous: Optional[float] = None
    for stored in rows:
        if _matches(stored, segment, query):
            t = time_of(stored.record)
            if previous is not None and t < previous:
                ordered = False
            previous = t
            pairs.append((t, stored))
    return pairs, ordered


def _scan_segment(segment, query: Query) \
        -> Optional[Tuple[List[Tuple[float, object]], bool, bool]]:
    """(pairs, came-out-ordered, columnar) for one segment; None when
    pruned.  The third element reports which path scanned the segment so
    query instrumentation can label latency by path."""
    if not segment.records:
        return None
    if query.time_range is not None and not segment.overlaps(
        *query.time_range
    ):
        return None
    cols = segment.columns()
    if cols is not None:
        return _columnar_scan(segment, cols, query), query.order_by_time, \
            True
    return _record_scan(segment, query) + (False,)


def _observe_query(obs, started: float, rows: int, columnar: bool) -> None:
    """One query's latency + row count into the store metrics."""
    path = "vectorized" if columnar else "fallback"
    obs.metrics.histogram("repro_store_query_seconds", path=path).observe(
        obs.clock.now() - started)
    obs.metrics.counter("repro_store_query_rows_total", path=path).inc(rows)


def execute_query(store, query: Query, obs=None) -> List:
    """Run ``query`` against ``store`` (accelerated, time-ordered).

    Plans first — stats pruning, selectivity-ordered predicates,
    gather decisions — then executes the plan; see
    :mod:`repro.datastore.planner`.  A store without stats plans into
    exactly the pre-planner scan, so this stays bit-identical to
    :func:`execute_query_linear` either way.
    """
    from repro.datastore.planner import execute_plan, plan_query
    return execute_plan(store, plan_query(store, query), obs=obs)


def execute_query_linear(store, query: Query) -> List:
    """Reference executor: record-at-a-time, no indexes, no columns.

    Defines the query semantics the accelerated paths must reproduce
    exactly (same records, same order); the equivalence suite in
    ``tests/datastore`` holds :func:`execute_query` to it.
    """
    results = []
    for segment in store.segments(query.collection):
        time_of = segment.schema.time_of
        for stored in segment.records:
            if _matches(stored, segment, query):
                results.append((time_of(stored.record), stored))
    if query.order_by_time:
        results.sort(key=_TIME_KEY)
    records = [stored for _, stored in results]
    if query.limit is not None:
        records = records[: query.limit]
    return records


_RID_KEY = itemgetter(1)
_TIME_RID_KEY = itemgetter(0, 1)


def execute_query_sharded(store, query: Query, executor=None,
                          obs=None) -> List:
    """Run ``query`` across every shard with a deterministic merge.

    Scans each contributing segment (in worker processes when an
    eligible ``executor`` is supplied), then merges on ``(time, rid)``
    — or bare ``rid`` for unordered queries.  Because a sharded store
    assigns rids in batch input order, this reconstructs exactly the
    order an unsharded store would return: the results are bit-identical
    to :func:`execute_query` on a serial store fed the same batches.

    Planning happens first (see :mod:`repro.datastore.planner`): on a
    sharded store, a fully keyed flow query prunes whole shards before
    the scatter using the router's exact window enumeration.
    """
    from repro.datastore.planner import execute_plan_sharded, plan_query
    return execute_plan_sharded(store, plan_query(store, query),
                                executor=executor, obs=obs)


_REDUCERS = {
    "sum": sum,
    "count": len,
    "max": max,
    "min": min,
    "mean": lambda values: sum(values) / len(values) if values else 0.0,
}


def execute_aggregate(store, query: Query, aggregation: Aggregation) -> Dict:
    """Group-and-reduce the query's results per ``aggregation``."""
    if aggregation.reducer not in _REDUCERS:
        known = ", ".join(sorted(_REDUCERS))
        raise ValueError(
            f"unknown reducer {aggregation.reducer!r}; one of {known}"
        )
    groups: Dict[object, List[float]] = {}
    value_fn = aggregation.value_fn or (lambda stored: 1.0)
    # store.query (not execute_query directly): a sharded store routes
    # through its deterministic cross-shard merge.
    for stored in store.query(query):
        key = aggregation.key_fn(stored)
        groups.setdefault(key, []).append(value_fn(stored))
    reducer = _REDUCERS[aggregation.reducer]
    return {key: reducer(values) for key, values in groups.items()}
