"""Retention policy: bound the store by age and volume.

§5's cost footnote: capture cost "increases proportionally with ...
the duration of data retention".  Retention is enforced at segment
granularity (the eviction unit), oldest-first, mirroring how real
capture appliances roll their capture ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RetentionReport:
    """What one enforcement pass evicted."""

    segments_evicted: int = 0
    records_evicted: int = 0
    bytes_evicted: int = 0
    by_collection: Dict[str, int] = field(default_factory=dict)


@dataclass
class RetentionPolicy:
    """Age and size bounds, per collection or global.

    ``max_age_s``: evict sealed segments entirely older than
    ``now - max_age_s``.  ``max_bytes``: evict oldest sealed segments
    until the global estimate fits.
    """

    max_age_s: Optional[float] = None
    max_bytes: Optional[int] = None

    def enforce(self, store, now: float) -> RetentionReport:
        """Evict sealed segments violating the policy; report what went."""
        report = RetentionReport()
        if self.max_age_s is not None:
            cutoff = now - self.max_age_s
            for collection in ("packets", "flows", "logs"):
                self._evict_older_than(store, collection, cutoff, report)
        if self.max_bytes is not None:
            self._evict_to_size(store, report)
        return report

    @staticmethod
    def _evict_segment(store, collection: str, segment, report) -> None:
        report.segments_evicted += 1
        report.records_evicted += len(segment)
        report.bytes_evicted += segment.bytes_estimate
        report.by_collection[collection] = (
            report.by_collection.get(collection, 0) + len(segment)
        )
        store.evict_segment(collection, segment)

    def _evict_older_than(self, store, collection: str, cutoff: float,
                          report: RetentionReport) -> None:
        for segment in list(store.segments(collection)):
            if not segment.sealed:
                continue
            max_time = segment.max_time
            if max_time is not None and max_time < cutoff:
                self._evict_segment(store, collection, segment, report)

    def _evict_to_size(self, store, report: RetentionReport) -> None:
        while store.bytes_estimate() > self.max_bytes:
            oldest = None
            oldest_collection = None
            for collection in ("packets", "flows", "logs"):
                for segment in store.segments(collection):
                    if not segment.sealed:
                        continue
                    if segment.min_time is None:
                        continue
                    if oldest is None or segment.min_time < oldest.min_time:
                        oldest = segment
                        oldest_collection = collection
            if oldest is None:
                return
            self._evict_segment(store, oldest_collection, oldest, report)
