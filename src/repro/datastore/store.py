"""The campus data store.

Three built-in collections — ``packets``, ``flows``, ``logs`` — each a
list of segments.  Ingest attaches on-the-fly metadata (for packets)
and assigns record ids; queries go through
:meth:`DataStore.query` / :meth:`DataStore.aggregate`.

The store is deliberately *internal-only* (§3): nothing here supports
export; the privacy layer (:mod:`repro.privacy`) arbitrates access and
transforms data on the way in or out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.capture.flows import FlowRecord
from repro.capture.metadata import MetadataExtractor
from repro.capture.sensors import LogRecord
from repro.chaos.faults import FaultKind
from repro.chaos.resilience import RetryPolicy, TransientError, \
    VirtualClock, retrying
from repro.datastore import schema as schemas
from repro.datastore.query import Aggregation, Query, execute_aggregate, \
    execute_query
from repro.datastore.segments import Segment
from repro.netsim.packets import PacketColumns, PacketRecord


class TransientStoreError(TransientError):
    """Ingest failed transiently (injected or real); safe to retry.

    Raised *before* any record is appended, so a retried call never
    double-ingests.
    """


#: default bulk-ingest retry: a few quick attempts on a virtual clock
STORE_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                 multiplier=2.0, max_delay_s=0.1,
                                 jitter=0.1, deadline_s=2.0)


@dataclass
class StoredRecord:
    """A record plus store-side annotations (tags, curated label)."""

    __slots__ = ("rid", "record", "tags", "label")

    rid: int
    record: object
    tags: Dict[str, str]
    label: Optional[str]


class DataStore:
    """Single platform for collecting, storing, indexing and mining.

    Parameters
    ----------
    metadata_extractor:
        Attached to packet ingest; produces the tag dictionary indexed
        by the inverted index.  Pass ``None`` to store raw packets only.
    segment_capacity:
        Records per segment before sealing.
    """

    def __init__(self, metadata_extractor: Optional[MetadataExtractor] = None,
                 segment_capacity: int = 50_000, fault_injector=None,
                 clock=None):
        self.metadata_extractor = metadata_extractor
        self.segment_capacity = segment_capacity
        self.fault_injector = fault_injector
        self.clock = clock or VirtualClock()
        self.transient_errors = 0
        self.injected_latency_s = 0.0
        self._segments: Dict[str, List[Segment]] = {
            name: [] for name in schemas.SCHEMAS
        }
        self._segment_ids = itertools.count(1)
        self._record_ids = itertools.count(1)
        self.ingest_transforms: List[Callable] = []

    # -- ingest ------------------------------------------------------------

    def _chaos_gate(self, site: str) -> None:
        """Injected store faults fire here, before any mutation."""
        injector = self.fault_injector
        if injector is None:
            return
        if injector.should_fire(FaultKind.STORE_TRANSIENT, site=site):
            self.transient_errors += 1
            raise TransientStoreError(f"injected transient fault in {site}")
        if injector.should_fire(FaultKind.STORE_LATENCY, site=site):
            delay = injector.magnitude(FaultKind.STORE_LATENCY)
            self.injected_latency_s += delay
            self.clock.sleep(delay)

    def resilient_ingestor(self, fn: Callable, policy: Optional[RetryPolicy]
                           = None, bus=None, site: Optional[str] = None) \
            -> Callable:
        """Wrap a bulk-ingest method with transient-error retries.

        The store's ingest paths raise :class:`TransientStoreError`
        before touching any segment, so re-running the call is exactly
        idempotent.  Backoff runs on the store's (virtual) clock.
        """
        return retrying(policy or STORE_RETRY_POLICY, clock=self.clock,
                        bus=bus, site=site or getattr(fn, "__name__",
                                                      "ingest"))(fn)

    def add_ingest_transform(self, transform: Callable) -> None:
        """Install a privacy/cleaning transform applied at ingest.

        ``transform(collection_name, record, tags) -> (record, tags)``
        may rewrite the record (e.g. anonymize addresses) or the tags;
        returning ``(None, None)`` drops the record.
        """
        self.ingest_transforms.append(transform)

    def _open_segment(self, collection: str) -> Segment:
        segments = self._segments[collection]
        if segments and not segments[-1].sealed and not segments[-1].full:
            return segments[-1]
        if segments and not segments[-1].sealed:
            segments[-1].seal()
        segment = Segment(schemas.SCHEMAS[collection],
                          next(self._segment_ids),
                          capacity=self.segment_capacity)
        segments.append(segment)
        return segment

    def _ingest(self, collection: str, record, tags: Dict[str, str]) -> \
            Optional[StoredRecord]:
        for transform in self.ingest_transforms:
            record, tags = transform(collection, record, tags)
            if record is None:
                return None
        stored = StoredRecord(rid=next(self._record_ids), record=record,
                              tags=tags or {}, label=None)
        self._open_segment(collection).append(stored)
        return stored

    def ingest_packets(
        self, packets: Union[Iterable[PacketRecord], PacketColumns]
    ) -> int:
        """Store captured packets (with extracted metadata).

        Accepts a plain iterable of records or a columnar
        :class:`~repro.netsim.packets.PacketColumns` batch.  The whole
        batch moves through one vectorized/memoized metadata pass and
        one bulk segment append; per-record work is limited to the
        ``StoredRecord`` wrappers themselves (and any installed ingest
        transforms, which are inherently record-at-a-time).
        """
        if isinstance(packets, PacketColumns):
            packets = list(packets.iter_records())
        elif not isinstance(packets, list):
            packets = list(packets)
        if not packets:
            return 0
        self._chaos_gate("ingest_packets")

        if self.metadata_extractor is not None:
            tags_list = self.metadata_extractor.extract_batch(packets)
        else:
            tags_list = [{} for _ in packets]

        if self.ingest_transforms:
            count = 0
            for packet, tags in zip(packets, tags_list):
                if self._ingest("packets", packet, tags) is not None:
                    count += 1
            return count

        # Fast path: bulk StoredRecord creation + chunked batch appends.
        stored = list(map(StoredRecord, self._record_ids, packets,
                          tags_list, itertools.repeat(None)))
        total = len(stored)
        offset = 0
        while offset < total:
            segment = self._open_segment("packets")
            space = segment.capacity - len(segment)
            segment.append_batch(stored[offset:offset + space])
            offset += space
        return total

    def ingest_flows(self, flows: Iterable[FlowRecord]) -> int:
        """Store assembled flow records; returns how many were kept."""
        if not isinstance(flows, list):
            flows = list(flows)
        self._chaos_gate("ingest_flows")
        count = 0
        for flow in flows:
            tags = {"service": flow.service}
            if self._ingest("flows", flow, tags) is not None:
                count += 1
        return count

    def ingest_log(self, log: LogRecord) -> None:
        """Store one complementary sensor record."""
        self._chaos_gate("ingest_log")
        self._ingest("logs", log, {"kind": log.kind})

    def ingest_logs(self, logs: Iterable[LogRecord]) -> int:
        """Store a batch of sensor records; returns the count."""
        count = 0
        for log in logs:
            self.ingest_log(log)
            count += 1
        return count

    # -- query -------------------------------------------------------------

    def segments(self, collection: str) -> List[Segment]:
        if collection not in self._segments:
            known = ", ".join(sorted(self._segments))
            raise KeyError(f"unknown collection {collection!r}; one of {known}")
        return self._segments[collection]

    def query(self, query: Query) -> List[StoredRecord]:
        """Run a query; see :class:`repro.datastore.query.Query`."""
        return execute_query(self, query)

    def aggregate(self, query: Query, aggregation: Aggregation) -> Dict:
        return execute_aggregate(self, query, aggregation)

    def count(self, collection: str) -> int:
        return sum(len(s) for s in self._segments[collection])

    # -- stats ---------------------------------------------------------------

    def bytes_estimate(self, collection: Optional[str] = None) -> int:
        if collection is not None:
            return sum(s.bytes_estimate for s in self._segments[collection])
        return sum(
            s.bytes_estimate
            for segments in self._segments.values() for s in segments
        )

    def time_span(self, collection: str) -> Tuple[Optional[float], Optional[float]]:
        segments = self._segments[collection]
        mins = [s.min_time for s in segments if s.min_time is not None]
        maxs = [s.max_time for s in segments if s.max_time is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    def summary(self) -> Dict[str, Dict]:
        """Per-collection counts, bytes, and time span."""
        out = {}
        for name in self._segments:
            lo, hi = self.time_span(name)
            out[name] = {
                "records": self.count(name),
                "segments": len(self._segments[name]),
                "bytes": self.bytes_estimate(name),
                "min_time": lo,
                "max_time": hi,
            }
        return out
