"""The campus data store.

Three built-in collections — ``packets``, ``flows``, ``logs`` — each a
list of segments.  Ingest attaches on-the-fly metadata (for packets)
and assigns record ids; queries go through
:meth:`DataStore.query` / :meth:`DataStore.aggregate`.

The store is deliberately *internal-only* (§3): nothing here supports
export; the privacy layer (:mod:`repro.privacy`) arbitrates access and
transforms data on the way in or out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.capture.flows import FlowRecord
from repro.capture.metadata import MetadataExtractor
from repro.capture.sensors import LogRecord
from repro.chaos.faults import FaultKind
from repro.chaos.resilience import RetryPolicy, TransientError, \
    VirtualClock, retrying
from repro.datastore import schema as schemas
from repro.datastore.query import Aggregation, Query, execute_aggregate, \
    execute_query, execute_query_sharded
from repro.datastore.segments import Segment
from repro.netsim.packets import PacketColumns, PacketRecord
from repro.parallel.sharding import ShardRouter


class TransientStoreError(TransientError):
    """Ingest failed transiently (injected or real); safe to retry.

    Raised *before* any record is appended, so a retried call never
    double-ingests.
    """


#: default bulk-ingest retry: a few quick attempts on a virtual clock
STORE_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                 multiplier=2.0, max_delay_s=0.1,
                                 jitter=0.1, deadline_s=2.0)


@dataclass
class StoredRecord:
    """A record plus store-side annotations (tags, curated label)."""

    __slots__ = ("rid", "record", "tags", "label")

    rid: int
    record: object
    tags: Dict[str, str]
    label: Optional[str]


class DataStore:
    """Single platform for collecting, storing, indexing and mining.

    Parameters
    ----------
    metadata_extractor:
        Attached to packet ingest; produces the tag dictionary indexed
        by the inverted index.  Pass ``None`` to store raw packets only.
    segment_capacity:
        Records per segment before sealing.
    stats_on_seal:
        Build the planner's per-column stats block whenever a segment
        seals.  Off by default — stats cost one distinct-value pass
        per column, which pure-ingest workloads should not pay; turn
        it on (or call :meth:`build_stats`) when the workload queries
        what it stores.
    """

    def __init__(self, metadata_extractor: Optional[MetadataExtractor] = None,
                 segment_capacity: int = 50_000, fault_injector=None,
                 clock=None, obs=None, stats_on_seal: bool = False):
        self.metadata_extractor = metadata_extractor
        self.segment_capacity = segment_capacity
        self.stats_on_seal = stats_on_seal
        self.fault_injector = fault_injector
        self.clock = clock or VirtualClock()
        self.transient_errors = 0
        self.injected_latency_s = 0.0
        self._segments: Dict[str, List[Segment]] = {
            name: [] for name in schemas.SCHEMAS
        }
        self._segment_ids = itertools.count(1)
        self._record_ids = itertools.count(1)
        self.ingest_transforms: List[Callable] = []
        self.obs = None
        if obs is not None:
            self.bind_obs(obs)

    def bind_obs(self, obs) -> None:
        """Attach an Observability after construction (e.g. to an
        imported store) and cache the hot-path metric objects."""
        from repro.obs.metrics import COUNT_BUCKETS
        self.obs = obs
        self._m_ingest = {
            name: obs.metrics.counter(
                "repro_store_ingest_records_total", collection=name)
            for name in schemas.SCHEMAS
        }
        self._m_ingest_batch = obs.metrics.histogram(
            "repro_store_ingest_batch_records", buckets=COUNT_BUCKETS)

    def _record_ingest_obs(self, collection: str, n: int) -> None:
        self._m_ingest[collection].inc(n)
        self._m_ingest_batch.observe(n)

    # -- ingest ------------------------------------------------------------

    def _chaos_gate(self, site: str) -> None:
        """Injected store faults fire here, before any mutation."""
        injector = self.fault_injector
        if injector is None:
            return
        if injector.should_fire(FaultKind.STORE_TRANSIENT, site=site):
            self.transient_errors += 1
            raise TransientStoreError(f"injected transient fault in {site}")
        if injector.should_fire(FaultKind.STORE_LATENCY, site=site):
            delay = injector.magnitude(FaultKind.STORE_LATENCY)
            self.injected_latency_s += delay
            self.clock.sleep(delay)

    def resilient_ingestor(self, fn: Callable, policy: Optional[RetryPolicy]
                           = None, bus=None, site: Optional[str] = None) \
            -> Callable:
        """Wrap a bulk-ingest method with transient-error retries.

        The store's ingest paths raise :class:`TransientStoreError`
        before touching any segment, so re-running the call is exactly
        idempotent.  Backoff runs on the store's (virtual) clock.
        """
        return retrying(policy or STORE_RETRY_POLICY, clock=self.clock,
                        bus=bus, site=site or getattr(fn, "__name__",
                                                      "ingest"))(fn)

    def add_ingest_transform(self, transform: Callable) -> None:
        """Install a privacy/cleaning transform applied at ingest.

        ``transform(collection_name, record, tags) -> (record, tags)``
        may rewrite the record (e.g. anonymize addresses) or the tags;
        returning ``(None, None)`` drops the record.
        """
        self.ingest_transforms.append(transform)

    def _open_segment(self, collection: str) -> Segment:
        segments = self._segments[collection]
        if segments and not segments[-1].sealed and not segments[-1].full:
            return segments[-1]
        if segments and not segments[-1].sealed:
            segments[-1].seal(build_stats=self.stats_on_seal)
        segment = Segment(schemas.SCHEMAS[collection],
                          next(self._segment_ids),
                          capacity=self.segment_capacity)
        segments.append(segment)
        return segment

    def _ingest(self, collection: str, record, tags: Dict[str, str]) -> \
            Optional[StoredRecord]:
        for transform in self.ingest_transforms:
            record, tags = transform(collection, record, tags)
            if record is None:
                return None
        stored = StoredRecord(rid=next(self._record_ids), record=record,
                              tags=tags or {}, label=None)
        self._open_segment(collection).append(stored)
        return stored

    def ingest_packets(
        self, packets: Union[Iterable[PacketRecord], PacketColumns]
    ) -> int:
        """Store captured packets (with extracted metadata).

        Accepts a plain iterable of records or a columnar
        :class:`~repro.netsim.packets.PacketColumns` batch.  The whole
        batch moves through one vectorized/memoized metadata pass and
        one bulk segment append; per-record work is limited to the
        ``StoredRecord`` wrappers themselves (and any installed ingest
        transforms, which are inherently record-at-a-time).
        """
        if isinstance(packets, PacketColumns):
            if self.ingest_transforms:
                packets = list(packets.iter_records())
            else:
                return self._ingest_packet_columns(packets)
        elif not isinstance(packets, list):
            packets = list(packets)
        if not packets:
            return 0
        self._chaos_gate("ingest_packets")

        if self.metadata_extractor is not None:
            tags_list = self.metadata_extractor.extract_batch(packets)
        else:
            tags_list = [{} for _ in packets]

        if self.ingest_transforms:
            count = 0
            for packet, tags in zip(packets, tags_list):
                if self._ingest("packets", packet, tags) is not None:
                    count += 1
            if self.obs is not None:
                self._record_ingest_obs("packets", count)
            return count

        # Fast path: bulk StoredRecord creation + chunked batch appends.
        stored = list(map(StoredRecord, self._record_ids, packets,
                          tags_list, itertools.repeat(None)))
        total = len(stored)
        offset = 0
        while offset < total:
            segment = self._open_segment("packets")
            space = segment.capacity - len(segment)
            segment.append_batch(stored[offset:offset + space])
            offset += space
        if self.obs is not None:
            self._record_ingest_obs("packets", total)
        return total

    def _ingest_packet_columns(self, cols: PacketColumns) -> int:
        """Columnar ingest: tags from arrays, column blocks adopted.

        Records still back the segments (they are the source of truth
        for every non-columnar code path), but metadata extraction runs
        over the column arrays and each fresh segment adopts its slice
        of the incoming batch — the vectorized query path never has to
        rebuild what the tap already produced.
        """
        total = len(cols)
        if total == 0:
            return 0
        self._chaos_gate("ingest_packets")
        if self.metadata_extractor is not None:
            tags_list = self.metadata_extractor.extract_columns(cols)
        else:
            tags_list = [{} for _ in range(total)]
        offset = 0
        while offset < total:
            segment = self._open_segment("packets")
            space = segment.capacity - len(segment)
            hi = min(offset + space, total)
            chunk = cols.slice(offset, hi)
            fresh = len(segment) == 0
            stored = list(map(StoredRecord, self._record_ids,
                              chunk.iter_records(), tags_list[offset:hi],
                              itertools.repeat(None)))
            segment.append_batch(stored)
            if fresh:
                segment.adopt_columns(chunk)
            offset = hi
        if self.obs is not None:
            self._record_ingest_obs("packets", total)
        return total

    def ingest_flows(self, flows: Iterable[FlowRecord]) -> int:
        """Store assembled flow records; returns how many were kept."""
        if not isinstance(flows, list):
            flows = list(flows)
        self._chaos_gate("ingest_flows")
        count = 0
        for flow in flows:
            tags = {"service": flow.service}
            if self._ingest("flows", flow, tags) is not None:
                count += 1
        if self.obs is not None:
            self._record_ingest_obs("flows", count)
        return count

    def ingest_log(self, log: LogRecord) -> None:
        """Store one complementary sensor record."""
        self._chaos_gate("ingest_log")
        self._ingest("logs", log, {"kind": log.kind})
        if self.obs is not None:
            self._m_ingest["logs"].inc()

    def ingest_logs(self, logs: Iterable[LogRecord]) -> int:
        """Store a batch of sensor records; returns the count."""
        count = 0
        for log in logs:
            self.ingest_log(log)
            count += 1
        return count

    # -- query -------------------------------------------------------------

    def segments(self, collection: str) -> List[Segment]:
        if collection not in self._segments:
            known = ", ".join(sorted(self._segments))
            raise KeyError(f"unknown collection {collection!r}; one of {known}")
        return self._segments[collection]

    def evict_segment(self, collection: str, segment) -> None:
        """Remove one segment from the store.

        The single sanctioned mutation point for segment lifecycle
        outside the tiering/compaction machinery (REP308): retention
        calls this, and tiered stores override it to also retire the
        on-disk form of a cold segment.
        """
        self.segments(collection).remove(segment)

    def query(self, query: Query) -> List[StoredRecord]:
        """Run a query; see :class:`repro.datastore.query.Query`."""
        obs = self.obs
        if obs is None:
            return execute_query(self, query)
        with obs.span("store.query", collection=query.collection) as span:
            records = execute_query(self, query, obs=obs)
            span.set(rows=len(records))
        return records

    def aggregate(self, query: Query, aggregation: Aggregation) -> Dict:
        return execute_aggregate(self, query, aggregation)

    def count(self, collection: str) -> int:
        return sum(len(s) for s in self._segments[collection])

    # -- planning ------------------------------------------------------------

    def build_stats(self, collection: Optional[str] = None) -> int:
        """Build planner stats for every segment missing a fresh block
        (all collections — and, on a sharded store, all shards — when
        ``collection`` is None).  Returns how many were built."""
        names = [collection] if collection is not None else \
            list(self._segments)
        built = 0
        for name in names:
            for segment in self.segments(name):
                if segment.stats() is None:
                    segment.build_stats()
                    built += 1
        return built

    def plan(self, query: Query):
        """The :class:`~repro.datastore.planner.QueryPlan` this store
        would execute for ``query`` (a snapshot: plan and execute
        before ingesting more)."""
        from repro.datastore.planner import plan_query
        return plan_query(self, query)

    def explain(self, query: Query) -> str:
        """EXPLAIN text for ``query`` without executing it."""
        return self.plan(query).explain()

    def count_matching(self, query: Query):
        """``COUNT(*)`` of the query's matches as an
        :class:`~repro.datastore.planner.AggregateAnswer`;
        sketch-backed when ``query.approx`` allows."""
        from repro.datastore.planner import execute_count
        return execute_count(self, query, obs=self.obs)

    def distinct_count(self, query: Query, fld: str):
        """Distinct values of ``fld`` among the query's matches."""
        from repro.datastore.planner import execute_distinct
        return execute_distinct(self, query, fld, obs=self.obs)

    def heavy_hitters(self, query: Query, fld: str, k: int = 8):
        """Top-``k`` ``(value, count)`` pairs of ``fld``."""
        from repro.datastore.planner import execute_heavy_hitters
        return execute_heavy_hitters(self, query, fld, k=k, obs=self.obs)

    # -- stats ---------------------------------------------------------------

    def bytes_estimate(self, collection: Optional[str] = None) -> int:
        if collection is not None:
            return sum(s.bytes_estimate for s in self._segments[collection])
        return sum(
            s.bytes_estimate
            for segments in self._segments.values() for s in segments
        )

    def time_span(self, collection: str) -> Tuple[Optional[float], Optional[float]]:
        segments = self._segments[collection]
        mins = [s.min_time for s in segments if s.min_time is not None]
        maxs = [s.max_time for s in segments if s.max_time is not None]
        return (min(mins) if mins else None, max(maxs) if maxs else None)

    def summary(self) -> Dict[str, Dict]:
        """Per-collection counts, bytes, and time span."""
        out = {}
        for name in self._segments:
            lo, hi = self.time_span(name)
            out[name] = {
                "records": self.count(name),
                "segments": len(self._segments[name]),
                "bytes": self.bytes_estimate(name),
                "min_time": lo,
                "max_time": hi,
            }
        return out


# -- sharded store -----------------------------------------------------------


class _ShardView(list):
    """All shards' segments as one list; ``remove`` reaches the owner.

    The retention layer evicts via ``store.segments(c).remove(segment)``;
    a plain concatenated copy would drop the segment from the copy and
    silently leave it in the shard, so removal delegates to whichever
    per-shard list actually owns the segment.
    """

    def __init__(self, parts: List[List[Segment]]):
        super().__init__(itertools.chain.from_iterable(parts))
        self._parts = parts

    def remove(self, segment) -> None:
        for part in self._parts:
            for position, candidate in enumerate(part):
                if candidate is segment:
                    del part[position]
                    super().remove(segment)
                    return
        raise ValueError("segment not held by any shard")


class _SegmentMap(dict):
    """collection -> fresh cross-shard :class:`_ShardView`.

    Installed as a :class:`ShardedDataStore`'s ``_segments`` mapping so
    every inherited accessor (count, bytes_estimate, time_span,
    summary, the query executors) sees all shards without overrides.
    Views are built per access because shard segment lists grow.
    """

    def __init__(self, shards: List[DataStore]):
        super().__init__({name: None for name in schemas.SCHEMAS})
        self._shards = shards

    def __getitem__(self, collection: str) -> _ShardView:
        if collection not in self:
            raise KeyError(collection)
        return _ShardView([shard._segments[collection]
                           for shard in self._shards])

    def values(self):
        return [self[name] for name in self]

    def items(self):
        return [(name, self[name]) for name in self]


class ShardedDataStore(DataStore):
    """A :class:`DataStore` partitioned by time-window x flow-hash.

    Packets route to ``n_shards`` child stores through a deterministic
    :class:`~repro.parallel.sharding.ShardRouter`; each shard owns its
    own segments, column blocks and zone maps.  Record ids are drawn
    from the parent's counter in input order, so the global
    ``(time, rid)`` merge in
    :func:`~repro.datastore.query.execute_query_sharded` returns results
    bit-identical to an unsharded store fed the same batches.  Flows and
    logs are low-volume and live on shard 0.

    ``executor`` (a :class:`~repro.parallel.ParallelExecutor`) enables
    process-parallel query scans and metadata extraction; without one —
    or with ``workers=0`` — every path runs serially, same answers.
    """

    def __init__(self, n_shards: int,
                 metadata_extractor: Optional[MetadataExtractor] = None,
                 segment_capacity: int = 50_000, fault_injector=None,
                 clock=None, window_s: float = 5.0, executor=None,
                 obs=None, stats_on_seal: bool = False):
        # obs binding is deferred to the end of __init__: the overridden
        # bind_obs needs the router for the per-shard gauges.
        super().__init__(metadata_extractor=metadata_extractor,
                         segment_capacity=segment_capacity,
                         fault_injector=fault_injector, clock=clock,
                         stats_on_seal=stats_on_seal)
        self.router = ShardRouter(n_shards, window_s=window_s)
        self.executor = executor
        self.shards: List[DataStore] = []
        for index in range(n_shards):
            shard = self._make_shard(index)
            # one global id space: shards share the parent's counters
            shard._segment_ids = self._segment_ids
            shard._record_ids = self._record_ids
            self.shards.append(shard)
        self._segments = _SegmentMap(self.shards)
        if obs is not None:
            self.bind_obs(obs)

    def _make_shard(self, index: int) -> DataStore:
        """Construct one child shard (hook for tiered sharding)."""
        return DataStore(metadata_extractor=None,
                         segment_capacity=self.segment_capacity,
                         clock=self.clock,
                         stats_on_seal=self.stats_on_seal)

    def bind_obs(self, obs) -> None:
        super().bind_obs(obs)
        self._m_shard_records = [
            obs.metrics.gauge("repro_store_shard_records", shard=i)
            for i in range(self.router.n_shards)]
        self._m_shard_segments = [
            obs.metrics.gauge("repro_store_shard_segments", shard=i)
            for i in range(self.router.n_shards)]

    def _update_shard_gauges(self) -> None:
        for i, shard in enumerate(self.shards):
            self._m_shard_records[i].set(shard.count("packets"))
            self._m_shard_segments[i].set(
                len(shard._segments["packets"]))

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def _open_segment(self, collection: str) -> Segment:
        # non-packet ingest (flows, logs) through the inherited paths
        return self.shards[0]._open_segment(collection)

    def _ingest(self, collection: str, record, tags: Dict[str, str]) -> \
            Optional[StoredRecord]:
        if collection != "packets":
            return super()._ingest(collection, record, tags)
        # route after transforms: anonymization may rewrite the flow key
        for transform in self.ingest_transforms:
            record, tags = transform(collection, record, tags)
            if record is None:
                return None
        stored = StoredRecord(rid=next(self._record_ids), record=record,
                              tags=tags or {}, label=None)
        shard = self.shards[self.router.shard_of(record)]
        shard._open_segment("packets").append(stored)
        return stored

    def _extract_tags(self, packets: List[PacketRecord],
                      cols: Optional[PacketColumns]) -> List[Dict[str, str]]:
        extractor = self.metadata_extractor
        if extractor is None:
            return [{} for _ in packets]
        if (cols is not None and self.executor is not None
                and self.executor.parallel
                and getattr(extractor, "_topology", None) is None):
            from repro.parallel.kernels import scatter_extract
            tags_list = scatter_extract(cols, self.executor)
            if tags_list is not None:
                return tags_list
        return extractor.extract_batch(packets)

    def ingest_packets(
        self, packets: Union[Iterable[PacketRecord], PacketColumns]
    ) -> int:
        cols: Optional[PacketColumns] = None
        if isinstance(packets, PacketColumns):
            cols = packets
            packets = list(cols.iter_records())
        elif not isinstance(packets, list):
            packets = list(packets)
        if not packets:
            return 0
        self._chaos_gate("ingest_packets")

        if self.ingest_transforms:
            tags_list = self._extract_tags(packets, cols)
            count = 0
            for packet, tags in zip(packets, tags_list):
                if self._ingest("packets", packet, tags) is not None:
                    count += 1
            if self.obs is not None:
                self._record_ingest_obs("packets", count)
                self._update_shard_gauges()
            return count

        tags_list = self._extract_tags(packets, cols)
        # rids in input order — the global order the sharded query merge
        # reconstructs
        stored = list(map(StoredRecord, self._record_ids, packets,
                          tags_list, itertools.repeat(None)))
        if cols is not None:
            assignments = self.router.assign_columns(cols)
        else:
            assignments = np.asarray(self.router.assign_records(packets),
                                     dtype=np.int64)
        for shard_id, positions in enumerate(
                self.router.partition_positions(assignments)):
            if not len(positions):
                continue
            shard_cols = cols.take(positions) if cols is not None else None
            self._append_to_shard(self.shards[shard_id],
                                  [stored[p] for p in positions.tolist()],
                                  shard_cols)
        if self.obs is not None:
            self._record_ingest_obs("packets", len(stored))
            self._update_shard_gauges()
        return len(stored)

    def _append_to_shard(self, shard: DataStore, stored: List[StoredRecord],
                         cols: Optional[PacketColumns]) -> None:
        total = len(stored)
        offset = 0
        while offset < total:
            segment = shard._open_segment("packets")
            fresh = len(segment) == 0
            space = segment.capacity - len(segment)
            chunk = stored[offset:offset + space]
            segment.append_batch(chunk)
            if cols is not None and fresh:
                # pre-sliced columns stand in for the lazy rebuild
                segment.adopt_columns(cols.slice(offset, offset + len(chunk)))
            offset += len(chunk)

    def query(self, query: Query) -> List[StoredRecord]:
        obs = self.obs
        if obs is None:
            return execute_query_sharded(self, query,
                                         executor=self.executor)
        with obs.span("store.query", collection=query.collection,
                      shards=self.n_shards) as span:
            records = execute_query_sharded(self, query,
                                            executor=self.executor, obs=obs)
            span.set(rows=len(records))
        return records

    def shard_summary(self) -> List[Dict[str, int]]:
        """Per-shard packet record/segment counts (balance diagnostics)."""
        return [
            {"records": shard.count("packets"),
             "segments": len(shard._segments["packets"])}
            for shard in self.shards
        ]
