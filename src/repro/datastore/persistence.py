"""Data-store persistence.

A campus data store outlives any single process.  Export writes one
directory per store: a manifest, the packet collections in the binary
capture format (:mod:`repro.capture.pcapng`), and flows/logs as
JSON-lines.  Import reconstructs a fully indexed store (tags and
curated labels included).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.capture.flows import FlowRecord
from repro.capture.pcapng import read_packets, write_packets
from repro.capture.sensors import LogRecord
from repro.datastore.query import Query
from repro.datastore.store import DataStore

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


class PersistenceError(Exception):
    """Raised on malformed store directories."""


def _json_default(value):
    raise TypeError(f"not JSON serializable: {type(value)}")


def export_store(store: DataStore, directory: Union[str, Path]) -> Path:
    """Write the whole store to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    packets = store.query(Query(collection="packets", order_by_time=True))
    write_packets(directory / "packets.rpcp",
                  [stored.record for stored in packets])
    with (directory / "packets.meta.jsonl").open("w") as fh:
        for stored in packets:
            fh.write(json.dumps({"tags": stored.tags,
                                 "label": stored.label}) + "\n")

    with (directory / "flows.jsonl").open("w") as fh:
        for stored in store.query(Query(collection="flows",
                                        order_by_time=True)):
            row = dataclasses.asdict(stored.record)
            row["_label"] = stored.label
            fh.write(json.dumps(row, default=_json_default) + "\n")

    with (directory / "logs.jsonl").open("w") as fh:
        for stored in store.query(Query(collection="logs",
                                        order_by_time=True)):
            row = dataclasses.asdict(stored.record)
            row["_label"] = stored.label
            fh.write(json.dumps(row, default=_json_default) + "\n")

    manifest = {
        "format_version": FORMAT_VERSION,
        "counts": {name: store.count(name)
                   for name in ("packets", "flows", "logs")},
        "segment_capacity": store.segment_capacity,
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def import_store(directory: Union[str, Path],
                 metadata_extractor=None) -> DataStore:
    """Rebuild a store exported by :func:`export_store`.

    Tags are restored from the export (the extractor, if given, is only
    used for packets missing saved tags).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise PersistenceError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')}"
        )

    store = DataStore(
        metadata_extractor=metadata_extractor,
        segment_capacity=manifest.get("segment_capacity", 50_000),
    )

    packets = read_packets(directory / "packets.rpcp")
    meta_rows: List[Dict] = []
    meta_path = directory / "packets.meta.jsonl"
    if meta_path.exists():
        with meta_path.open() as fh:
            meta_rows = [json.loads(line) for line in fh if line.strip()]
    if meta_rows and len(meta_rows) != len(packets):
        raise PersistenceError("packet metadata length mismatch")
    store.ingest_packets(packets)
    if meta_rows:
        position = 0
        for segment in store.segments("packets"):
            for stored in segment.records:
                stored.tags = meta_rows[position].get("tags", {})
                stored.label = meta_rows[position].get("label")
                position += 1
            # tag/field indexes and column blocks are built lazily from
            # the records; restoring tags out-of-band invalidates them
            segment.invalidate_indexes()

    flows = []
    labels = []
    flows_path = directory / "flows.jsonl"
    if flows_path.exists():
        with flows_path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                labels.append(row.pop("_label", None))
                flows.append(FlowRecord(**row))
    store.ingest_flows(flows)
    _restore_labels(store, "flows", labels)

    logs = []
    labels = []
    logs_path = directory / "logs.jsonl"
    if logs_path.exists():
        with logs_path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                labels.append(row.pop("_label", None))
                logs.append(LogRecord(**row))
    store.ingest_logs(logs)
    _restore_labels(store, "logs", labels)
    return store


def _restore_labels(store: DataStore, collection: str,
                    labels: List[Optional[str]]) -> None:
    position = 0
    for segment in store.segments(collection):
        for stored in segment.records:
            if position < len(labels):
                stored.label = labels[position]
            position += 1
