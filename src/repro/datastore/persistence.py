"""Data-store persistence.

A campus data store outlives any single process.  Export writes one
directory per store: a manifest, the packet collections in the binary
capture format (:mod:`repro.capture.pcapng`), and flows/logs as
JSON-lines.  Import reconstructs a fully indexed store (tags and
curated labels included).

Export is **atomic**: everything is written into a sibling temp
directory which is swapped into place with ``os.replace`` only once
complete — a crash mid-export (real, or injected via a chaos
``persist.torn_write`` fault) leaves either the previous store or the
new one on disk, never a torn directory.  The manifest carries a SHA-256
checksum per data file; import verifies them, so a file truncated by
any path that bypassed the swap protocol is detected, not silently
half-loaded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.capture.flows import FlowRecord
from repro.capture.pcapng import read_packets, write_packets
from repro.capture.sensors import LogRecord
from repro.chaos.faults import FaultKind, TornWriteError
from repro.datastore.query import Query
from repro.datastore.store import DataStore

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1

#: the data files an export writes, in write order
DATA_FILES = ("packets.rpcp", "packets.meta.jsonl", "flows.jsonl",
              "logs.jsonl")


class PersistenceError(Exception):
    """Raised on malformed store directories."""


def _json_default(value):
    raise TypeError(f"not JSON serializable: {type(value)}")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _chaos_tear(path: Path, fault_injector) -> None:
    """Injected crash mid-write: truncate the file, then die."""
    if fault_injector is None:
        return
    if fault_injector.should_fire(FaultKind.PERSIST_TORN_WRITE,
                                  file=path.name):
        size = path.stat().st_size
        with path.open("r+b") as fh:
            fh.truncate(size // 2)
        raise TornWriteError(f"injected crash while writing {path.name}")


def _write_store_files(store: DataStore, directory: Path,
                       fault_injector) -> Dict[str, str]:
    """Write every data file into ``directory``; return checksums."""
    packets = store.query(Query(collection="packets", order_by_time=True))
    write_packets(directory / "packets.rpcp",
                  [stored.record for stored in packets])
    _chaos_tear(directory / "packets.rpcp", fault_injector)

    with (directory / "packets.meta.jsonl").open("w") as fh:
        for stored in packets:
            fh.write(json.dumps({"tags": stored.tags,
                                 "label": stored.label}) + "\n")
    _chaos_tear(directory / "packets.meta.jsonl", fault_injector)

    with (directory / "flows.jsonl").open("w") as fh:
        for stored in store.query(Query(collection="flows",
                                        order_by_time=True)):
            row = dataclasses.asdict(stored.record)
            row["_label"] = stored.label
            fh.write(json.dumps(row, default=_json_default) + "\n")
    _chaos_tear(directory / "flows.jsonl", fault_injector)

    with (directory / "logs.jsonl").open("w") as fh:
        for stored in store.query(Query(collection="logs",
                                        order_by_time=True)):
            row = dataclasses.asdict(stored.record)
            row["_label"] = stored.label
            fh.write(json.dumps(row, default=_json_default) + "\n")
    _chaos_tear(directory / "logs.jsonl", fault_injector)

    return {name: _sha256(directory / name) for name in DATA_FILES}


def _swap_into_place(tmp: Path, directory: Path) -> None:
    """Atomically promote ``tmp`` to ``directory``."""
    if directory.exists():
        backup = directory.parent / f"{directory.name}.old-{os.getpid()}"
        if backup.exists():
            shutil.rmtree(backup)
        os.replace(str(directory), str(backup))
        os.replace(str(tmp), str(directory))
        shutil.rmtree(backup)
    else:
        os.replace(str(tmp), str(directory))


def export_store(store: DataStore, directory: Union[str, Path],
                 fault_injector=None) -> Path:
    """Write the whole store to ``directory`` (created if needed).

    All files land in a sibling ``<name>.tmp-<pid>`` directory first and
    are swapped in with ``os.replace`` once the manifest (with per-file
    checksums) is written — any failure before the swap leaves the
    previous export untouched.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = directory.parent / f"{directory.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        checksums = _write_store_files(store, tmp, fault_injector)
        manifest = {
            "format_version": FORMAT_VERSION,
            "counts": {name: store.count(name)
                       for name in ("packets", "flows", "logs")},
            "segment_capacity": store.segment_capacity,
            "checksums": checksums,
        }
        (tmp / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        _swap_into_place(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def _verify_checksums(directory: Path, manifest: Dict) -> None:
    for name, expected in manifest.get("checksums", {}).items():
        path = directory / name
        if not path.exists():
            raise PersistenceError(f"manifest lists {name} but it is "
                                   f"missing from {directory}")
        actual = _sha256(path)
        if actual != expected:
            raise PersistenceError(
                f"checksum mismatch for {name}: the file is torn or "
                f"corrupt (expected {expected[:12]}…, got {actual[:12]}…)")


def import_store(directory: Union[str, Path],
                 metadata_extractor=None) -> DataStore:
    """Rebuild a store exported by :func:`export_store`.

    Tags are restored from the export (the extractor, if given, is only
    used for packets missing saved tags).  File checksums from the
    manifest are verified before any record is loaded.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise PersistenceError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')}"
        )
    _verify_checksums(directory, manifest)

    store = DataStore(
        metadata_extractor=metadata_extractor,
        segment_capacity=manifest.get("segment_capacity", 50_000),
    )

    packets = read_packets(directory / "packets.rpcp")
    meta_rows: List[Dict] = []
    meta_path = directory / "packets.meta.jsonl"
    if meta_path.exists():
        with meta_path.open() as fh:
            meta_rows = [json.loads(line) for line in fh if line.strip()]
    if meta_rows and len(meta_rows) != len(packets):
        raise PersistenceError("packet metadata length mismatch")
    store.ingest_packets(packets)
    if meta_rows:
        position = 0
        for segment in store.segments("packets"):
            for stored in segment.records:
                stored.tags = meta_rows[position].get("tags", {})
                stored.label = meta_rows[position].get("label")
                position += 1
            # tag/field indexes and column blocks are built lazily from
            # the records; restoring tags out-of-band invalidates them
            segment.invalidate_indexes()

    flows = []
    labels = []
    flows_path = directory / "flows.jsonl"
    if flows_path.exists():
        with flows_path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                labels.append(row.pop("_label", None))
                flows.append(FlowRecord(**row))
    store.ingest_flows(flows)
    _restore_labels(store, "flows", labels)

    logs = []
    labels = []
    logs_path = directory / "logs.jsonl"
    if logs_path.exists():
        with logs_path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                labels.append(row.pop("_label", None))
                logs.append(LogRecord(**row))
    store.ingest_logs(logs)
    _restore_labels(store, "logs", labels)
    return store


def _restore_labels(store: DataStore, collection: str,
                    labels: List[Optional[str]]) -> None:
    position = 0
    for segment in store.segments(collection):
        for stored in segment.records:
            if position < len(labels):
                stored.label = labels[position]
            position += 1
