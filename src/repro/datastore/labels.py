"""Labeling jobs: attach curated ground-truth labels to stored records.

The paper's data problem (§2) is that "labelled data ... is largely
non-existent".  In this platform, labels enter the store through an
explicit curation job that consults the incident registry (ground
truth from :class:`repro.events.base.GroundTruth`, standing in for the
IT organisation's ticketing system) — *not* by trusting whatever the
capture pipeline stamped on records.  The simulator's provenance label
is retained on the raw record, which lets tests measure how accurate
window-based curation actually is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datastore.query import Query


@dataclass
class LabelSummary:
    """Result of one labeling job."""

    collection: str
    records_seen: int = 0
    records_labeled: int = 0
    by_label: Dict[str, int] = field(default_factory=dict)
    agreement_with_provenance: Optional[float] = None


class Labeler:
    """Applies event-window labels to a store collection."""

    def __init__(self, store, ground_truth):
        self.store = store
        self.ground_truth = ground_truth

    def _endpoints(self, collection: str, record):
        if collection == "logs":
            return (record.attrs.get("src_ip", ""),
                    record.attrs.get("dst_ip", ""))
        return record.src_ip, record.dst_ip

    def label_collection(self, collection: str) -> LabelSummary:
        """Label every record from the ground-truth event windows."""
        from repro.datastore.schema import SCHEMAS

        schema_time = SCHEMAS[collection].time_of
        summary = LabelSummary(collection=collection)
        agreements = 0
        comparable = 0
        for stored in self.store.query(Query(collection=collection,
                                             order_by_time=False)):
            record = stored.record
            src, dst = self._endpoints(collection, record)
            label = self.ground_truth.label_for(schema_time(record), src, dst)
            stored.label = label
            summary.records_seen += 1
            if label != "benign":
                summary.records_labeled += 1
            summary.by_label[label] = summary.by_label.get(label, 0) + 1
            provenance = getattr(record, "label", None)
            if provenance is not None:
                comparable += 1
                if provenance == label:
                    agreements += 1
        if comparable:
            summary.agreement_with_provenance = agreements / comparable
        return summary

    def label_all(self) -> Dict[str, LabelSummary]:
        return {
            collection: self.label_collection(collection)
            for collection in ("packets", "flows", "logs")
        }
