"""Cost-based query planning over a shared QueryPlan IR.

Every executor — linear-equivalent serial, vectorized, sharded, and
the approximate sketch path — now consumes one plan shape instead of
re-deriving control flow per query.  A plan is a small tree of logical
ops:

* **SegmentPrune** — a segment ruled out before any scan: empty, out
  of the time range, provably value-free (exact map / Bloom from the
  per-segment stats block; false positives only ever *admit*, so
  pruning stays exact), or on a shard the time×flow-hash router proves
  cannot hold the query's flow.
* **TimeSlice** — the per-segment scan window (binary-searched slice
  for time-sorted blocks, mask otherwise).
* **PredicateApply** — one ``field == value`` filter, in the cost
  model's cheapest-first order; after a selective leading predicate
  the remaining ones evaluate *gathered* at its survivors instead of
  over whole columns.
* **SketchAnswer** — a COUNT / DISTINCT / heavy-hitter aggregate
  short-circuited to the stats sketches, behind an
  :class:`ErrorBudget` with exact fallback.
* **Merge** — the cross-segment combine: the serial time-sort, or the
  sharded ``(time, rid)`` merge.

The cost model runs entirely on the per-segment
:class:`~repro.datastore.stats.SegmentStats` blocks (built at seal
time when the store opts in, or explicitly via
``store.build_stats()``); a segment without fresh stats plans exactly
like the pre-planner executor — predicates in declaration order, no
gather, no stats pruning — so planning degrades to the old behaviour,
never below it.

Exact-mode planned execution is **bit-identical** to
:func:`~repro.datastore.query.execute_query_linear`: predicate
reordering commutes over AND-masks, gathered evaluation selects the
same positions, and pruning only removes segments that provably
contribute nothing.  ``tests/datastore/test_planner_equivalence``
holds every path to the linear oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datastore import schema as schemas
from repro.datastore.query import (
    _RID_KEY,
    _TIME_KEY,
    _TIME_RID_KEY,
    Query,
    _columnar_scan,
    _observe_query,
    _record_scan,
    _scan_segment,
)
from repro.datastore.stats import HLL_P, HLL_REL_BOUND, stat_key

#: engage gathered predicate evaluation when the leading predicate's
#: estimated selectivity is at or below this fraction...
GATHER_SELECTIVITY = 0.05
#: ...and at least this many predicates are in play (a single
#: predicate has nobody downstream to gather for).
GATHER_MIN_PREDICATES = 2


# -- IR ----------------------------------------------------------------------


@dataclass
class PlanNode:
    """One logical op in a query plan.

    ``detail`` holds op-specific attributes for EXPLAIN;
    ``estimated_rows`` is the cost model's guess, ``actual_rows`` is
    filled in by execution so estimate-vs-actual drift is visible in
    both :meth:`QueryPlan.explain` and the obs counters.
    """

    op: str
    detail: Dict[str, object] = field(default_factory=dict)
    children: List["PlanNode"] = field(default_factory=list)
    estimated_rows: Optional[float] = None
    actual_rows: Optional[int] = None

    def label(self) -> str:
        parts = [self.op]
        parts.extend(
            f"{key}={value:.4g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in self.detail.items())
        if self.estimated_rows is not None:
            parts.append(f"est_rows={self.estimated_rows:.1f}")
        if self.actual_rows is not None:
            parts.append(f"actual_rows={self.actual_rows}")
        return " ".join(parts)

    def render(self, indent: int = 0) -> List[str]:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


@dataclass
class SegmentPlan:
    """Execution decisions for one segment: pruned (with the reason),
    or scanned with an ordered predicate sequence and gather choice.

    The EXPLAIN node is *not* built here: planning sits on the hot
    query path, so the decisions stay as plain fields and
    :attr:`node` materializes the render tree only when someone asks
    (``explain()``, tooling)."""

    segment: object
    pruned: Optional[str]               # empty | time | shard | stats
    where_items: List[Tuple[str, object]]
    gather: bool
    estimated_rows: float
    sels: Dict[str, Optional[float]] = field(default_factory=dict)
    time_range: Optional[Tuple] = None
    actual_rows: Optional[int] = None

    @property
    def node(self) -> PlanNode:
        if self.pruned is not None:
            return PlanNode(
                "SegmentPrune",
                detail={"seg": self.segment.segment_id,
                        "reason": self.pruned},
                estimated_rows=0.0)
        detail: Dict[str, object] = {
            "seg": self.segment.segment_id,
            "range": _fmt_range(self.time_range),
            "path": "vectorized" if self.segment.schema.columnar
            else "record",
        }
        if self.gather:
            detail["gather"] = True
        node = PlanNode("TimeSlice", detail=detail,
                        estimated_rows=self.estimated_rows,
                        actual_rows=self.actual_rows)
        for fld, value in self.where_items:
            predicate_detail: Dict[str, object] = {
                "field": fld, "value": repr(value),
            }
            sel = self.sels.get(fld)
            if sel is not None:
                predicate_detail["sel"] = sel
            node.children.append(PlanNode("PredicateApply",
                                          detail=predicate_detail))
        return node


@dataclass
class QueryPlan:
    """A planned query: per-segment decisions under one Merge root."""

    query: Query
    segment_plans: List[SegmentPlan]
    root: PlanNode
    #: the Merge node itself — ``root`` may later be wrapped in a
    #: SketchAnswer node, but per-segment children always hang here.
    merge: PlanNode = None

    def explain(self) -> str:
        """Human-readable plan tree (estimates, prune reasons, and —
        after execution — actual row counts per node)."""
        if self.merge is not None and self.segment_plans:
            self.merge.children = [sp.node for sp in self.segment_plans]
        return "\n".join(self.root.render())

    @property
    def scanned(self) -> int:
        return sum(1 for sp in self.segment_plans if sp.pruned is None)

    @property
    def pruned(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for sp in self.segment_plans:
            if sp.pruned is not None:
                reasons[sp.pruned] = reasons.get(sp.pruned, 0) + 1
        return reasons


# -- error budgets -----------------------------------------------------------


@dataclass(frozen=True)
class ErrorBudget:
    """Maximum tolerated relative error for an approximate answer."""

    rel: float

    def __post_init__(self):
        if not 0 <= self.rel:
            raise ValueError("error budget must be non-negative")


def within(rel: float) -> ErrorBudget:
    """``Query(..., approx=within(0.01))``: accept sketch answers whose
    composed error bound stays within ``rel`` of the estimate."""
    return ErrorBudget(rel=float(rel))


@dataclass
class AggregateAnswer:
    """An aggregate result plus its provenance.

    ``source`` is ``"sketch"`` (stats only), ``"hybrid"`` (stats for
    fully covered segments, exact scans for the rest), or ``"exact"``
    (budget missing/exceeded, or shape ineligible).  ``bound`` is the
    composed worst-case absolute error — 0 whenever the answer is
    exact.
    """

    value: object
    bound: int
    source: str
    plan: QueryPlan


# -- planning ----------------------------------------------------------------


def _pruned(segment, reason: str) -> SegmentPlan:
    return SegmentPlan(segment=segment, pruned=reason, where_items=[],
                       gather=False, estimated_rows=0.0)


def _time_fraction(segment, time_range) -> float:
    """Estimated fraction of the segment inside the query window,
    assuming roughly uniform arrivals (cost estimate only)."""
    if time_range is None:
        return 1.0
    lo, hi = segment.min_time, segment.max_time
    if lo is None or hi is None \
            or not (math.isfinite(lo) and math.isfinite(hi)):
        return 1.0
    start, end = time_range
    left = lo if start is None or not math.isfinite(start) \
        else max(lo, start)
    right = hi if end is None or not math.isfinite(end) else min(hi, end)
    if right < left:
        return 0.0
    if hi == lo:
        return 1.0
    return min(1.0, (right - left) / (hi - lo))


def _fmt_range(time_range) -> str:
    if time_range is None:
        return "*"
    start, end = time_range
    return "[{}, {}]".format("*" if start is None else start,
                             "*" if end is None else end)


def _plan_segment(segment, query: Query,
                  allowed: Optional[set]) -> SegmentPlan:
    if allowed is not None and id(segment) not in allowed:
        return _pruned(segment, "shard")
    if not segment.records:
        return _pruned(segment, "empty")
    if query.time_range is not None and not segment.overlaps(
            *query.time_range):
        return _pruned(segment, "time")

    raw = list(query.where.items())
    stats = segment.stats()
    sels: Dict[str, Optional[float]] = {}
    if stats is not None:
        for fld, value in raw:
            column = stats.column(fld)
            answer = column.count_estimate(value) \
                if column is not None else None
            if answer is None:
                sels[fld] = None
                continue
            # A zero estimate proves absence on every representation:
            # exact maps and Blooms answer membership directly, and
            # count-min never under-counts.
            if answer[0] == 0:
                return _pruned(segment, "stats")
            sels[fld] = min(1.0, answer[0] / column.n) if column.n \
                else None

    gather = False
    items = raw
    if stats is not None and len(raw) >= GATHER_MIN_PREDICATES:
        # Stable cheapest-first order; unknown selectivity sorts last
        # in declaration order.  AND-masks commute, so any order is
        # answer-preserving — only the work changes.
        order = sorted(range(len(raw)),
                       key=lambda i: (sels.get(raw[i][0]) is None,
                                      sels.get(raw[i][0]) or 1.0, i))
        items = [raw[i] for i in order]
        lead = sels.get(items[0][0])
        gather = lead is not None and lead <= GATHER_SELECTIVITY

    estimate = float(len(segment.records))
    estimate *= _time_fraction(segment, query.time_range)
    for fld, _ in items:
        sel = sels.get(fld)
        if sel is not None:
            estimate *= sel

    return SegmentPlan(segment=segment, pruned=None, where_items=items,
                       gather=gather, estimated_rows=estimate, sels=sels,
                       time_range=query.time_range)


def _shard_allowed_ids(store, query: Query) -> Optional[set]:
    """Segment ids (by identity) the router admits, or None = all.

    Exact pre-scatter shard pruning: only when the query fixes the
    full 5-tuple flow key with scalar values and bounds the time range
    on both ends can the router enumerate the windows in range and
    recompute each window's shard — every matching packet must have
    routed to one of those shards at ingest.
    """
    router = getattr(store, "router", None)
    shards = getattr(store, "shards", None)
    if router is None or shards is None or query.collection != "packets":
        return None
    if getattr(router, "n_shards", 1) <= 1 or query.time_range is None:
        return None
    where = query.where
    if not all(f in where for f in ("src_ip", "dst_ip", "src_port",
                                    "dst_port", "protocol")):
        return None
    src_ip, dst_ip = where["src_ip"], where["dst_ip"]
    if not (isinstance(src_ip, str) and isinstance(dst_ip, str)):
        return None
    ints = []
    for fld in ("src_port", "dst_port", "protocol"):
        value = where[fld]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        value = float(value)
        if not (math.isfinite(value) and value.is_integer()):
            return None
        ints.append(int(value))
    candidates = router.shards_for_flow(src_ip, dst_ip, *ints,
                                        *query.time_range)
    if candidates is None:
        return None
    allowed: set = set()
    for shard_id in candidates:
        for segment in shards[shard_id]._segments["packets"]:
            allowed.add(id(segment))
    return allowed


def plan_query(store, query: Query) -> QueryPlan:
    """Build the QueryPlan for ``query`` over ``store``'s segments."""
    allowed = _shard_allowed_ids(store, query)
    plans: List[SegmentPlan] = []
    total = 0.0
    for segment in store.segments(query.collection):
        sp = _plan_segment(segment, query, allowed)
        plans.append(sp)
        if sp.pruned is None:
            total += sp.estimated_rows
    root = PlanNode("Merge", detail={
        "collection": query.collection,
        "segments": len(plans),
        "scanned": sum(1 for sp in plans if sp.pruned is None),
        "order_by_time": query.order_by_time,
        "limit": query.limit,
    }, estimated_rows=total)
    return QueryPlan(query=query, segment_plans=plans, root=root,
                     merge=root)


# -- exact execution ---------------------------------------------------------


def _scan_planned(sp: SegmentPlan, query: Query):
    """(pairs, came-out-ordered, columnar) for one planned segment."""
    segment = sp.segment
    cols = segment.columns()
    if cols is not None:
        pairs = _columnar_scan(segment, cols, query,
                               where_items=sp.where_items,
                               gather=sp.gather)
        return pairs, query.order_by_time, True
    pairs, ordered = _record_scan(segment, query)
    return pairs, ordered, False


def _scan_contributing(contributing: List[SegmentPlan], query: Query):
    runs = []
    columnar = True
    for sp in contributing:
        scanned = _scan_planned(sp, query)
        columnar = columnar and scanned[2]
        sp.actual_rows = len(scanned[0])
        if scanned[0]:
            runs.append(scanned)
    return runs, columnar


def _merge_runs(runs, query: Query) -> List:
    if not runs:
        return []
    if len(runs) == 1:
        # Single contributing segment: skip the global re-sort when its
        # scan already came out time-ordered.
        results = runs[0][0]
        if query.order_by_time and not runs[0][1]:
            results.sort(key=_TIME_KEY)
    else:
        results = [pair for pairs, _, _ in runs for pair in pairs]
        if query.order_by_time:
            results.sort(key=_TIME_KEY)
    records = [stored for _, stored in results]
    if query.limit is not None:
        records = records[: query.limit]
    return records


def _observe_plan(obs, plan: QueryPlan) -> None:
    """Per-plan prune/row counters (estimate-vs-actual drift)."""
    metrics = obs.metrics
    scanned = plan.scanned
    if scanned:
        metrics.counter("repro_query_plan_segments_total",
                        result="scanned").inc(scanned)
    for reason, count in plan.pruned.items():
        metrics.counter("repro_query_plan_segments_total",
                        result=f"pruned_{reason}").inc(count)
    metrics.counter("repro_query_plan_rows_total", kind="estimated").inc(
        int(round(plan.root.estimated_rows or 0.0)))
    metrics.counter("repro_query_plan_rows_total", kind="actual").inc(
        plan.root.actual_rows or 0)


def execute_plan(store, plan: QueryPlan, obs=None) -> List:
    """Serial planned execution; bit-identical to the linear oracle."""
    query = plan.query
    contributing = [sp for sp in plan.segment_plans if sp.pruned is None]
    if obs is None:
        runs, _ = _scan_contributing(contributing, query)
        records = _merge_runs(runs, query)
        plan.root.actual_rows = len(records)
        return records
    started = obs.clock.now()
    with obs.span("query.plan.scan", collection=query.collection,
                  segments=len(contributing)) as span:
        runs, columnar = _scan_contributing(contributing, query)
        span.set(runs=len(runs))
    with obs.span("query.plan.merge", runs=len(runs)):
        records = _merge_runs(runs, query)
    plan.root.actual_rows = len(records)
    _observe_plan(obs, plan)
    _observe_query(obs, started, len(records), columnar)
    return records


def _parallel_plan_triples(contributing: List[SegmentPlan], query: Query,
                           executor):
    """Planned scatter: workers get each segment's ordered predicate
    sequence and gather choice; None when the kernel is ineligible."""
    from repro.parallel.kernels import scatter_query
    orders = {sp.segment.segment_id: (sp.where_items, sp.gather)
              for sp in contributing}
    scattered = scatter_query([sp.segment for sp in contributing], query,
                              executor, segment_orders=orders)
    if scattered is None:
        return None
    by_identity = {id(sp.segment): sp for sp in contributing}
    triples: List[Tuple[float, int, object]] = []
    for segment, positions in scattered:
        sp = by_identity.get(id(segment))
        if sp is not None:
            sp.actual_rows = len(positions)
        records = segment.records
        ts = segment.columns().timestamp
        for p in positions.tolist():
            stored = records[p]
            triples.append((float(ts[p]), stored.rid, stored))
    return triples


def execute_plan_sharded(store, plan: QueryPlan, executor=None,
                         obs=None) -> List:
    """Planned execution with the deterministic ``(time, rid)`` merge.

    Scans each contributing segment (in worker processes when an
    eligible ``executor`` is supplied) and reconstructs global batch
    input order — bit-identical to :func:`execute_plan` on a serial
    store fed the same batches.
    """
    query = plan.query
    contributing = [sp for sp in plan.segment_plans if sp.pruned is None]
    if obs is not None:
        started = obs.clock.now()
    columnar = True
    triples = None
    if executor is not None and executor.parallel:
        triples = _parallel_plan_triples(contributing, query, executor)
    if triples is None:
        triples = []
        for sp in contributing:
            pairs, _, seg_columnar = _scan_planned(sp, query)
            columnar = columnar and seg_columnar
            sp.actual_rows = len(pairs)
            triples.extend((t, stored.rid, stored) for t, stored in pairs)
    triples.sort(key=_TIME_RID_KEY if query.order_by_time else _RID_KEY)
    records = [stored for _, _, stored in triples]
    if query.limit is not None:
        records = records[: query.limit]
    plan.root.actual_rows = len(records)
    if obs is not None:
        _observe_plan(obs, plan)
        _observe_query(obs, started, len(records), columnar)
    return records


# -- approximate answers -----------------------------------------------------


def _fully_covered(segment, time_range) -> bool:
    """Every record of the segment falls inside the query window."""
    if time_range is None:
        return True
    lo, hi = segment.min_time, segment.max_time
    if lo is None:
        return True
    start, end = time_range
    if start is not None and lo < start:
        return False
    if end is not None and hi > end:
        return False
    return True


def _wrap_sketch(plan: QueryPlan, kind: str, source: str, bound: int,
                 budget: Optional[ErrorBudget], rows: Optional[int]) -> None:
    detail: Dict[str, object] = {"kind": kind, "source": source}
    if bound:
        detail["bound"] = bound
    if budget is not None:
        detail["budget"] = budget.rel
    plan.root = PlanNode("SketchAnswer", detail=detail,
                         children=[plan.root], actual_rows=rows)


def _observe_sketch(obs, kind: str, result: str) -> None:
    if obs is not None:
        obs.metrics.counter("repro_query_plan_sketch_total", kind=kind,
                            result=result).inc()


def _count_shape(query: Query) -> bool:
    return (not query.tags and query.predicate is None
            and query.limit is None and len(query.where) <= 1)


def _sketch_count(plan: QueryPlan, query: Query) -> Tuple[int, int, str]:
    """(estimate, bound, source) from stats, exact-scanning segments
    the stats cannot cover (stale, partial time overlap, unsummarized
    field)."""
    where = list(query.where.items())
    estimate = 0
    bound = 0
    exact_segments = 0
    for sp in plan.segment_plans:
        if sp.pruned is not None:
            continue
        segment = sp.segment
        stats = segment.stats()
        if stats is not None and _fully_covered(segment, query.time_range):
            if not where:
                estimate += stats.n
                continue
            column = stats.column(where[0][0])
            answer = column.count_estimate(where[0][1]) \
                if column is not None else None
            if answer is not None:
                estimate += answer[0]
                bound += answer[1]
                continue
        scanned = _scan_segment(segment, query)
        exact_segments += 1
        if scanned is not None:
            estimate += len(scanned[0])
    return estimate, bound, "hybrid" if exact_segments else "sketch"


def execute_count(store, query: Query, obs=None) -> AggregateAnswer:
    """``COUNT(*)`` of the query's matches, sketch-backed when allowed.

    With ``query.approx`` set and a sketch-answerable shape (at most
    one equality predicate; no tags, residual predicate, or limit),
    the count comes from the stats blocks when the composed error
    bound fits the budget; otherwise — and always without a budget —
    it falls back to exact planned execution.
    """
    plan = plan_query(store, query)
    budget: Optional[ErrorBudget] = query.approx
    if budget is not None and _count_shape(query):
        if obs is not None:
            with obs.span("query.plan.sketch", kind="count"):
                value, bound, source = _sketch_count(plan, query)
        else:
            value, bound, source = _sketch_count(plan, query)
        if bound <= budget.rel * max(value, 1):
            if obs is not None:
                _observe_plan(obs, plan)
            _wrap_sketch(plan, "count", source, bound, budget, value)
            _observe_sketch(obs, "count", "hit")
            return AggregateAnswer(value=value, bound=bound, source=source,
                                   plan=plan)
    if budget is not None:
        _observe_sketch(obs, "count", "fallback")
    records = execute_plan(store, plan, obs=obs)
    _wrap_sketch(plan, "count", "exact", 0, budget, len(records))
    return AggregateAnswer(value=len(records), bound=0, source="exact",
                           plan=plan)


def _distinct_shape(query: Query) -> bool:
    return (not query.where and not query.tags and query.predicate is None
            and query.limit is None)


def _stats_columns(plan: QueryPlan, query: Query, fld: str):
    """One fresh ColumnStats per contributing segment, or None when
    any contributing segment lacks usable stats for ``fld``."""
    parts = []
    for sp in plan.segment_plans:
        if sp.pruned is not None:
            continue
        stats = sp.segment.stats()
        if stats is None or not _fully_covered(sp.segment,
                                               query.time_range):
            return None
        column = stats.column(fld)
        if column is None:
            return None
        parts.append(column)
    return parts


def _exact_key(record, field_of, fld):
    value = field_of(record, fld)
    key = stat_key(value)
    return value if key is None else key


def execute_distinct(store, query: Query, fld: str,
                     obs=None) -> AggregateAnswer:
    """Distinct count of ``fld`` over the query's matches.

    Sketch path (budget set; no predicates of any kind): merged exact
    key sets when every segment kept one (bound 0), merged HLL
    registers otherwise (two-sigma relative bound).  Values fold
    through :func:`~repro.datastore.stats.stat_key` on every path, so
    ``443`` and ``443.0`` count once.
    """
    budget: Optional[ErrorBudget] = query.approx
    plan = plan_query(store, query)
    if budget is not None and _distinct_shape(query):
        if obs is not None:
            with obs.span("query.plan.sketch", kind="distinct", field=fld):
                answer = _sketch_distinct(plan, query, fld)
        else:
            answer = _sketch_distinct(plan, query, fld)
        if answer is not None:
            value, bound = answer
            if bound <= budget.rel * max(value, 1):
                if obs is not None:
                    _observe_plan(obs, plan)
                _wrap_sketch(plan, "distinct", "sketch", bound, budget,
                             value)
                _observe_sketch(obs, "distinct", "hit")
                return AggregateAnswer(value=value, bound=bound,
                                       source="sketch", plan=plan)
    if budget is not None:
        _observe_sketch(obs, "distinct", "fallback")
    records = execute_plan(store, plan, obs=obs)
    field_of = schemas.SCHEMAS[query.collection].field_of
    value = len({_exact_key(stored.record, field_of, fld)
                 for stored in records})
    _wrap_sketch(plan, "distinct", "exact", 0, budget, value)
    return AggregateAnswer(value=value, bound=0, source="exact", plan=plan)


def _sketch_distinct(plan: QueryPlan, query: Query,
                     fld: str) -> Optional[Tuple[int, int]]:
    parts = _stats_columns(plan, query, fld)
    if parts is None:
        return None
    if not parts:
        return 0, 0
    if all(p.counts is not None for p in parts):
        keys: set = set()
        for p in parts:
            keys.update(p.counts)
        return len(keys), 0
    # Call-time import keeps repro.deploy (and through it the learning
    # package) out of the datastore import graph; see stats.py.
    from repro.deploy.sketches import HyperLogLog

    hll = HyperLogLog(p=HLL_P)
    for p in parts:
        hll.merge(p.hll)
    value = int(round(hll.estimate()))
    return value, int(math.ceil(HLL_REL_BOUND * value))


def execute_heavy_hitters(store, query: Query, fld: str, k: int = 8,
                          obs=None) -> AggregateAnswer:
    """Top-``k`` ``(value, count)`` pairs of ``fld`` over the matches.

    Sketch path: per-segment top-k candidates unioned, each re-costed
    against every segment's counts (exact map or count-min — never an
    under-count), re-ranked, budget-checked on the worst per-candidate
    relative bound.  Candidates are limited to per-segment top-k
    unions; a hitter spread thinly below every segment's top-k can be
    missed — the exact fallback cannot.
    """
    budget: Optional[ErrorBudget] = query.approx
    plan = plan_query(store, query)
    if budget is not None and _distinct_shape(query):
        if obs is not None:
            with obs.span("query.plan.sketch", kind="heavy_hitters",
                          field=fld):
                answer = _sketch_heavy_hitters(plan, query, fld, k)
        else:
            answer = _sketch_heavy_hitters(plan, query, fld, k)
        if answer is not None:
            top, bound, rel = answer
            if rel <= budget.rel:
                if obs is not None:
                    _observe_plan(obs, plan)
                _wrap_sketch(plan, "heavy_hitters", "sketch", bound,
                             budget, len(top))
                _observe_sketch(obs, "heavy_hitters", "hit")
                return AggregateAnswer(value=top, bound=bound,
                                       source="sketch", plan=plan)
    if budget is not None:
        _observe_sketch(obs, "heavy_hitters", "fallback")
    records = execute_plan(store, plan, obs=obs)
    field_of = schemas.SCHEMAS[query.collection].field_of
    tallies: Dict[object, int] = {}
    for stored in records:
        key = _exact_key(stored.record, field_of, fld)
        tallies[key] = tallies.get(key, 0) + 1
    ranked = sorted(tallies.items(), key=lambda kv: (-kv[1], str(kv[0])))
    top = ranked[:k]
    _wrap_sketch(plan, "heavy_hitters", "exact", 0, budget, len(top))
    return AggregateAnswer(value=top, bound=0, source="exact", plan=plan)


def _sketch_heavy_hitters(plan: QueryPlan, query: Query, fld: str, k: int):
    parts = _stats_columns(plan, query, fld)
    if parts is None:
        return None
    candidates: Dict[object, None] = {}
    for p in parts:
        for key, _ in p.topk:
            candidates.setdefault(key, None)
    costed = []
    for key in candidates:
        estimate = 0
        bound = 0
        for p in parts:
            answer = p.count_estimate(key)
            if answer is None:
                return None
            estimate += answer[0]
            bound += answer[1]
        costed.append((key, estimate, bound))
    costed.sort(key=lambda t: (-t[1], str(t[0])))
    top = costed[:k]
    bound = max((b for _, _, b in top), default=0)
    rel = max((b / max(estimate, 1) for _, estimate, b in top), default=0.0)
    return [(key, estimate) for key, estimate, _ in top], bound, rel
