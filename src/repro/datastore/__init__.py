"""The campus data store.

§5: "Comprising a single platform for collecting, storing, indexing,
mining, and visualizing network data, a university network's data
store ... becomes the single source of all campus network-related
data."  This subpackage implements that platform:

* :mod:`repro.datastore.store` — the :class:`DataStore` itself:
  append-only segmented collections for packets, flow records, and
  sensor logs.
* :mod:`repro.datastore.segments` — sealed segments with local indexes.
* :mod:`repro.datastore.index` — time, hash, and inverted tag indexes.
* :mod:`repro.datastore.query` — the query engine (index-accelerated
  filters, aggregation).
* :mod:`repro.datastore.planner` — cost-based query planning over a
  shared QueryPlan IR, with sketch-backed approximate aggregates.
* :mod:`repro.datastore.stats` — per-segment column statistics (the
  cost model's input).
* :mod:`repro.datastore.labels` — ground-truth labeling jobs.
* :mod:`repro.datastore.linking` — cross-source record linking
  (packets <-> flows <-> logs), the "linked and indexed" property.
* :mod:`repro.datastore.retention` — retention policy enforcement.
* :mod:`repro.datastore.tiers` — streaming ingestion, tiered storage
  (hot memtable → warm sealed segments → compressed cold mmap), and
  the background compactor.
"""

from repro.datastore.store import DataStore, StoredRecord
from repro.datastore.query import Query, Aggregation
from repro.datastore.planner import AggregateAnswer, ErrorBudget, \
    QueryPlan, within
from repro.datastore.labels import Labeler, LabelSummary
from repro.datastore.linking import LinkedView, RecordLinker
from repro.datastore.retention import RetentionPolicy, RetentionReport
from repro.datastore.persistence import export_store, import_store, \
    PersistenceError
from repro.datastore.tiers import ColdSegment, Compactor, IngestQueue, \
    StreamingIngestor, TieredDataStore, TieredShardedDataStore, TierPolicy

__all__ = [
    "export_store",
    "import_store",
    "PersistenceError",
    "DataStore",
    "StoredRecord",
    "Query",
    "Aggregation",
    "AggregateAnswer",
    "ErrorBudget",
    "QueryPlan",
    "within",
    "Labeler",
    "LabelSummary",
    "LinkedView",
    "RecordLinker",
    "RetentionPolicy",
    "RetentionReport",
    "TierPolicy",
    "TieredDataStore",
    "TieredShardedDataStore",
    "ColdSegment",
    "Compactor",
    "IngestQueue",
    "StreamingIngestor",
]
