"""Compilation and in-network execution of deployable models.

Step (iii) of Fig. 2: "compile the deployable learning model ... into
a target-specific program (e.g., P4) and configure the programmable
switches (e.g., Barefoot Tofino)".

* :mod:`repro.deploy.ir` — match-action intermediate representation.
* :mod:`repro.deploy.compiler` — decision-tree -> match-action tables
  with feature quantization and range-to-ternary expansion.
* :mod:`repro.deploy.p4gen` — P4-16-style source emission.
* :mod:`repro.deploy.switch` — an emulated multi-stage programmable
  switch: sketch-based sensing, table-based inference, and mitigation
  actions wired back into the traffic simulator.
* :mod:`repro.deploy.resources` — Tofino-like resource model (stages,
  TCAM/SRAM) used for the §2 concurrent-task-scale experiment.
* :mod:`repro.deploy.sketches` — count-min / Bloom / HLL primitives.
* :mod:`repro.deploy.placement` — sense/infer/react latency by
  placement (data plane vs control plane vs cloud).
"""

from repro.deploy.ir import (
    FieldMatch,
    MatchActionTable,
    MatchKind,
    SwitchProgram,
    TableEntry,
)
from repro.deploy.compiler import CompileResult, FeatureQuantizer, compile_tree
from repro.deploy.p4gen import emit_p4
from repro.deploy.resources import FitReport, SwitchResourceModel
from repro.deploy.sketches import BloomFilter, CountMinSketch, HyperLogLog
from repro.deploy.switch import EmulatedSwitch, SwitchConfig
from repro.deploy.placement import Placement, PLACEMENTS, loop_latency

__all__ = [
    "MatchKind",
    "FieldMatch",
    "TableEntry",
    "MatchActionTable",
    "SwitchProgram",
    "FeatureQuantizer",
    "CompileResult",
    "compile_tree",
    "emit_p4",
    "SwitchResourceModel",
    "FitReport",
    "CountMinSketch",
    "BloomFilter",
    "HyperLogLog",
    "EmulatedSwitch",
    "SwitchConfig",
    "Placement",
    "PLACEMENTS",
    "loop_latency",
]
