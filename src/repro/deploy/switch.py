"""Emulated programmable border switch.

The switch closes the paper's fast control loop (Fig. 2) inside the
simulated campus:

* **sense** — every border packet updates count-min/Bloom summaries and
  per-(window, external endpoint) counters, the same aggregation the
  offline featurizer uses (so trained models transfer);
* **infer** — at each window boundary the compiled match-action table
  classifies every tracked endpoint;
* **react** — verdicts whose table confidence clears the configured
  threshold (the §2 "at least 90%" knob) install a mitigation — drop or
  rate-limit — on the fluid network for a bounded duration.

Reaction timing follows the placement model: a data-plane deployment
reacts within the window; a control-plane/cloud deployment adds its
loop latency before the mitigation lands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.capture.metadata import MetadataExtractor
from repro.chaos.faults import FaultKind, MitigationError
from repro.chaos.resilience import CallableClock, CircuitBreaker
from repro.deploy.compiler import CompileResult
from repro.deploy.placement import PLACEMENTS
from repro.deploy.sketches import BloomFilter, CountMinSketch
from repro.learning.features import FeatureConfig, WindowExample, \
    SourceWindowFeaturizer
from repro.netsim.packets import PacketRecord


@dataclass
class SwitchConfig:
    """Runtime configuration for the deployed program."""

    window_s: float = 5.0
    grace_s: float = 2.0
    min_packets: int = 4
    confidence_threshold: float = 0.9
    placement: str = "data_plane"
    mitigation_duration_s: float = 30.0
    max_tracked_keys: int = 4096
    #: class name -> ("drop", None) or ("rate_limit", cap_bps)
    bindings: Dict[str, Tuple[str, Optional[float]]] = field(
        default_factory=lambda: {"*": ("drop", None)}
    )
    benign_class: str = "benign"
    shadow: bool = False           # log verdicts but never act


@dataclass
class Detection:
    """One non-benign verdict."""

    window_start: float
    endpoint: str
    class_name: str
    confidence: float
    decided_at: float              # when the verdict was computed
    effective_at: float            # when the mitigation took hold
    acted: bool
    feature_vector: List[float] = field(default_factory=list)


class EmulatedSwitch:
    """Executes a compiled program against live border traffic."""

    #: breaker state -> gauge value (0 healthy .. 1 open)
    _BREAKER_GAUGE = {"closed": 0.0, "half_open": 0.5, "open": 1.0}

    def __init__(self, network, compile_result: CompileResult,
                 config: Optional[SwitchConfig] = None,
                 verify: bool = True, fault_injector=None,
                 react_breaker: Optional[CircuitBreaker] = None, bus=None,
                 obs=None):
        # Load-path gate: a structurally or semantically broken program
        # never attaches to the network (mirrors a real switch driver
        # rejecting an invalid binary at load time).  Imported lazily:
        # repro.verify depends on repro.deploy.ir, so a module-level
        # import here would close a package-init cycle.
        if verify:
            from repro.verify.diagnostics import ProgramVerificationError
            from repro.verify.program import verify_program

            report = verify_program(compile_result.program)
            if not report.ok:
                raise ProgramVerificationError(report)
        self.network = network
        self.result = compile_result
        self.config = config or SwitchConfig()
        if self.config.placement not in PLACEMENTS:
            known = ", ".join(sorted(PLACEMENTS))
            raise ValueError(
                f"unknown placement {self.config.placement!r}; one of {known}"
            )
        self._metadata = MetadataExtractor(network.topology)
        self._featurizer = SourceWindowFeaturizer(FeatureConfig(
            window_s=self.config.window_s,
            min_packets=self.config.min_packets,
        ))
        self._buckets: Dict[float, Dict[str, WindowExample]] = {}
        self._evaluated: set = set()
        self.detections: List[Detection] = []
        self.packets_processed = 0
        self.mitigated_endpoints: Dict[str, float] = {}
        #: permanent record (endpoint -> first effective time), survives
        #: mitigation expiry; consumed by testbed collateral accounting.
        self.mitigation_log: Dict[str, float] = {}
        # Data-plane sensing structures (realism + SRAM accounting).
        self.byte_sketch = CountMinSketch(width=2048, depth=3)
        self.seen_filter = BloomFilter(capacity=50_000, fp_rate=0.01)
        # Chaos/resilience wiring: injected data-plane faults plus a
        # circuit breaker around the react step.  When the breaker is
        # open the switch degrades to shadow behaviour (verdicts logged,
        # no mitigations installed) instead of hammering a failing
        # install path.
        self.fault_injector = fault_injector
        self.bus = bus
        if react_breaker is None and fault_injector is not None:
            react_breaker = CircuitBreaker(
                failure_threshold=3,
                recovery_s=2.0 * self.config.window_s,
                clock=CallableClock(lambda: self.network.now),
                bus=bus, name="switch.react")
        self.react_breaker = react_breaker
        self.table_misses = 0
        self.register_corruptions = 0
        self.react_failures = 0
        self.react_shed = 0
        self.degraded_shadow = False
        # Fast-loop observability: metric objects cached once so the
        # sense path pays one None-check per batch.
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
            self._m_packets = metrics.counter(
                "repro_switch_packets_sensed_total")
            self._m_lookups = metrics.counter(
                "repro_switch_table_lookups_total")
            self._m_misses = metrics.counter(
                "repro_switch_table_miss_total")
            self._m_detections = metrics.counter(
                "repro_switch_detections_total")
            self._m_react = {
                outcome: metrics.counter("repro_switch_reactions_total",
                                         outcome=outcome)
                for outcome in ("acted", "shed", "failed")
            }
            self._g_breaker = metrics.gauge("repro_switch_breaker_state")

        network.add_packet_observer(self._on_packets)
        self._schedule_tick()

    # -- sense ---------------------------------------------------------------

    def _on_packets(self, packets: List[PacketRecord]) -> None:
        if self.obs is not None:
            self._m_packets.inc(len(packets))
        if self.fault_injector is not None and packets and \
                self.fault_injector.should_fire(
                    FaultKind.SWITCH_REGISTER_CORRUPT):
            # SRAM bit-rot: one count-min register jumps by the fault
            # magnitude; estimates for whatever hashes there inflate.
            delta = int(self.fault_injector.magnitude(
                FaultKind.SWITCH_REGISTER_CORRUPT)) or 1
            row, col = self.fault_injector.corruption_site(
                (self.byte_sketch.depth, self.byte_sketch.width))
            self.byte_sketch._table[row, col] += delta
            self.register_corruptions += 1
        window_s = self.config.window_s
        for packet in packets:
            self.packets_processed += 1
            if packet.direction == "in":
                endpoint = packet.src_ip
            else:
                endpoint = packet.dst_ip
            self.byte_sketch.add(endpoint, packet.size)
            self.seen_filter.add(endpoint)
            window_start = math.floor(packet.timestamp / window_s) * window_s
            bucket = self._buckets.setdefault(window_start, {})
            example = bucket.get(endpoint)
            if example is None:
                if len(bucket) >= self.config.max_tracked_keys:
                    continue        # key table full: untracked this window
                example = WindowExample(window_start=window_start,
                                        endpoint=endpoint)
                bucket[endpoint] = example
            tags = self._metadata.extract(packet)
            self._featurizer._accumulate(example, packet, tags)

    # -- infer + react ---------------------------------------------------------

    def _schedule_tick(self) -> None:
        self.network.simulator.schedule(
            self.config.window_s, self._tick, name="switch-tick"
        )

    def _tick(self) -> None:
        now = self.network.now
        ready = [
            start for start in self._buckets
            if start + self.config.window_s + self.config.grace_s <= now
            and start not in self._evaluated
        ]
        for window_start in sorted(ready):
            self._evaluate_window(window_start)
            self._evaluated.add(window_start)
            del self._buckets[window_start]
        self._schedule_tick()

    def _evaluate_window(self, window_start: float) -> None:
        if self.obs is None:
            return self._infer_window(window_start)
        with self.obs.span("switch.window", window_start=window_start,
                           endpoints=len(self._buckets[window_start])):
            return self._infer_window(window_start)

    def _infer_window(self, window_start: float) -> None:
        config = self.config
        table = self.result.classify_table
        class_names = self.result.program.class_names
        for endpoint, example in self._buckets[window_start].items():
            if example.pkts < config.min_packets:
                continue
            if self.fault_injector is not None and \
                    self.fault_injector.should_fire(
                        FaultKind.SWITCH_TABLE_MISS, endpoint=endpoint):
                # injected lookup miss: this endpoint gets no verdict
                # this window (sense/infer degraded, loop continues)
                self.table_misses += 1
                if self.obs is not None:
                    self._m_misses.inc()
                continue
            vector = example.vector(config.window_s)
            fields = dict(zip(
                self.result.program.feature_fields,
                self.result.quantizer.quantize(vector),
            ))
            action, params = table.lookup(fields)
            if self.obs is not None:
                self._m_lookups.inc()
            class_id = int(params["class_id"])
            class_name = (class_names[class_id]
                          if class_id < len(class_names) else str(class_id))
            confidence = float(params.get("confidence", 1.0))
            if class_name == config.benign_class:
                continue
            acted = False
            effective_at = self.network.now
            if confidence >= config.confidence_threshold and not config.shadow:
                acted, effective_at = self._guarded_react(endpoint,
                                                          class_name)
            if self.obs is not None:
                self._m_detections.inc()
            self.detections.append(Detection(
                window_start=window_start,
                endpoint=endpoint,
                class_name=class_name,
                confidence=confidence,
                decided_at=self.network.now,
                effective_at=effective_at,
                acted=acted,
                feature_vector=vector,
            ))

    def _guarded_react(self, endpoint: str, class_name: str) \
            -> Tuple[bool, float]:
        """The react step behind its circuit breaker.

        Returns ``(acted, effective_at)``.  An open breaker sheds the
        reaction (graceful degradation to shadow behaviour); an injected
        ``switch.react_fail`` counts a breaker failure and leaves the
        endpoint unmitigated this window.
        """
        if self.obs is None:
            return self._react_once(endpoint, class_name)
        with self.obs.span("switch.react", endpoint=endpoint,
                           verdict=class_name) as span:
            acted, effective_at = self._react_once(endpoint, class_name)
            span.set(acted=acted)
        if acted:
            self._m_react["acted"].inc()
        breaker = self.react_breaker
        if breaker is not None:
            self._g_breaker.set(
                self._BREAKER_GAUGE.get(breaker.state, 1.0))
        return acted, effective_at

    def _react_once(self, endpoint: str, class_name: str) \
            -> Tuple[bool, float]:
        breaker = self.react_breaker
        if breaker is not None and not breaker.allow():
            self.react_shed += 1
            self.degraded_shadow = True
            if self.obs is not None:
                self._m_react["shed"].inc()
            return False, self.network.now
        already = endpoint in self.mitigated_endpoints
        try:
            if self.fault_injector is not None and \
                    self.fault_injector.should_fire(
                        FaultKind.SWITCH_REACT_FAIL, endpoint=endpoint):
                raise MitigationError(
                    f"injected mitigation-install failure for {endpoint}")
            effective_at = self._apply_mitigation(endpoint, class_name)
        except MitigationError:
            self.react_failures += 1
            if breaker is not None:
                breaker.record_failure()
            if self.obs is not None:
                self._m_react["failed"].inc()
            return False, self.network.now
        if breaker is not None:
            breaker.record_success()
        return not already, effective_at

    def _binding_for(self, class_name: str) -> Tuple[str, Optional[float]]:
        bindings = self.config.bindings
        if class_name in bindings:
            return bindings[class_name]
        return bindings.get("*", ("drop", None))

    def _apply_mitigation(self, endpoint: str, class_name: str) -> float:
        """Install the mitigation after the placement's loop latency."""
        if endpoint in self.mitigated_endpoints:
            return self.mitigated_endpoints[endpoint]
        placement = PLACEMENTS[self.config.placement]
        delay = placement.infer_latency_s + placement.react_latency_s
        effective_at = self.network.now + delay
        self.mitigated_endpoints[endpoint] = effective_at
        self.mitigation_log.setdefault(endpoint, effective_at)
        kind, cap = self._binding_for(class_name)

        def install() -> None:
            predicate = lambda flow: endpoint in (
                flow.key.src_ip, flow.key.dst_ip
            )
            remove = self.network.flows.install_policer(
                predicate, None if kind == "drop" else cap
            )

            def expire() -> None:
                remove()
                self.mitigated_endpoints.pop(endpoint, None)

            self.network.simulator.schedule(
                self.config.mitigation_duration_s, expire,
                name="mitigation-expire",
            )

        self.network.simulator.schedule(delay, install, name="mitigate")
        return effective_at

    # -- reporting ---------------------------------------------------------------

    def resilience_summary(self) -> Dict[str, int]:
        """Injected-fault and degradation counters for audit reports."""
        breaker = self.react_breaker
        return {
            "table_misses": self.table_misses,
            "register_corruptions": self.register_corruptions,
            "react_failures": self.react_failures,
            "react_shed": self.react_shed,
            "breaker_opened": breaker.times_opened if breaker else 0,
            "degraded_shadow": int(self.degraded_shadow),
        }

    def detection_summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for detection in self.detections:
            counts[detection.class_name] = counts.get(
                detection.class_name, 0) + 1
        return counts
