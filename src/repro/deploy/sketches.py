"""Compact data-plane sensing structures.

The sense stage of the fast control loop (Fig. 2) runs on the switch
with SRAM-resident summaries, not per-flow state: a count-min sketch
for per-key byte/packet counters, a Bloom filter for set membership,
and HyperLogLog for distinct counting.  Error bounds are
property-tested (count-min never under-counts; overestimate bounded by
eps * total with probability 1 - delta).
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Union

import numpy as np


def _hash64(item: Hashable, salt: int) -> int:
    raw = repr(item).encode("utf-8") + struct.pack("<I", salt)
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(),
                          "little")


class CountMinSketch:
    """Count-min sketch with conservative parameters from (eps, delta).

    width = ceil(e / eps), depth = ceil(ln(1 / delta)).
    """

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01,
                 width: Optional[int] = None, depth: Optional[int] = None):
        if width is None:
            if not 0 < epsilon < 1:
                raise ValueError("epsilon must be in (0,1)")
            width = int(math.ceil(math.e / epsilon))
        if depth is None:
            if not 0 < delta < 1:
                raise ValueError("delta must be in (0,1)")
            depth = int(math.ceil(math.log(1.0 / delta)))
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def add(self, item: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        for row in range(self.depth):
            col = _hash64(item, row) % self.width
            self._table[row, col] += count
        self.total += count

    def add_batch(self, items: Iterable[Hashable],
                  counts: Union[int, Sequence[int], None] = None) -> None:
        """Bulk update, equivalent to repeated :meth:`add`.

        ``counts`` may be omitted (1 per item), a scalar applied to
        every item, or a per-item sequence.  Each *distinct* item is
        hashed once per row and the whole batch lands in the table as a
        single scattered accumulate — the per-packet hot path for
        store-fed sketch maintenance.
        """
        totals: Dict[Hashable, int] = {}
        if counts is None or isinstance(counts, int):
            step = 1 if counts is None else counts
            if step < 0:
                raise ValueError("count must be non-negative")
            for item in items:
                totals[item] = totals.get(item, 0) + step
        else:
            for item, count in zip(items, counts):
                if count < 0:
                    raise ValueError("count must be non-negative")
                totals[item] = totals.get(item, 0) + count
        if not totals:
            return
        n = len(totals)
        rows = np.repeat(np.arange(self.depth), n)
        cols = np.empty(self.depth * n, dtype=np.int64)
        amounts = np.fromiter(totals.values(), dtype=np.int64, count=n)
        for row in range(self.depth):
            cols[row * n:(row + 1) * n] = [
                _hash64(item, row) % self.width for item in totals
            ]
        np.add.at(self._table, (rows, cols), np.tile(amounts, self.depth))
        self.total += int(amounts.sum())

    def estimate(self, item: Hashable) -> int:
        return int(min(
            self._table[row, _hash64(item, row) % self.width]
            for row in range(self.depth)
        ))

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch in; equivalent to adding its stream.

        Only defined for identical geometry (same hash family per
        row), which the per-segment stats guarantee by construction.
        """
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("count-min merge requires identical "
                             "width/depth")
        self._table += other._table
        self.total += other.total

    def reset(self) -> None:
        self._table[:] = 0
        self.total = 0

    @property
    def sram_bits(self) -> int:
        """SRAM footprint with 32-bit counters."""
        return self.width * self.depth * 32


class BloomFilter:
    """Standard Bloom filter sized from (capacity, fp_rate)."""

    def __init__(self, capacity: int = 10_000, fp_rate: float = 0.01):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0,1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.n_bits = max(
            int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))),
            8,
        )
        self.n_hashes = max(int(round(self.n_bits / capacity * math.log(2))), 1)
        self._bits = np.zeros(self.n_bits, dtype=bool)
        self.count = 0

    def add(self, item: Hashable) -> None:
        for salt in range(self.n_hashes):
            self._bits[_hash64(item, salt) % self.n_bits] = True
        self.count += 1

    def add_batch(self, items: Iterable[Hashable]) -> None:
        """Bulk insert, equivalent to repeated :meth:`add`.

        Distinct items are hashed once; duplicate inserts only bump the
        ``count`` bookkeeping (the bits are idempotent).
        """
        total = 0
        distinct = {}
        for item in items:
            total += 1
            distinct[item] = None
        if distinct:
            positions = np.fromiter(
                (_hash64(item, salt) % self.n_bits
                 for item in distinct for salt in range(self.n_hashes)),
                dtype=np.int64, count=len(distinct) * self.n_hashes,
            )
            self._bits[positions] = True
        self.count += total

    def __contains__(self, item: Hashable) -> bool:
        return all(
            self._bits[_hash64(item, salt) % self.n_bits]
            for salt in range(self.n_hashes)
        )

    def merge(self, other: "BloomFilter") -> None:
        """OR another filter in; requires identical bit geometry."""
        if (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes):
            raise ValueError("bloom merge requires identical "
                             "n_bits/n_hashes")
        self._bits |= other._bits
        self.count += other.count

    def reset(self) -> None:
        self._bits[:] = False
        self.count = 0

    @property
    def sram_bits(self) -> int:
        return self.n_bits


class HyperLogLog:
    """Distinct counting with 2^p registers (p in [4, 16])."""

    def __init__(self, p: int = 12):
        if not 4 <= p <= 16:
            raise ValueError("p must be in [4, 16]")
        self.p = p
        self.m = 1 << p
        self._registers = np.zeros(self.m, dtype=np.int8)
        if self.m >= 128:
            self._alpha = 0.7213 / (1 + 1.079 / self.m)
        elif self.m == 64:
            self._alpha = 0.709
        elif self.m == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673

    def add(self, item: Hashable) -> None:
        value = _hash64(item, 0xC0FFEE)
        register = value & (self.m - 1)
        rest = value >> self.p
        rank = (64 - self.p) - rest.bit_length() + 1 if rest else 64 - self.p + 1
        if rank > self._registers[register]:
            self._registers[register] = rank

    def add_batch(self, items: Iterable[Hashable]) -> None:
        """Bulk insert; duplicates cannot move HLL registers, so each
        distinct item is hashed exactly once."""
        for item in dict.fromkeys(items):
            self.add(item)

    def estimate(self) -> float:
        inv_sum = float(np.sum(2.0 ** -self._registers.astype(float)))
        raw = self._alpha * self.m * self.m / inv_sum
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * self.m and zeros > 0:
            return self.m * math.log(self.m / zeros)   # small-range correction
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max; the union's estimator, exactly."""
        if self.p != other.p:
            raise ValueError("HLL merge requires identical precision p")
        np.maximum(self._registers, other._registers, out=self._registers)

    def reset(self) -> None:
        self._registers[:] = 0

    @property
    def sram_bits(self) -> int:
        return self.m * 8
