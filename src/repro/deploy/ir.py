"""Match-action intermediate representation.

The IR models what a P4 target offers: tables with typed match keys
(exact / ternary / range / lpm), prioritised entries, and named
actions with parameters.  Range matches are first-class in the IR;
hardware without native range matching pays the range-to-ternary
expansion cost, which :func:`range_to_ternary` computes exactly (the
classic prefix-cover construction) so the resource model can charge
real TCAM entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class MatchKind(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"
    RANGE = "range"
    LPM = "lpm"


@dataclass(frozen=True)
class FieldMatch:
    """One key's constraint inside one entry.

    * EXACT: ``value``
    * TERNARY: ``value`` + ``mask``
    * RANGE: inclusive ``[lo, hi]``
    * LPM: ``value`` + ``prefix_len``
    """

    kind: MatchKind
    value: int = 0
    mask: int = 0
    lo: int = 0
    hi: int = 0
    prefix_len: int = 0

    def matches(self, observed: int, width: int = 32) -> bool:
        if self.kind is MatchKind.EXACT:
            return observed == self.value
        if self.kind is MatchKind.TERNARY:
            return (observed & self.mask) == (self.value & self.mask)
        if self.kind is MatchKind.RANGE:
            return self.lo <= observed <= self.hi
        if self.kind is MatchKind.LPM:
            shift = width - self.prefix_len
            return (observed >> shift) == (self.value >> shift)
        raise ValueError(f"unknown match kind {self.kind}")

    @staticmethod
    def wildcard() -> "FieldMatch":
        return FieldMatch(kind=MatchKind.TERNARY, value=0, mask=0)

    @staticmethod
    def range(lo: int, hi: int) -> "FieldMatch":
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return FieldMatch(kind=MatchKind.RANGE, lo=lo, hi=hi)

    @staticmethod
    def exact(value: int) -> "FieldMatch":
        return FieldMatch(kind=MatchKind.EXACT, value=value)


@dataclass
class TableEntry:
    """Prioritised entry: higher priority wins."""

    priority: int
    matches: Dict[str, FieldMatch]
    action: str
    params: Dict[str, object] = field(default_factory=dict)

    def hits(self, fields: Dict[str, int], widths: Dict[str, int]) -> bool:
        for name, match in self.matches.items():
            observed = fields.get(name, 0)
            if not match.matches(observed, widths.get(name, 32)):
                return False
        return True


@dataclass
class MatchActionTable:
    """One pipeline table."""

    name: str
    key_fields: List[str]
    key_widths: Dict[str, int]
    entries: List[TableEntry] = field(default_factory=list)
    default_action: str = "NoAction"
    default_params: Dict[str, object] = field(default_factory=dict)

    def add_entry(self, entry: TableEntry) -> None:
        unknown = set(entry.matches) - set(self.key_fields)
        if unknown:
            raise ValueError(f"entry matches unknown keys: {sorted(unknown)}")
        self.entries.append(entry)

    def lookup(self, fields: Dict[str, int]) -> Tuple[str, Dict]:
        """First hit in priority order (stable by insertion within ties)."""
        best: Optional[TableEntry] = None
        for entry in self.entries:
            if entry.hits(fields, self.key_widths):
                if best is None or entry.priority > best.priority:
                    best = entry
        if best is None:
            return self.default_action, dict(self.default_params)
        return best.action, dict(best.params)

    @property
    def key_width_bits(self) -> int:
        return sum(self.key_widths[f] for f in self.key_fields)


@dataclass
class SwitchProgram:
    """A compiled pipeline: ordered tables plus metadata the control
    plane needs (feature scaling, class names)."""

    name: str
    tables: List[MatchActionTable]
    feature_fields: List[str] = field(default_factory=list)
    class_names: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def table(self, name: str) -> MatchActionTable:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(f"no table named {name!r}")

    @property
    def total_entries(self) -> int:
        return sum(len(t.entries) for t in self.tables)


def range_to_ternary(lo: int, hi: int, width: int) -> List[Tuple[int, int]]:
    """Minimal prefix cover of [lo, hi] as (value, mask) pairs.

    The standard construction: repeatedly take the largest aligned
    power-of-two block that starts at ``lo`` and fits within ``hi``.
    Worst case 2*width - 2 pairs, the figure behind TCAM range
    expansion costs.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo < 0 or hi >= (1 << width):
        raise ValueError(f"range [{lo}, {hi}] exceeds width {width}")
    full_mask = (1 << width) - 1
    covers: List[Tuple[int, int]] = []
    position = lo
    while position <= hi:
        # Largest block size aligned at `position`...
        max_align = position & -position if position > 0 else 1 << width
        # ...that also fits in the remaining span.
        span = hi - position + 1
        block = max_align
        while block > span:
            block >>= 1
        mask = full_mask & ~(block - 1)
        covers.append((position, mask))
        position += block
    return covers


def ternary_cost(entry: TableEntry, widths: Dict[str, int]) -> int:
    """How many pure-TCAM entries this entry expands into.

    Each RANGE key multiplies the expansion by its prefix-cover size;
    EXACT/TERNARY/LPM keys cost a factor of 1.
    """
    expansion = 1
    for name, match in entry.matches.items():
        if match.kind is MatchKind.RANGE:
            covers = range_to_ternary(match.lo, match.hi,
                                      widths.get(name, 32))
            expansion *= len(covers)
    return expansion
