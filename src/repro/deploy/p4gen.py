"""P4-16-style source emission.

The platform's switch emulator executes the IR directly; the emitted
P4 text is the artifact a real deployment would hand to the campus IT
organisation (and the thing their review process audits).  The output
is syntactically P4-shaped — headers, metadata struct, actions, one
table per IR table, an apply block, and the entries rendered as a
control-plane runtime file in comments.
"""

from __future__ import annotations

from typing import List

from repro.deploy.ir import FieldMatch, MatchActionTable, MatchKind, \
    SwitchProgram


def _sanitize(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _render_match(match: FieldMatch) -> str:
    if match.kind is MatchKind.EXACT:
        return str(match.value)
    if match.kind is MatchKind.TERNARY:
        return f"{match.value} &&& {match.mask}"
    if match.kind is MatchKind.RANGE:
        return f"{match.lo}..{match.hi}"
    if match.kind is MatchKind.LPM:
        return f"{match.value}/{match.prefix_len}"
    raise ValueError(f"unknown match kind {match.kind}")


def _key_match_kind(table: MatchActionTable, key: str) -> str:
    """The P4 match kind declared for one key.

    A single kind maps directly; mixed kinds need the most general
    declaration that can express all of them (range subsumes exact and
    ternary on the targets we model; lpm mixed with anything else
    degrades to ternary).  A key no entry constrains is wildcarded,
    i.e. ternary.
    """
    kinds = {entry.matches[key].kind
             for entry in table.entries if key in entry.matches}
    if not kinds:
        return "ternary"
    if len(kinds) == 1:
        return next(iter(kinds)).value
    if MatchKind.RANGE in kinds:
        return "range"
    return "ternary"


def _table_actions(table: MatchActionTable) -> List[str]:
    """Union of actions referenced by entries plus the default."""
    actions = {entry.action for entry in table.entries}
    actions.add(table.default_action)
    return sorted(actions)


def _emit_table(table: MatchActionTable, lines: List[str]) -> None:
    lines.append(f"    table {_sanitize(table.name)} {{")
    lines.append("        key = {")
    for key in table.key_fields:
        kind = _key_match_kind(table, key)
        lines.append(f"            {_sanitize(key)} : {kind};")
    lines.append("        }")
    actions = "; ".join(_table_actions(table))
    lines.append(f"        actions = {{ {actions}; }}")
    default_args = ", ".join(
        str(value) for _, value in sorted(table.default_params.items()))
    lines.append(f"        default_action = {table.default_action}"
                 f"({default_args});")
    lines.append(f"        size = {max(len(table.entries), 1)};")
    lines.append("    }")


def emit_p4(program: SwitchProgram) -> str:
    """Render a program as P4-16-style source text."""
    lines: List[str] = []
    lines.append("/* Auto-generated deployable learning model.")
    lines.append(f" * program: {program.name}")
    for key, value in sorted(program.metadata.items()):
        lines.append(f" * {key}: {value}")
    lines.append(" */")
    lines.append("#include <core.p4>")
    lines.append("#include <v1model.p4>")
    lines.append("")
    lines.append("struct classifier_metadata_t {")
    for field in program.feature_fields:
        lines.append(f"    bit<16> {_sanitize(field)};")
    lines.append("    bit<8> class_id;")
    lines.append("    bit<8> confidence_pct;")
    lines.append("}")
    lines.append("")
    lines.append("control Classify(inout classifier_metadata_t meta) {")
    lines.append("    action set_class(bit<8> class_id, "
                 "bit<8> confidence_pct) {")
    lines.append("        meta.class_id = class_id;")
    lines.append("        meta.confidence_pct = confidence_pct;")
    lines.append("    }")
    lines.append("    action NoAction() { }")
    for table in program.tables:
        _emit_table(table, lines)
    lines.append("    apply {")
    for table in program.tables:
        lines.append(f"        {_sanitize(table.name)}.apply();")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("/* control-plane entries:")
    for table in program.tables:
        for i, entry in enumerate(table.entries):
            matches = ", ".join(
                f"{_sanitize(k)}={_render_match(m)}"
                for k, m in sorted(entry.matches.items())
            )
            params = ", ".join(
                f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(entry.params.items())
            )
            lines.append(
                f" * {table.name}[{i}] prio={entry.priority} "
                f"{{{matches}}} -> {entry.action}({params})"
            )
    lines.append(" */")
    return "\n".join(lines) + "\n"
