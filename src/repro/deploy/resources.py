"""Programmable-switch resource model (Tofino-like).

§2's scale claim: modern data planes "are currently not capable of
supporting this capability at scale; i.e., executing hundreds or
thousands of such tasks concurrently and in real time".  Experiment E4
quantifies exactly that by packing compiled classifiers into this
resource model until something runs out.

Defaults approximate a first-generation Tofino-class ASIC: 12 match
stages, ~6.2 Mb TCAM and ~120 Mb SRAM total, spread evenly across
stages, with per-stage limits on how much key width a single table can
consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MBIT = 1_000_000


@dataclass
class FitReport:
    """Result of attempting to place programs on the switch."""

    fits: bool
    programs_placed: int
    stages_used: int
    tcam_bits_used: int
    sram_bits_used: int
    tcam_fraction: float
    sram_fraction: float
    bottleneck: Optional[str] = None


class SwitchResourceModel:
    """Accounting-only model of pipeline resources."""

    def __init__(self, n_stages: int = 12,
                 tcam_bits_total: int = 6 * MBIT,
                 sram_bits_total: int = 120 * MBIT,
                 max_tables_per_stage: int = 16,
                 sketch_sram_bits: int = 4 * MBIT):
        self.n_stages = n_stages
        self.tcam_bits_total = tcam_bits_total
        self.sram_bits_total = sram_bits_total
        self.max_tables_per_stage = max_tables_per_stage
        #: SRAM reserved for the shared sensing sketches.
        self.sketch_sram_bits = sketch_sram_bits

    def fit(self, compile_results: List) -> FitReport:
        """Try to place a list of :class:`CompileResult` programs.

        Placement model: every program needs one table (one stage
        slot), its TCAM bits, and SRAM for action/param storage (64
        bits per entry).  Stage slots: ``n_stages *
        max_tables_per_stage`` tables total.
        """
        tcam_used = 0
        sram_used = self.sketch_sram_bits
        tables_used = 0
        placed = 0
        bottleneck = None
        table_slots = self.n_stages * self.max_tables_per_stage

        for result in compile_results:
            need_tcam = result.tcam_bits
            need_sram = result.n_entries * 64
            if tables_used + 1 > table_slots:
                bottleneck = "stages"
                break
            if tcam_used + need_tcam > self.tcam_bits_total:
                bottleneck = "tcam"
                break
            if sram_used + need_sram > self.sram_bits_total:
                bottleneck = "sram"
                break
            tables_used += 1
            tcam_used += need_tcam
            sram_used += need_sram
            placed += 1

        return FitReport(
            fits=placed == len(compile_results),
            programs_placed=placed,
            stages_used=math.ceil(tables_used / self.max_tables_per_stage),
            tcam_bits_used=tcam_used,
            sram_bits_used=sram_used,
            tcam_fraction=tcam_used / self.tcam_bits_total,
            sram_fraction=sram_used / self.sram_bits_total,
            bottleneck=bottleneck,
        )

    def max_concurrent(self, compile_result) -> int:
        """How many copies of one program fit (the E4 headline number).

        Closed form: each copy costs one table slot, its TCAM bits,
        and 64 SRAM bits per entry, so the answer is the tightest of
        the three per-resource quotients — identical to greedily
        placing copies with :meth:`fit`, without the placement loop.
        """
        avail_sram = self.sram_bits_total - self.sketch_sram_bits
        if avail_sram < 0:
            return 0
        bounds = [self.n_stages * self.max_tables_per_stage]
        if compile_result.tcam_bits > 0:
            bounds.append(self.tcam_bits_total // compile_result.tcam_bits)
        need_sram = compile_result.n_entries * 64
        if need_sram > 0:
            bounds.append(avail_sram // need_sram)
        return min(bounds)
