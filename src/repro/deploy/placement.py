"""Sense/infer/react latency by compute placement.

§2: "the allocation of compute resources that are available in the
network for performing any of these activities for a given task (e.g.,
data plane, control plane, cloud) will depend on how fast and with
what accuracy that task has to be performed."  Experiment E2 tabulates
the latency decomposition this module computes.

Latency components (seconds):

* data plane — per-packet sketch update and table lookup are part of
  the forwarding pipeline (~hundreds of ns); "react" is the same
  pipeline applying the verdict, so the loop closes within ~1 us plus
  the sensing window itself.
* control plane — counters are exported every polling interval, the
  local controller runs the full model (~ms), and a rule install RTT
  closes the loop.
* cloud — adds WAN RTT and queueing/batching on both legs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Placement:
    """One placement option with its latency model."""

    name: str
    sense_latency_s: float         # time until the signal is observable
    infer_latency_s: float         # model evaluation time
    react_latency_s: float         # applying the mitigation
    model_constraint: str          # what models this placement can run

    def loop_latency(self, sensing_window_s: float = 0.0) -> float:
        """Total sense->infer->react delay for one detection."""
        return (self.sense_latency_s + sensing_window_s / 2.0
                + self.infer_latency_s + self.react_latency_s)


PLACEMENTS: Dict[str, Placement] = {
    "data_plane": Placement(
        name="data_plane",
        sense_latency_s=400e-9,        # sketch update in-pipeline
        infer_latency_s=300e-9,        # one table lookup
        react_latency_s=300e-9,        # verdict applied same pipeline
        model_constraint="match-action tables only (compiled trees)",
    ),
    "control_plane": Placement(
        name="control_plane",
        sense_latency_s=50e-3,         # counter export / polling delay
        infer_latency_s=3e-3,          # full model on local CPU
        react_latency_s=10e-3,         # rule-install RTT to the switch
        model_constraint="any model that fits a server",
    ),
    "cloud": Placement(
        name="cloud",
        sense_latency_s=50e-3 + 40e-3,  # export + WAN uplink
        infer_latency_s=8e-3,           # batch inference service
        react_latency_s=40e-3 + 10e-3,  # WAN downlink + rule install
        model_constraint="anything, including ensembles/GPU models",
    ),
}


def loop_latency(placement: str, sensing_window_s: float = 1.0) -> float:
    """Convenience: total loop latency for a named placement."""
    try:
        return PLACEMENTS[placement].loop_latency(sensing_window_s)
    except KeyError:
        known = ", ".join(sorted(PLACEMENTS))
        raise KeyError(f"unknown placement {placement!r}; one of {known}")


def attack_bytes_before_reaction(placement: str, attack_gbps: float,
                                 sensing_window_s: float = 1.0) -> float:
    """Bytes a DDoS lands before the loop reacts — E2's punchline column."""
    latency = loop_latency(placement, sensing_window_s)
    return attack_gbps * 1e9 / 8.0 * latency
