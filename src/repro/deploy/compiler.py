"""Decision tree -> match-action table compilation.

Each root-to-leaf path of the tree is a conjunction of half-open
interval constraints on features; the compiler quantizes features to
integers, converts every path into one RANGE-match table entry, and
packs them into a single classification table.  The compiled program
is *semantically equivalent* to the tree evaluated on quantized
inputs — property-tested in ``tests/deploy/test_compiler.py``:

    lookup(quantize(x)) == tree.predict(dequantize(quantize(x)))

which holds because ``x' <= t  <=>  q <= floor(t * scale)`` when
``x' = q / scale`` with integer ``q``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.deploy.ir import (
    FieldMatch,
    MatchActionTable,
    SwitchProgram,
    TableEntry,
    ternary_cost,
)
from repro.learning.models.tree import DecisionTreeClassifier, TreeNode


@dataclass
class FeatureQuantizer:
    """Fixed-point mapping between float features and integer fields.

    Every feature f maps to ``q = clip(floor(x * scale), 0, 2^width-1)``.
    """

    scales: List[float]
    width: int = 16

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    @classmethod
    def for_features(cls, X: np.ndarray, width: int = 16,
                     headroom: float = 2.0) -> "FeatureQuantizer":
        """Pick per-feature scales so observed maxima use the full width."""
        X = np.asarray(X, dtype=float)
        maxima = np.maximum(X.max(axis=0) * headroom, 1e-9)
        max_value = (1 << width) - 1
        scales = [float(max_value / m) for m in maxima]
        return cls(scales=scales, width=width)

    def quantize(self, x: Sequence[float]) -> List[int]:
        out = []
        for value, scale in zip(x, self.scales):
            q = int(math.floor(max(value, 0.0) * scale))
            out.append(min(q, self.max_value))
        return out

    def dequantize(self, q: Sequence[int]) -> List[float]:
        return [value / scale for value, scale in zip(q, self.scales)]

    def quantize_threshold(self, feature: int, threshold: float) -> int:
        q = int(math.floor(threshold * self.scales[feature]))
        return min(max(q, -1), self.max_value)


@dataclass
class CompileResult:
    """Compiled program plus cost accounting."""

    program: SwitchProgram
    quantizer: FeatureQuantizer
    n_entries: int
    tcam_entries: int          # after range-to-ternary expansion
    key_width_bits: int
    tcam_bits: int

    @property
    def classify_table(self) -> MatchActionTable:
        return self.program.table("classify")


def _paths(root: TreeNode) -> List[Tuple[List[Tuple[int, str, float]],
                                         TreeNode]]:
    """All (conditions, leaf) pairs; condition = (feature, op, thr)."""
    out = []

    def walk(node: TreeNode, conditions):
        if node.is_leaf:
            out.append((list(conditions), node))
            return
        walk(node.left, conditions + [(node.feature, "<=", node.threshold)])
        walk(node.right, conditions + [(node.feature, ">", node.threshold)])

    walk(root, [])
    return out


def compile_tree(tree: DecisionTreeClassifier,
                 feature_names: Sequence[str],
                 quantizer: FeatureQuantizer,
                 class_names: Optional[Sequence[str]] = None,
                 program_name: str = "classifier") -> CompileResult:
    """Lower a fitted tree into one RANGE-match classification table.

    The table's action is ``set_class`` with a ``class_id`` parameter;
    the runtime (:mod:`repro.deploy.switch`) maps class ids onto
    mitigation actions via its policy binding.
    """
    if tree.root_ is None:
        raise ValueError("tree is not fitted")
    if len(feature_names) != tree.n_features_:
        raise ValueError("feature_names length != tree features")

    field_names = [f"meta.{name}" for name in feature_names]
    widths = {name: quantizer.width for name in field_names}
    table = MatchActionTable(
        name="classify",
        key_fields=list(field_names),
        key_widths=widths,
        default_action="set_class",
        default_params={"class_id": 0},
    )

    max_value = quantizer.max_value
    for conditions, leaf in _paths(tree.root_):
        # Intersect conditions per feature into one integer interval.
        intervals: Dict[int, List[int]] = {}
        empty = False
        for feature, op, threshold in conditions:
            lo, hi = intervals.get(feature, [0, max_value])
            qt = quantizer.quantize_threshold(feature, threshold)
            if op == "<=":
                hi = min(hi, qt)
            else:
                lo = max(lo, qt + 1)
            if lo > hi:
                empty = True
                break
            intervals[feature] = [lo, hi]
        if empty:
            # Quantization collapsed this path; the sibling entry
            # absorbs its inputs.
            continue
        matches = {}
        for feature, (lo, hi) in intervals.items():
            if (lo, hi) == (0, max_value):
                continue
            matches[field_names[feature]] = FieldMatch.range(lo, hi)
        class_id = int(np.argmax(leaf.value))
        table.add_entry(TableEntry(
            priority=len(conditions),
            matches=matches,
            action="set_class",
            params={"class_id": class_id,
                    "confidence": float(
                        leaf.value[class_id] / max(leaf.value.sum(), 1.0))},
        ))

    program = SwitchProgram(
        name=program_name,
        tables=[table],
        feature_fields=list(field_names),
        class_names=list(class_names) if class_names else [],
        metadata={"model": "decision_tree", "depth": tree.depth,
                  "leaves": tree.n_leaves},
    )
    tcam_entries = sum(ternary_cost(e, widths) for e in table.entries)
    key_bits = table.key_width_bits
    return CompileResult(
        program=program,
        quantizer=quantizer,
        n_entries=len(table.entries),
        tcam_entries=tcam_entries,
        key_width_bits=key_bits,
        tcam_bits=tcam_entries * key_bits,
    )


def classify(result: CompileResult, x: Sequence[float]) -> int:
    """Evaluate the compiled program on one float feature vector."""
    q = result.quantizer.quantize(x)
    fields = dict(zip(result.program.feature_fields, q))
    action, params = result.classify_table.lookup(fields)
    assert action == "set_class"
    return int(params["class_id"])
