"""repro.obs — pipeline-wide observability: metrics, spans, flight data.

The platform answers "where did the time go, what did each stage shed,
and what did the deployed model actually do?" through three primitives
that share one activation contract:

* :class:`MetricsRegistry` — counters, gauges, and exactly-mergeable
  fixed-bucket histograms (numpy-backed batch observes for the
  columnar hot path).
* :class:`Tracer` — nested spans with explicit parent ids on the
  injectable clocks; a fixed seed replays an identical trace tree.
* :class:`FlightRecorder` — a bounded ring of recent EventBus events,
  snapshotted when a breaker opens or a chaos fault fires.

**The disabled path is a None.**  Every instrumented layer takes
``obs=None`` by default and guards with a single ``is not None``; no
registry, tracer, or recorder is even constructed unless the caller
opts in (``PlatformConfig(obs_enabled=True)`` or ``--obs`` on the
CLI).  ``benchmarks/test_perf_obs.py`` holds that overhead to noise.

:class:`Observability` bundles the three primitives on one clock and
is the object threaded through the layers; ``repro.obs.export`` turns
it into JSON-lines / Prometheus text, and ``repro obs`` renders the
per-stage report.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chaos.resilience import Clock, MonotonicClock
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import DEFAULT_TRIGGERS, FlightRecorder, Snapshot
from repro.obs.tracing import SpanRecord, Tracer
from repro.obs.export import (
    ObsFormatError,
    obs_records,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)
from repro.obs.report import ObsReport


class Observability:
    """Metrics + tracer + flight recorder on one injectable clock."""

    def __init__(self, clock: Optional[Clock] = None,
                 max_spans: int = 50_000,
                 recorder_capacity: int = 512):
        self.clock = clock or MonotonicClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, max_spans=max_spans)
        self.recorder = FlightRecorder(
            metrics=self.metrics, capacity=recorder_capacity,
            clock=self.clock)

    def attach_bus(self, bus) -> None:
        """Wire the flight recorder to a platform's EventBus."""
        self.recorder.attach(bus)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def to_records(self, meta: Optional[Dict] = None) -> List[Dict]:
        return obs_records(self, meta)

    def report(self, meta: Optional[Dict] = None) -> ObsReport:
        return ObsReport.from_records(self.to_records(meta))


__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_TRIGGERS",
    "LATENCY_BUCKETS_S",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObsFormatError",
    "ObsReport",
    "Snapshot",
    "SpanRecord",
    "Tracer",
    "obs_records",
    "read_jsonl",
    "render_prometheus",
    "write_jsonl",
]
