"""Worker-side observability context for cross-process recording.

Worker processes cannot share the parent's registry or tracer, so the
executor's task shell activates a process-local :class:`WorkerObs`
before running the task and ships its payload back with the result.
The parent merges metrics exactly (fixed-bucket histograms add) and
adopts spans under the task's own span — see
:meth:`repro.obs.metrics.MetricsRegistry.merge_payload` and
:meth:`repro.obs.tracing.Tracer.adopt`.

Kernel code (``repro.parallel.kernels``) calls :func:`worker_obs` to
find the active context; it returns ``None`` in the parent process or
when observability is off, preserving the ``obs is None`` hot-path
contract everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chaos.resilience import MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class WorkerObs:
    """A worker's local metrics + tracer, shipped home as one payload."""

    def __init__(self):
        clock = MonotonicClock()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, max_spans=2_000)

    def to_payload(self) -> Dict:
        return {
            "metrics": self.metrics.to_payload(),
            "spans": [s.to_payload() for s in self.tracer.finished()],
            "spans_dropped": self.tracer.dropped,
        }


_ACTIVE: Optional[WorkerObs] = None


def activate() -> WorkerObs:
    """Install a fresh worker context (called by the task shell)."""
    global _ACTIVE
    _ACTIVE = WorkerObs()
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def worker_obs() -> Optional[WorkerObs]:
    """The active worker context, or None (parent process / obs off)."""
    return _ACTIVE
