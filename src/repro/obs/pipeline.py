"""One fully-observed end-to-end run of both loops.

:func:`run_observed_pipeline` is the demonstration (and test fixture)
behind ``repro obs --pipeline``: a fault-free seeded day through every
instrumented layer — capture -> store -> query -> featurize -> slow
development loop -> fast switch loop — with one shared
:class:`~repro.obs.Observability` threaded through all of them.  The
returned observability object carries spans from each layer plus the
metric families the report renders, and because every span id comes
from the tracer's own counter, the same seed reproduces the identical
trace tree (:meth:`~repro.obs.tracing.Tracer.tree_signature`).

Heavy imports stay inside the function so ``import repro.obs`` never
drags in the platform, sklearn-adjacent learning code, or the
emulated switch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: the attack class both loops are developed against (same as chaos)
_POSITIVE_CLASS = "ddos-dns-amp"


def run_observed_pipeline(profile: str = "small",
                          duration_s: float = 120.0,
                          seed: int = 7,
                          workers: int = 2,
                          shards: int = 2,
                          obs=None) -> Tuple[object, Dict]:
    """Run one seeded, fault-free day with observability on everywhere.

    Parameters
    ----------
    profile / duration_s / seed:
        Campus profile and scenario length, as in ``repro run-day``.
    workers / shards:
        Parallel substrate sizing.  The defaults exercise the sharded
        store and the process pool so the trace carries worker-side
        spans; pass ``workers=0, shards=1`` for a serial trace.
    obs:
        Optional pre-built :class:`~repro.obs.Observability` (a fresh
        one is created otherwise).

    Returns
    -------
    (obs, meta):
        The populated observability object and a meta dict suitable
        for :func:`repro.obs.export.obs_records` /
        :class:`repro.obs.report.ObsReport`.
    """
    from repro.core.config import PlatformConfig
    from repro.core.controlloop import ControlLoopHarness
    from repro.core.devloop import DevelopmentLoop
    from repro.core.platform import CampusPlatform
    from repro.datastore.query import Query
    from repro.events import make_scenario
    from repro.obs import Observability

    if obs is None:
        obs = Observability()
    config = PlatformConfig(campus_profile=profile, seed=seed,
                            workers=workers, store_shards=shards,
                            obs_enabled=True)
    platform = CampusPlatform(config, obs=obs)
    meta: Dict = {
        "pipeline": "observed",
        "profile": profile,
        "duration_s": duration_s,
        "seed": seed,
        "workers": workers,
        "shards": shards,
    }
    try:
        with obs.span("pipeline.run", seed=seed, profile=profile):
            # -- slow loop: capture -> store -> query -> develop ----------
            collection = platform.collect(
                make_scenario("ddos", duration_s), seed=seed)
            meta["packets_captured"] = collection.packets_captured
            meta["flows_stored"] = collection.flows_stored

            rows = platform.store.query(Query(
                collection="packets", where={"protocol": 17}))
            meta["query_rows"] = len(rows)

            dataset = platform.build_dataset()
            meta["dataset_rows"] = len(dataset)

            tool = None
            if _POSITIVE_CLASS in dataset.class_names:
                loop = DevelopmentLoop(teacher_name="tree",
                                       student_max_depth=3, obs=obs)
                tool, devreport = loop.develop(
                    dataset.binarize(_POSITIVE_CLASS),
                    tool_name="observed", seed=seed)
                meta["devloop_ok"] = bool(devreport.ready)
            else:
                meta["devloop_ok"] = False

            # -- fast loop: sense -> infer -> react -----------------------
            if tool is not None:
                harness = ControlLoopHarness(
                    tool, lambda s: make_scenario("ddos", duration_s),
                    lambda s: platform.fresh_network(s),
                    bus=platform.bus, obs=obs)
                live = harness.run(seed=seed + 1)
                meta["detections"] = live.detections
                meta["attack_admitted_fraction"] = round(
                    live.attack_admitted_fraction, 4)
    finally:
        platform.close()
    meta["trace_signature"] = obs.tracer.tree_signature()
    meta["spans"] = len(obs.tracer.spans)
    return obs, meta
