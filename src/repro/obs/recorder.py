"""Flight recorder: a bounded ring of recent events + on-demand snapshots.

The recorder subscribes to the platform's
:class:`~repro.core.eventbus.EventBus` with the ``"*"`` wildcard and
keeps only the most recent ``capacity`` events in a ring buffer —
memory is bounded no matter how long the run.  When something
noteworthy happens (a circuit breaker opens, a chaos fault fires, or a
caller asks), it freezes a :class:`Snapshot`: the ring's contents plus
the current metrics view.  That is the "what was going on just before
it went wrong" record the chaos DegradationLedger cannot give you.

Snapshots themselves live in a second bounded ring, so a fault storm
cannot turn the recorder into the leak it exists to diagnose.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.resilience import Clock, MonotonicClock

#: default auto-snapshot triggers: exact topics, or "prefix:" matches
#: every topic under that prefix.
DEFAULT_TRIGGERS: Tuple[str, ...] = ("resilience:breaker_open", "chaos:")


@dataclass
class RecordedEvent:
    """One bus event as held by the ring (topic + shallow payload)."""

    seq: int
    topic: str
    payload: Dict = field(default_factory=dict)

    def to_payload(self) -> Dict:
        return {"seq": self.seq, "topic": self.topic,
                "payload": dict(self.payload)}


@dataclass
class Snapshot:
    """The ring + metrics, frozen at one moment for one reason."""

    reason: str
    at: float
    events: List[RecordedEvent]
    metrics: Dict[str, object]
    events_seen: int
    events_dropped: int

    def to_payload(self) -> Dict:
        return {
            "reason": self.reason, "at": self.at,
            "events": [event.to_payload() for event in self.events],
            "metrics": dict(self.metrics),
            "events_seen": self.events_seen,
            "events_dropped": self.events_dropped,
        }


class FlightRecorder:
    """Bounded event ring with triggered metric snapshots.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` whose
        :meth:`snapshot` is frozen into every :class:`Snapshot`.
    capacity:
        Ring size (events retained).
    snapshot_capacity:
        How many snapshots are retained (oldest evicted first).
    triggers:
        Topics that auto-snapshot.  An entry ending in ``:`` is a
        prefix match (``"chaos:"`` catches every injected fault).
    """

    def __init__(self, metrics=None, capacity: int = 512,
                 snapshot_capacity: int = 32,
                 triggers: Tuple[str, ...] = DEFAULT_TRIGGERS,
                 clock: Optional[Clock] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if snapshot_capacity < 1:
            raise ValueError("snapshot_capacity must be >= 1")
        self.metrics = metrics
        self.capacity = capacity
        self.clock = clock or MonotonicClock()
        self._ring: deque = deque(maxlen=capacity)
        self.snapshots: deque = deque(maxlen=snapshot_capacity)
        self.snapshots_taken = 0
        self.events_seen = 0
        self._exact = frozenset(t for t in triggers if not t.endswith(":"))
        self._prefixes = tuple(t for t in triggers if t.endswith(":"))

    @property
    def events_dropped(self) -> int:
        return self.events_seen - len(self._ring)

    def events(self) -> List[RecordedEvent]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    def attach(self, bus) -> None:
        """Subscribe to every topic on ``bus``."""
        bus.subscribe("*", self.on_event)

    def on_event(self, event) -> None:
        """Bus callback; also usable directly in tests."""
        self.events_seen += 1
        self._ring.append(RecordedEvent(
            seq=self.events_seen, topic=event.topic,
            payload=dict(event.payload)))
        topic = event.topic
        if topic in self._exact or topic.startswith(self._prefixes):
            self.snapshot(reason=topic)

    def snapshot(self, reason: str = "manual") -> Snapshot:
        """Freeze the ring + metrics now; returns (and retains) it."""
        snap = Snapshot(
            reason=reason,
            at=self.clock.now(),
            events=self.events(),
            metrics=self.metrics.snapshot() if self.metrics is not None
            else {},
            events_seen=self.events_seen,
            events_dropped=self.events_dropped,
        )
        self.snapshots.append(snap)
        self.snapshots_taken += 1
        return snap
