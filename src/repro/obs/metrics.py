"""Counters, gauges, and mergeable fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
other).  Design constraints, in order:

* **Pay for what you use.**  Layers hold ``obs=None`` by default and
  guard every record call with one ``is not None`` check; a disabled
  platform never touches this module on the hot path.  Enabled hot
  paths cache their metric objects once (``self._m = metrics.counter(
  name)``) so recording is an attribute increment, not a dict lookup.
* **Exactly mergeable.**  Worker processes buffer metrics locally and
  the parent folds them in on task completion, so every metric must
  merge without loss: counters/gauges add, and histograms use *fixed
  shared bucket bounds* so bucket counts add exactly.  Histogram value
  sums are kept as Shewchuk partials (the :func:`math.fsum` invariant),
  making ``merge(a, b)`` bit-identical to observing the union — float
  addition order cannot leak into reports.
* **Cheap enough for the columnar path.**  ``observe_many`` buckets a
  whole numpy batch with one ``searchsorted`` + ``bincount``.

Naming scheme (enforced by convention, rendered by the exporters):
``repro_<layer>_<name>`` with optional labels, e.g.
``repro_store_query_seconds{path="vectorized"}``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: default bounds for latency histograms (seconds, upper bounds; +Inf
#: bucket is implicit).  Roughly half-decade steps from 1us to 10s.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 2.5e-6, 1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3,
    1e-2, 2.5e-2, 0.1, 0.25, 1.0, 2.5, 10.0,
)

#: default bounds for size/row-count histograms (records per batch).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 1_000_000,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _shewchuk_add(partials: List[float], value: float) -> None:
    """Fold ``value`` into the exact non-overlapping partials list.

    The partials represent the *exact* real sum of everything observed
    so far (Shewchuk's error-free transformation, the same invariant
    :func:`math.fsum` maintains).  Because the representation is exact,
    merging two histograms' partials and summing is bit-identical to
    having observed the union in any order.
    """
    i = 0
    for y in partials:
        if abs(value) < abs(y):
            value, y = y, value
        high = value + y
        low = y - (high - value)
        if low:
            partials[i] = low
            i += 1
        value = high
    partials[i:] = [value]


class Counter:
    """Monotonic counter; merges by addition."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_payload(self) -> Dict:
        return {"kind": self.kind, "name": self.name,
                "labels": list(self.labels), "value": self.value}

    def load_payload(self, payload: Dict) -> None:
        self.value += payload["value"]


class Gauge:
    """Point-in-time value; merges by summing (per-shard/worker parts)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        self.value += other.value

    def to_payload(self) -> Dict:
        return {"kind": self.kind, "name": self.name,
                "labels": list(self.labels), "value": self.value}

    def load_payload(self, payload: Dict) -> None:
        self.value += payload["value"]


class Histogram:
    """Fixed-bucket histogram with exact merges.

    ``bounds`` are inclusive upper bounds (Prometheus ``le`` semantics);
    an overflow (+Inf) bucket is always appended.  Two histograms merge
    exactly iff their bounds are identical — the registry guarantees
    that by keying metrics on name+labels and refusing bound changes.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "_partials")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Sequence[float] = LATENCY_BUCKETS_S):
        bounds = np.asarray(sorted(set(float(b) for b in buckets)),
                            dtype=np.float64)
        if len(bounds) == 0:
            raise ValueError("histogram needs at least one bucket bound")
        if not np.isfinite(bounds).all():
            raise ValueError("bucket bounds must be finite "
                             "(+Inf bucket is implicit)")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self.count = 0
        self._partials: List[float] = []

    @property
    def sum(self) -> float:
        """Exact sum of everything observed (correctly rounded once)."""
        return math.fsum(self._partials)

    def observe(self, value: float) -> None:
        value = float(value)
        index = int(np.searchsorted(self.bounds, value, side="left"))
        self.bucket_counts[index] += 1
        self.count += 1
        _shewchuk_add(self._partials, value)

    def observe_many(self, values) -> None:
        """Vectorized bucket accounting for one numpy batch."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if len(values) == 0:
            return
        indexes = np.searchsorted(self.bounds, values, side="left")
        self.bucket_counts += np.bincount(
            indexes, minlength=len(self.bucket_counts)).astype(np.int64)
        self.count += len(values)
        for value in values.tolist():
            _shewchuk_add(self._partials, value)

    def merge(self, other: "Histogram") -> None:
        if not np.array_equal(self.bounds, other.bounds):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge different bucket "
                f"layouts ({len(self.bounds)} vs {len(other.bounds)} bounds)")
        self.bucket_counts += other.bucket_counts
        self.count += other.count
        for value in other._partials:
            _shewchuk_add(self._partials, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_payload(self) -> Dict:
        return {
            "kind": self.kind, "name": self.name,
            "labels": list(self.labels),
            "bounds": self.bounds.tolist(),
            "bucket_counts": self.bucket_counts.tolist(),
            "count": self.count,
            "partials": list(self._partials),
        }

    def load_payload(self, payload: Dict) -> None:
        bounds = np.asarray(payload["bounds"], dtype=np.float64)
        if not np.array_equal(self.bounds, bounds):
            raise ValueError(
                f"histogram {self.name!r}: payload bucket layout differs")
        self.bucket_counts += np.asarray(payload["bucket_counts"],
                                         dtype=np.int64)
        self.count += int(payload["count"])
        for value in payload["partials"]:
            _shewchuk_add(self._partials, float(value))


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """All of one process's metrics, keyed by (name, labels).

    The registry itself is always "on": disabling observability means
    not constructing one (the ``obs is None`` contract), so there is no
    enabled/disabled branch inside the record path.
    """

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def _get(self, cls, name: str, labels: Dict[str, object],
             **kwargs):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS_S,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def get(self, name: str, **labels):
        """Fetch a metric if it exists (reports, tests); else None."""
        return self._metrics.get((name, _label_items(labels)))

    # -- cross-process merge ------------------------------------------------

    def to_payload(self) -> List[Dict]:
        """Picklable/JSON-able dump of every metric (worker -> parent)."""
        return [metric.to_payload() for metric in self._metrics.values()]

    def merge_payload(self, payload: Iterable[Dict]) -> None:
        """Fold a worker's (or a recorded run's) metrics into this
        registry; histogram merges are exact (see :class:`Histogram`)."""
        for entry in payload:
            cls = _KINDS[entry["kind"]]
            labels = dict(entry.get("labels", ()))
            if cls is Histogram:
                metric = self._get(Histogram, entry["name"], labels,
                                   buckets=entry["bounds"])
            else:
                metric = self._get(cls, entry["name"], labels)
            metric.load_payload(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_payload(other.to_payload())

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Small rendered view for flight-recorder snapshots."""
        out: Dict[str, object] = {}
        for metric in self._metrics.values():
            name = metric.name
            if metric.labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in metric.labels)
                name = f"{name}{{{rendered}}}"
            if isinstance(metric, Histogram):
                out[name] = {"count": metric.count, "sum": metric.sum}
            else:
                out[name] = metric.value
        return out
