"""Exporters: JSON-lines records and Prometheus text format.

One JSON-lines record format carries everything this layer produces —
run metadata, metrics, spans, flight-recorder snapshots, and benchmark
results (``benchmarks/run_bench.py`` emits the same shape, so bench
history and runtime metrics are greppable with one set of tools).  Each
line is a self-contained JSON object with a ``type`` field:

``{"type": "meta", ...}``
    run identity (command, seed, profile, ...), first line by
    convention.
``{"type": "metric", "kind": "counter"|"gauge"|"histogram", ...}``
    one metric; histograms carry bounds/bucket_counts/partials so a
    reader can merge them exactly.
``{"type": "span", "id": ..., "parent": ..., "name": ..., ...}``
    one finished span.
``{"type": "snapshot", "reason": ..., "events": [...], ...}``
    one flight-recorder snapshot.
``{"type": "bench", "test": ..., "median": ..., ...}``
    one benchmark stat line (written by ``run_bench.py``).

The Prometheus renderer emits the standard text exposition format for
scrape-style integration; histograms become cumulative ``_bucket``
series with ``le`` labels plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.metrics import Histogram, MetricsRegistry

#: record types a well-formed obs dump may contain.
RECORD_TYPES = frozenset({"meta", "metric", "span", "snapshot", "bench"})


class ObsFormatError(ValueError):
    """An obs JSON-lines file is malformed (bad JSON or bad shape)."""


def bench_record(test: str, stats: Dict[str, float], suite: str = "",
                 mode: str = "") -> Dict:
    """The obs-format record ``run_bench.py`` appends per benchmark."""
    record = {"type": "bench", "test": test, "suite": suite, "mode": mode,
              "units": "seconds"}
    record.update({k: float(v) for k, v in stats.items()})
    return record


def obs_records(obs, meta: Optional[Dict] = None) -> List[Dict]:
    """Everything an ``Observability`` holds, as JSON-able records."""
    records: List[Dict] = []
    records.append({"type": "meta", **(meta or {}),
                    "trace_signature": obs.tracer.tree_signature(),
                    "spans": len(obs.tracer.spans),
                    "spans_dropped": obs.tracer.dropped})
    for metric in obs.metrics:
        records.append({"type": "metric", **metric.to_payload()})
    for span in obs.tracer.finished():
        records.append({"type": "span", **span.to_payload()})
    if obs.recorder is not None:
        for snap in obs.recorder.snapshots:
            records.append({"type": "snapshot", **snap.to_payload()})
    return records


def write_jsonl(records: Iterable[Dict], path: Union[str, Path]) -> Path:
    """Write records one JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str,
                                    separators=(",", ":")) + "\n")
    return path


def append_jsonl(records: Iterable[Dict], path: Union[str, Path]) -> Path:
    """Append records (bench history mode); creates the file if needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        for record in records:
            handle.write(json.dumps(record, default=str,
                                    separators=(",", ":")) + "\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Parse an obs JSON-lines file; :class:`ObsFormatError` when bad.

    Unknown record types fail loudly — a report silently skipping what
    it does not understand would hide exactly the data it exists to
    surface.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObsFormatError(f"cannot read {path}: {exc}") from exc
    records: List[Dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsFormatError(
                f"{path}:{lineno}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ObsFormatError(
                f"{path}:{lineno}: record is not an object with a "
                f"'type' field")
        if record["type"] not in RECORD_TYPES:
            known = ", ".join(sorted(RECORD_TYPES))
            raise ObsFormatError(
                f"{path}:{lineno}: unknown record type "
                f"{record['type']!r}; one of {known}")
        records.append(record)
    if not records:
        raise ObsFormatError(f"{path}: no obs records found")
    return records


def registry_from_records(records: Iterable[Dict]) -> MetricsRegistry:
    """Rebuild a registry (exact, mergeable) from metric records."""
    registry = MetricsRegistry()
    registry.merge_payload(
        record for record in records if record.get("type") == "metric")
    return registry


# -- Prometheus text format ---------------------------------------------------


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + rendered + "}"


def _prom_number(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for metric in sorted(registry, key=lambda m: (m.name, m.labels)):
        if metric.name not in seen_types:
            seen_types[metric.name] = metric.kind
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        labels = metric.labels
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bounds.tolist(),
                                    metric.bucket_counts.tolist()):
                cumulative += count
                le = (*labels, ("le", _prom_number(bound)))
                lines.append(f"{metric.name}_bucket{_prom_labels(le)} "
                             f"{cumulative}")
            le = (*labels, ("le", "+Inf"))
            lines.append(f"{metric.name}_bucket{_prom_labels(le)} "
                         f"{metric.count}")
            lines.append(f"{metric.name}_sum{_prom_labels(labels)} "
                         f"{repr(metric.sum)}")
            lines.append(f"{metric.name}_count{_prom_labels(labels)} "
                         f"{metric.count}")
        else:
            lines.append(f"{metric.name}{_prom_labels(labels)} "
                         f"{_prom_number(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
