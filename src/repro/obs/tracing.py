"""Nested spans on injectable clocks.

A :class:`Tracer` produces :class:`SpanRecord` entries with explicit
integer ids and parent ids.  Ids come from a deterministic counter and
parentage from an explicit stack, so the *shape* of a trace — which
spans exist, their names, their nesting, their order — is a pure
function of the code path taken: a fixed seed replays an identical
trace tree (asserted via :meth:`Tracer.tree_signature`, which digests
structure only, never durations).

Durations come from the tracer's injectable
:class:`~repro.chaos.resilience.Clock` — wall time in live runs,
virtual time in tests — which is also what keeps this module free of
direct wall-clock reads (the REP306 lint rule).

Worker processes run their own local tracer and ship finished spans
back as payloads; :meth:`Tracer.adopt` re-parents them under the
current span with freshly assigned ids (in task order, so adoption is
deterministic too).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.resilience import Clock, MonotonicClock


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_payload(self) -> Dict:
        return {
            "id": self.span_id, "parent": self.parent_id,
            "name": self.name, "start": self.start, "end": self.end,
            "attrs": dict(self.attrs),
        }


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: Optional[SpanRecord]):
        self._tracer = tracer
        self.record = record

    def set(self, **attrs) -> None:
        """Attach attributes to the span (no-op when it was dropped)."""
        if self.record is not None:
            self.record.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self.record)


class Tracer:
    """Produces nested spans; bounded so tracing can never OOM a run.

    ``max_spans`` caps the retained list: past it, new spans are counted
    in :attr:`dropped` instead of stored (and never become parents).
    """

    def __init__(self, clock: Optional[Clock] = None,
                 max_spans: int = 50_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock or MonotonicClock()
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        self._stack: List[SpanRecord] = []

    @property
    def current_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a child of the current span; use as a context manager."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return _SpanHandle(self, None)
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=self.current_id,
            name=name,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        self._stack.append(record)
        return _SpanHandle(self, record)

    def _finish(self, record: Optional[SpanRecord]) -> None:
        if record is None:
            return
        record.end = self.clock.now()
        # exits unwind in LIFO order; tolerate a missed exit above us
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break

    # -- cross-process adoption ---------------------------------------------

    def adopt(self, payload_spans: List[Dict],
              parent_id: Optional[int] = None,
              **extra_attrs) -> List[SpanRecord]:
        """Graft a worker's finished spans under ``parent_id``.

        Ids are re-assigned from this tracer's counter in payload order
        and the worker's internal parent links are remapped, so adopting
        the same payloads in the same order yields the same tree.
        Worker clocks are unrelated to ours; starts/ends are kept as
        shipped (durations stay meaningful, absolute times are
        worker-local).
        """
        if parent_id is None:
            parent_id = self.current_id
        id_map: Dict[int, int] = {}
        adopted: List[SpanRecord] = []
        for entry in payload_spans:
            if len(self.spans) >= self.max_spans:
                self.dropped += len(payload_spans) - len(adopted)
                break
            new_id = next(self._ids)
            id_map[entry["id"]] = new_id
            record = SpanRecord(
                span_id=new_id,
                parent_id=id_map.get(entry["parent"], parent_id),
                name=entry["name"],
                start=entry["start"],
                end=entry["end"],
                attrs={**entry.get("attrs", {}), **extra_attrs},
            )
            self.spans.append(record)
            adopted.append(record)
        return adopted

    # -- reporting -----------------------------------------------------------

    def finished(self) -> List[SpanRecord]:
        return [span for span in self.spans if span.end is not None]

    def to_payload(self) -> List[Dict]:
        return [span.to_payload() for span in self.spans]

    def tree_signature(self) -> str:
        """Digest of the trace *structure*: (id, parent, name) triples
        in creation order.  Durations and attrs are excluded on purpose
        — equal signatures mean "the same tree", wall clock aside."""
        payload = json.dumps(
            [[s.span_id, s.parent_id, s.name] for s in self.spans],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
