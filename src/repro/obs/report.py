"""Per-stage latency/throughput reports from a recorded (or live) run.

This is the ``repro obs`` CLI's engine: it folds a run's spans into
per-stage statistics (where did the time go), surfaces the headline
metrics per layer (what did each stage shed or produce), and carries
the trace signature so two seeded runs can be compared for
reproducibility at a glance.

Stages are derived from span names: ``store.query`` groups under
``query`` (the paper's hot read path deserves its own row), everything
else groups under the prefix before the first dot — the span taxonomy
in DESIGN.md keeps those prefixes aligned with the pipeline layers
(capture, store, devloop, parallel, switch).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.export import registry_from_records
from repro.obs.metrics import Histogram

#: render order for known stages; unknown prefixes sort after these.
_STAGE_ORDER = ("netsim", "capture", "store", "tiers", "query",
                "query.plan", "devloop", "parallel", "switch", "pipeline",
                "federation")


def span_stage(name: str) -> str:
    """Map a span name onto its report stage."""
    # Before the generic prefix rule: "query.plan.scan" would otherwise
    # collapse into "query" and hide planner time inside executor time.
    if name.startswith("query.plan"):
        return "query.plan"
    if name.startswith("store.query"):
        return "query"
    # Compaction/seal spans get their own row: background maintenance
    # time should not hide inside foreground store time.
    if name.startswith("store.tiers"):
        return "tiers"
    return name.split(".", 1)[0]


@dataclass
class StageStat:
    """Aggregate timing for one stage's spans."""

    stage: str
    spans: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    names: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.spans if self.spans else 0.0

    def add(self, name: str, duration_s: float) -> None:
        self.spans += 1
        self.total_s += duration_s
        self.max_s = max(self.max_s, duration_s)
        self.names[name] = self.names.get(name, 0) + 1

    def to_dict(self) -> Dict:
        return {"stage": self.stage, "spans": self.spans,
                "total_s": self.total_s, "mean_s": self.mean_s,
                "max_s": self.max_s, "names": dict(self.names)}


@dataclass
class ObsReport:
    """One run's observability, digested for humans and for ``--json``."""

    meta: Dict
    stages: List[StageStat]
    metrics: List[Dict]
    snapshots: List[Dict]
    trace_signature: str
    spans_total: int
    spans_dropped: int

    @classmethod
    def from_records(cls, records: Iterable[Dict]) -> "ObsReport":
        """Build from obs JSON-lines records (see ``repro.obs.export``)."""
        records = list(records)
        meta: Dict = {}
        for record in records:
            if record.get("type") == "meta":
                meta = {k: v for k, v in record.items() if k != "type"}
                break
        by_stage: Dict[str, StageStat] = {}
        spans_total = 0
        for record in records:
            if record.get("type") != "span":
                continue
            spans_total += 1
            if record.get("end") is None:
                continue
            name = record["name"]
            stage = span_stage(name)
            stat = by_stage.setdefault(stage, StageStat(stage=stage))
            stat.add(name, float(record["end"]) - float(record["start"]))
        registry = registry_from_records(records)
        metrics = []
        for metric in sorted(registry, key=lambda m: (m.name, m.labels)):
            entry = {"name": metric.name, "labels": list(metric.labels),
                     "kind": metric.kind}
            if isinstance(metric, Histogram):
                entry.update(count=metric.count, sum=metric.sum,
                             mean=metric.mean)
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        snapshots = [
            {k: v for k, v in record.items() if k != "type"}
            for record in records if record.get("type") == "snapshot"]

        def stage_key(stat: StageStat):
            try:
                return (0, _STAGE_ORDER.index(stat.stage))
            except ValueError:
                return (1, stat.stage)

        return cls(
            meta=meta,
            stages=sorted(by_stage.values(), key=stage_key),
            metrics=metrics,
            snapshots=snapshots,
            trace_signature=str(meta.get("trace_signature", "")),
            spans_total=spans_total,
            spans_dropped=int(meta.get("spans_dropped", 0)),
        )

    def stage(self, name: str) -> Optional[StageStat]:
        for stat in self.stages:
            if stat.stage == name:
                return stat
        return None

    def to_dict(self) -> Dict:
        return {
            "meta": dict(self.meta),
            "trace_signature": self.trace_signature,
            "spans_total": self.spans_total,
            "spans_dropped": self.spans_dropped,
            "stages": [stat.to_dict() for stat in self.stages],
            "metrics": self.metrics,
            "snapshots": self.snapshots,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def render(self) -> str:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items())
                         if k not in ("trace_signature", "spans",
                                      "spans_dropped"))
        lines = [
            f"obs report: {meta}" if meta else "obs report",
            f"trace signature: {self.trace_signature}  "
            f"(spans: {self.spans_total}, dropped: {self.spans_dropped})",
            "",
            f"{'stage':<10s} {'spans':>6s} {'total_s':>10s} "
            f"{'mean_s':>10s} {'max_s':>10s}  span names",
        ]
        for stat in self.stages:
            names = ", ".join(
                f"{name}×{count}" for name, count
                in sorted(stat.names.items()))
            lines.append(
                f"{stat.stage:<10s} {stat.spans:>6d} {stat.total_s:>10.4f} "
                f"{stat.mean_s:>10.6f} {stat.max_s:>10.6f}  {names}")
        if not self.stages:
            lines.append("(no finished spans recorded)")
        lines += ["", "metrics:"]
        for entry in self.metrics:
            labels = ""
            if entry["labels"]:
                labels = "{" + ",".join(
                    f'{k}="{v}"' for k, v in entry["labels"]) + "}"
            if entry["kind"] == "histogram":
                lines.append(
                    f"  {entry['name']}{labels} count={entry['count']} "
                    f"sum={entry['sum']:.6f} mean={entry['mean']:.6g}")
            else:
                value = entry["value"]
                rendered = f"{value:g}" if isinstance(value, float) \
                    else str(value)
                lines.append(f"  {entry['name']}{labels} {rendered}")
        if not self.metrics:
            lines.append("  (none)")
        if self.snapshots:
            lines += ["", f"flight-recorder snapshots: "
                          f"{len(self.snapshots)}"]
            for snap in self.snapshots:
                lines.append(
                    f"  reason={snap.get('reason')} "
                    f"events={len(snap.get('events', []))} "
                    f"dropped={snap.get('events_dropped', 0)}")
        return "\n".join(lines)
