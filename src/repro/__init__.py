"""repro — a campus-network platform for AI/ML networking research.

Reproduction of "An Effort to Democratize Networking Research in the Era
of AI/ML" (HotNets'19).  The package treats a simulated campus network as
both a *data source* (continuous full-packet capture feeding a curated,
privacy-managed data store) and a *testbed* (road-testing AI/ML-based
network automation tools before deployment), and implements the paper's
road-to-deployment pipeline: black-box learning -> XAI model extraction
-> compilation to a programmable-switch program -> a fast in-network
sense/infer/react control loop.

Subpackages
-----------
netsim     discrete-event campus network simulator (the "production network")
events     labeled network-event generators (attacks, incidents)
capture    full-packet capture, flow assembly, metadata, sensors, cost model
datastore  indexed, queryable, labeled network data store
privacy    anonymization, k-anonymity, differential privacy, access control
learning   from-scratch ML models, features, metrics, and a Gym-style RL env
xai        model extraction / distillation, fidelity, rules, evidence lists
deploy     match-action IR, tree->table compiler, P4 emitter, switch emulator
testbed    shadow/canary road-testing, SLO guardrails, operator trust
baselines  threshold detection, sampled NetFlow, offline inference
core       the CampusPlatform facade, development loop, and control loop
analysis   reporting tables and statistics helpers
chaos      deterministic fault injection + resilience (retry, breakers)
verify     static program verification and the repo-wide AST lint
"""

from repro._version import __version__

__all__ = ["__version__"]
