"""The platform facade and the paper's two loops.

* :class:`~repro.core.platform.CampusPlatform` — Figure 1: one object
  wiring the campus network, privacy policy, capture stack, sensors,
  and data store; used both as *data source* (collect scenarios into
  the store, build datasets) and as *testbed* (deploy tools against
  fresh traffic).
* :class:`~repro.core.devloop.DevelopmentLoop` — Figure 2's slow loop:
  train a black-box teacher offline, extract a deployable student,
  compile it for the switch, check resources, road-test, deploy.
* :class:`~repro.core.controlloop.ControlLoopHarness` — Figure 2's
  fast loop: run a deployed program against live traffic and measure
  sense/infer/react behaviour.
"""

from repro.core.config import PlatformConfig
from repro.core.eventbus import EventBus
from repro.core.platform import CampusPlatform, CollectionResult
from repro.core.devloop import DevelopmentLoop, DevLoopReport, DeployableTool
from repro.core.controlloop import ControlLoopHarness, ControlLoopReport

__all__ = [
    "PlatformConfig",
    "EventBus",
    "CampusPlatform",
    "CollectionResult",
    "DevelopmentLoop",
    "DevLoopReport",
    "DeployableTool",
    "ControlLoopHarness",
    "ControlLoopReport",
]
