"""Platform configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.privacy.policy import PrivacyLevel


@dataclass
class PlatformConfig:
    """Everything needed to stand up one campus platform instance.

    Attributes
    ----------
    campus_profile:
        Name from :data:`repro.netsim.campus.CAMPUS_PROFILES`.
    seed:
        Master seed for the campus, traffic, and events.
    privacy_level:
        Ingest-time privacy policy for the data store.
    capture_capacity_gbps:
        Capture appliance sustained rate; ``None`` = ideal lossless.
    window_s:
        Feature/sensing window used by featurizer and switch alike.
    segment_capacity:
        Data-store segment size (records).
    enable_sensors:
        Attach server-log / firewall / config sensors.
    store_shards:
        Data-store shard count; >1 builds a
        :class:`~repro.datastore.store.ShardedDataStore` partitioned by
        time window x flow hash.
    workers:
        Worker processes for the parallel substrate; 0 = serial
        everywhere (the default, and the automatic fallback wherever
        process pools or shared memory are unavailable).
    obs_enabled:
        Build a :class:`repro.obs.Observability` and thread it through
        every layer (metrics + spans + flight recorder).  Off by
        default: the disabled path constructs nothing and instrumented
        code pays one ``is not None`` check.
    streaming:
        Put the packet collection on the tier ladder: capture batches
        flow through a bounded :class:`~repro.datastore.tiers.
        IngestQueue` into a :class:`~repro.datastore.tiers.
        TieredDataStore` (hot memtable → sealed warm runs → cold
        mmap segments), with queue-full refusals charged back into the
        capture engine's loss accounting instead of vanishing.
    streaming_queue_records:
        Ingest-queue capacity in records; a batch that would push the
        queue past this is refused whole (backpressure, accounted).
    streaming_memtable_records:
        Hot-tier memtable size; a full memtable seals into a sorted
        warm run.
    streaming_spill_dir:
        Directory for the cold tier's mmap segments and the crash-safe
        ``registry.json``; ``None`` keeps every tier in memory.
    """

    campus_profile: str = "small"
    seed: int = 0
    privacy_level: PrivacyLevel = PrivacyLevel.PREFIX_PRESERVING
    #: Crypto-PAn key for the ingest-time address anonymizer; ``None``
    #: keeps the historical shared default.  Federated deployments give
    #: every site its own key so no two enclaves share a pseudonym space.
    privacy_key: Optional[bytes] = None
    capture_capacity_gbps: Optional[float] = None
    capture_buffer_bytes: float = 256e6
    window_s: float = 5.0
    segment_capacity: int = 50_000
    enable_sensors: bool = True
    store_shards: int = 1
    workers: int = 0
    obs_enabled: bool = False
    #: also tap distribution<->core trunks so east-west traffic ("packets
    #: that stay inside the enterprise", §5) reaches the store
    monitor_internal: bool = False
    start_time: float = 8 * 3600.0
    streaming: bool = False
    streaming_queue_records: int = 65_536
    streaming_memtable_records: int = 8_192
    streaming_spill_dir: Optional[str] = None
