"""The fast control loop harness (Figure 2, right half).

The loop itself lives inside :class:`repro.deploy.switch.EmulatedSwitch`
(sense -> infer -> react against live traffic); this harness runs a
deployed tool against a scenario on a fresh network and measures the
loop end to end: detection delay, mitigation effectiveness, and the
attack volume admitted before the reaction landed — per placement.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.resilience import CircuitBreaker
from repro.deploy.placement import PLACEMENTS
from repro.deploy.switch import SwitchConfig
from repro.events.scenario import Scenario, run_scenario
from repro.testbed.slo import CollateralReport, DetectionQuality, \
    evaluate_detections, measure_collateral


@dataclass
class ControlLoopReport:
    """One measured run of the fast loop."""

    placement: str
    quality: DetectionQuality
    collateral: CollateralReport
    attack_bytes_offered: float
    attack_bytes_admitted: float
    reaction_latency_s: Optional[float]
    detections: int
    #: switch fault/degradation counters (empty on fault-free runs)
    resilience: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False

    @property
    def attack_admitted_fraction(self) -> float:
        if self.attack_bytes_offered <= 0:
            return 0.0
        return self.attack_bytes_admitted / self.attack_bytes_offered


class ControlLoopHarness:
    """Runs tool deployments and scores the closed loop."""

    def __init__(self, tool, scenario_builder, network_builder,
                 fault_injector=None,
                 react_breaker: Optional[CircuitBreaker] = None, bus=None,
                 obs=None):
        """
        Parameters
        ----------
        tool:
            A :class:`repro.core.devloop.DeployableTool`.
        scenario_builder:
            ``scenario_builder(seed) -> Scenario``.
        network_builder:
            ``network_builder(seed) -> CampusNetwork``.
        fault_injector / react_breaker / bus:
            Optional chaos instrumentation, threaded into each deployed
            switch so runs can rehearse failure: injected data-plane
            faults, a breaker guarding the react step, and an event bus
            receiving the ``chaos:*`` / ``resilience:*`` audit trail.
        obs:
            Optional :class:`~repro.obs.Observability`, threaded into
            each deployed switch (fast-loop spans and counters).
        """
        self.tool = tool
        self.scenario_builder = scenario_builder
        self.network_builder = network_builder
        self.fault_injector = fault_injector
        self.react_breaker = react_breaker
        self.bus = bus
        self.obs = obs

    def run(self, seed: int = 0, placement: str = "data_plane",
            config: Optional[SwitchConfig] = None) -> ControlLoopReport:
        if placement not in PLACEMENTS:
            known = ", ".join(sorted(PLACEMENTS))
            raise KeyError(f"unknown placement {placement!r}; one of {known}")
        network = self.network_builder(seed)
        flows: List = []
        network.add_flow_observer(flows.append)

        run_config = copy.deepcopy(config or self.tool.switch_config)
        run_config.placement = placement
        switch = self.tool.deploy(network, run_config,
                                  fault_injector=self.fault_injector,
                                  react_breaker=self.react_breaker,
                                  bus=self.bus, obs=self.obs)
        scenario = self.scenario_builder(seed)
        ground_truth = run_scenario(network, scenario, seed=seed)

        quality = evaluate_detections(switch.detections, ground_truth)
        all_flows = flows + list(network.flows.blocked_flows)
        collateral = measure_collateral(all_flows, switch.mitigation_log)

        attack_offered = 0.0
        attack_admitted = 0.0
        for flow in all_flows:
            if flow.label == "benign":
                continue
            attack_offered += flow.size_bytes
            attack_admitted += flow.transferred_bytes

        reaction: Optional[float] = None
        effective = [
            d.effective_at - d.window_start
            for d in switch.detections if d.acted
        ]
        if effective:
            reaction = sum(effective) / len(effective)

        resilience = switch.resilience_summary()
        return ControlLoopReport(
            placement=placement,
            quality=quality,
            collateral=collateral,
            attack_bytes_offered=attack_offered,
            attack_bytes_admitted=attack_admitted,
            reaction_latency_s=reaction,
            detections=len(switch.detections),
            resilience=resilience,
            degraded=bool(switch.degraded_shadow or switch.table_misses
                          or switch.react_failures),
        )
