"""The slow development loop (Figure 2, left half).

``develop()`` executes the paper's four road-to-deployment steps:

(i)   train a heavyweight black-box teacher offline on the data store;
(ii)  extract a lightweight, interpretable student (XAI);
(iii) compile the student into a switch program and check that it fits
      the target's resources;
(iv)  road-test it shadow -> canary -> full under the IT
      organisation's guardrails, producing the evidence trail the
      operator reviews.

The output is a :class:`DeployableTool` — everything needed to run the
fast control loop — plus a :class:`DevLoopReport` with per-stage
quality numbers and timings.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.eventbus import EventBus
from repro.deploy.compiler import CompileResult, FeatureQuantizer, \
    compile_tree
from repro.deploy.p4gen import emit_p4
from repro.deploy.resources import SwitchResourceModel
from repro.deploy.switch import EmulatedSwitch, SwitchConfig
from repro.learning.dataset import Dataset
from repro.learning.split import train_test_split
from repro.learning.training import TrainResult, train_and_evaluate
from repro.testbed.guardrails import standard_guardrails
from repro.testbed.roadtest import RoadTestPipeline, RoadTestReport
from repro.verify import (
    DiagnosticReport,
    ProgramVerificationError,
    verify_program,
)
from repro.xai.distill import DistillationResult, distill_tree
from repro.xai.fidelity import FidelityReport, fidelity_report
from repro.xai.rules import RuleList, tree_to_rules


@dataclass
class DeployableTool:
    """A road-tested, compiled learning model ready to deploy."""

    name: str
    teacher: object
    student: object
    compiled: CompileResult
    p4_source: str
    rules: RuleList
    switch_config: SwitchConfig
    class_names: List[str]
    feature_names: List[str]
    verification: Optional[DiagnosticReport] = None

    def deploy(self, network, config: Optional[SwitchConfig] = None,
               fault_injector=None, react_breaker=None, bus=None) -> \
            EmulatedSwitch:
        """Instantiate the fast control loop on a network.

        Refuses to deploy when the tool's verification report carries
        error-level diagnostics — a tool that failed static checks
        never reaches the campus network.

        The runtime's benign class is aligned with this tool's class
        names: if the configured ``benign_class`` is not one of them,
        class 0 (the negative/default class) is used instead.

        ``fault_injector`` / ``react_breaker`` / ``bus`` thread chaos
        instrumentation into the switch for road-testing under faults.
        """
        if self.verification is not None and not self.verification.ok:
            raise ProgramVerificationError(self.verification)
        run_config = copy.deepcopy(config or self.switch_config)
        if self.class_names and run_config.benign_class not in \
                self.class_names:
            run_config.benign_class = self.class_names[0]
        return EmulatedSwitch(network, self.compiled, run_config,
                              fault_injector=fault_injector,
                              react_breaker=react_breaker, bus=bus)


@dataclass
class DevLoopReport:
    """Quality and cost of each development-loop stage."""

    teacher_result: TrainResult
    distillation: DistillationResult
    holdout_fidelity: FidelityReport
    resource_fit: object
    roadtest: Optional[RoadTestReport]
    verification: Optional[DiagnosticReport] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def ready(self) -> bool:
        if self.roadtest is None:
            return True
        return self.roadtest.deployed


class DevelopmentLoop:
    """Orchestrates steps (i)-(iv)."""

    def __init__(self, teacher_name: str = "boosting",
                 student_max_depth: int = 4,
                 student_min_samples_leaf: int = 5,
                 resource_model: Optional[SwitchResourceModel] = None,
                 bus: Optional[EventBus] = None,
                 strict_verify: bool = True):
        self.teacher_name = teacher_name
        self.student_max_depth = student_max_depth
        self.student_min_samples_leaf = student_min_samples_leaf
        self.resource_model = resource_model or SwitchResourceModel()
        self.bus = bus or EventBus()
        #: refuse to hand out tools whose verification found errors.
        self.strict_verify = strict_verify

    def develop(self, dataset: Dataset, tool_name: str = "detector",
                positive_class: Optional[str] = None,
                switch_config: Optional[SwitchConfig] = None,
                roadtest_factory: Optional[Callable] = None,
                seed: int = 0) -> "tuple[DeployableTool, DevLoopReport]":
        """Run the full loop on a labeled dataset.

        ``roadtest_factory(deploy_fn) -> RoadTestPipeline`` lets the
        caller supply the testbed context; omit it to skip road-testing
        (unit tests, ablations).
        """
        stage_seconds: Dict[str, float] = {}
        train, test = train_test_split(dataset, test_fraction=0.3, seed=seed)

        # (i) heavyweight teacher, offline, unconstrained.
        start = time.perf_counter()
        teacher_result = train_and_evaluate(
            self.teacher_name, train, test, positive_class=positive_class)
        stage_seconds["train_teacher"] = time.perf_counter() - start
        self.bus.publish("devloop:trained", model=self.teacher_name,
                         metrics=teacher_result.metrics)

        # (ii) XAI extraction into a deployable student.
        start = time.perf_counter()
        distillation = distill_tree(
            teacher_result.model, train.X,
            max_depth=self.student_max_depth,
            min_samples_leaf=self.student_min_samples_leaf,
            seed=seed,
            n_classes=dataset.n_classes,
        )
        holdout = fidelity_report(teacher_result.model, distillation.student,
                                  test.X, test.y)
        stage_seconds["distill"] = time.perf_counter() - start
        self.bus.publish("devloop:distilled",
                         fidelity=holdout.label_fidelity,
                         leaves=distillation.n_leaves)

        # (iii) compile + resource check + P4 emission.
        start = time.perf_counter()
        quantizer = FeatureQuantizer.for_features(train.X)
        compiled = compile_tree(distillation.student, dataset.feature_names,
                                quantizer, class_names=dataset.class_names,
                                program_name=tool_name)
        resource_fit = self.resource_model.fit([compiled])
        p4_source = emit_p4(compiled.program)
        rules = tree_to_rules(distillation.student, dataset.feature_names,
                              dataset.class_names)
        stage_seconds["compile"] = time.perf_counter() - start
        self.bus.publish("devloop:compiled", entries=compiled.n_entries,
                         tcam_bits=compiled.tcam_bits,
                         fits=resource_fit.fits)

        # (iii-b) static verification: the trust gate before anything
        # touches the campus network.  Errors refuse deployment.
        start = time.perf_counter()
        verification = verify_program(compiled.program,
                                      compile_result=compiled,
                                      resource_model=self.resource_model)
        stage_seconds["verify"] = time.perf_counter() - start
        self.bus.publish("devloop:verified", ok=verification.ok,
                         **verification.counts())
        if self.strict_verify and not verification.ok:
            raise ProgramVerificationError(verification)

        tool = DeployableTool(
            name=tool_name,
            teacher=teacher_result.model,
            student=distillation.student,
            compiled=compiled,
            p4_source=p4_source,
            rules=rules,
            switch_config=switch_config or SwitchConfig(),
            class_names=list(dataset.class_names),
            feature_names=list(dataset.feature_names),
            verification=verification,
        )

        # (iv) road-test on the campus testbed.
        roadtest_report: Optional[RoadTestReport] = None
        if roadtest_factory is not None:
            start = time.perf_counter()

            def deploy_fn(network, config):
                return tool.deploy(network, config)

            pipeline = roadtest_factory(deploy_fn)
            roadtest_report = pipeline.run(seed=seed)
            stage_seconds["roadtest"] = time.perf_counter() - start
            self.bus.publish("devloop:roadtested",
                             deployed=roadtest_report.deployed)

        report = DevLoopReport(
            teacher_result=teacher_result,
            distillation=distillation,
            holdout_fidelity=holdout,
            resource_fit=resource_fit,
            roadtest=roadtest_report,
            verification=verification,
            stage_seconds=stage_seconds,
        )
        return tool, report


def make_roadtest_factory(platform, scenario_builder: Callable,
                          base_config: SwitchConfig,
                          guardrails=None) -> Callable:
    """Standard road-test context over a platform's fresh networks.

    ``scenario_builder(seed) -> Scenario``; each phase gets a fresh
    campus from the platform with a derived seed.
    """
    rails = guardrails if guardrails is not None else standard_guardrails()

    def run_factory(seed: int):
        network = platform.fresh_network(seed)
        return network, scenario_builder(seed)

    def factory(deploy_fn):
        return RoadTestPipeline(
            run_factory=run_factory,
            deploy_fn=deploy_fn,
            base_config=base_config,
            guardrails=rails,
        )

    return factory
