"""The slow development loop (Figure 2, left half).

``develop()`` executes the paper's four road-to-deployment steps:

(i)   train a heavyweight black-box teacher offline on the data store;
(ii)  extract a lightweight, interpretable student (XAI);
(iii) compile the student into a switch program and check that it fits
      the target's resources;
(iv)  road-test it shadow -> canary -> full under the IT
      organisation's guardrails, producing the evidence trail the
      operator reviews.

The output is a :class:`DeployableTool` — everything needed to run the
fast control loop — plus a :class:`DevLoopReport` with per-stage
quality numbers and timings.
"""

from __future__ import annotations

import copy
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.eventbus import EventBus
from repro.deploy.compiler import CompileResult, FeatureQuantizer, \
    compile_tree
from repro.deploy.p4gen import emit_p4
from repro.deploy.resources import SwitchResourceModel
from repro.deploy.switch import EmulatedSwitch, SwitchConfig
from repro.learning.dataset import Dataset
from repro.learning.split import train_test_split
from repro.learning.training import TrainResult, train_and_evaluate
from repro.testbed.guardrails import standard_guardrails
from repro.testbed.roadtest import RoadTestPipeline, RoadTestReport
from repro.verify import (
    DiagnosticReport,
    ProgramVerificationError,
    verify_program,
)
from repro.xai.distill import DistillationResult, distill_tree
from repro.xai.fidelity import FidelityReport, fidelity_report
from repro.xai.rules import RuleList, tree_to_rules


@dataclass
class DeployableTool:
    """A road-tested, compiled learning model ready to deploy."""

    name: str
    teacher: object
    student: object
    compiled: CompileResult
    p4_source: str
    rules: RuleList
    switch_config: SwitchConfig
    class_names: List[str]
    feature_names: List[str]
    verification: Optional[DiagnosticReport] = None

    def deploy(self, network, config: Optional[SwitchConfig] = None,
               fault_injector=None, react_breaker=None, bus=None,
               obs=None) -> EmulatedSwitch:
        """Instantiate the fast control loop on a network.

        Refuses to deploy when the tool's verification report carries
        error-level diagnostics — a tool that failed static checks
        never reaches the campus network.

        The runtime's benign class is aligned with this tool's class
        names: if the configured ``benign_class`` is not one of them,
        class 0 (the negative/default class) is used instead.

        ``fault_injector`` / ``react_breaker`` / ``bus`` thread chaos
        instrumentation into the switch for road-testing under faults.
        """
        if self.verification is not None and not self.verification.ok:
            raise ProgramVerificationError(self.verification)
        run_config = copy.deepcopy(config or self.switch_config)
        if self.class_names and run_config.benign_class not in \
                self.class_names:
            run_config.benign_class = self.class_names[0]
        return EmulatedSwitch(network, self.compiled, run_config,
                              fault_injector=fault_injector,
                              react_breaker=react_breaker, bus=bus,
                              obs=obs)


@dataclass
class DevLoopReport:
    """Quality and cost of each development-loop stage."""

    teacher_result: TrainResult
    distillation: DistillationResult
    holdout_fidelity: FidelityReport
    resource_fit: object
    roadtest: Optional[RoadTestReport]
    verification: Optional[DiagnosticReport] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def ready(self) -> bool:
        if self.roadtest is None:
            return True
        return self.roadtest.deployed


class DevelopmentLoop:
    """Orchestrates steps (i)-(iv)."""

    def __init__(self, teacher_name: str = "boosting",
                 student_max_depth: int = 4,
                 student_min_samples_leaf: int = 5,
                 resource_model: Optional[SwitchResourceModel] = None,
                 bus: Optional[EventBus] = None,
                 strict_verify: bool = True, obs=None,
                 repo_lint: bool = False):
        self.teacher_name = teacher_name
        self.student_max_depth = student_max_depth
        self.student_min_samples_leaf = student_min_samples_leaf
        self.resource_model = resource_model or SwitchResourceModel()
        self.bus = bus or EventBus()
        #: refuse to hand out tools whose verification found errors.
        self.strict_verify = strict_verify
        #: optional Observability: one span per development stage.
        self.obs = obs
        #: also gate on the repo-wide static-analysis suite (cached:
        #: one lint of the installed package per process).
        self.repo_lint = repo_lint

    def _span(self, name: str, **attrs):
        if self.obs is None:
            return nullcontext()
        return self.obs.span(name, **attrs)

    def develop(self, dataset: Dataset, tool_name: str = "detector",
                positive_class: Optional[str] = None,
                switch_config: Optional[SwitchConfig] = None,
                roadtest_factory: Optional[Callable] = None,
                seed: int = 0) -> "tuple[DeployableTool, DevLoopReport]":
        """Run the full loop on a labeled dataset.

        ``roadtest_factory(deploy_fn) -> RoadTestPipeline`` lets the
        caller supply the testbed context; omit it to skip road-testing
        (unit tests, ablations).
        """
        stage_seconds: Dict[str, float] = {}
        train, test = train_test_split(dataset, test_fraction=0.3, seed=seed)

        # (i) heavyweight teacher, offline, unconstrained.
        start = time.perf_counter()
        with self._span("devloop.train", model=self.teacher_name,
                        rows=len(train)):
            teacher_result = train_and_evaluate(
                self.teacher_name, train, test,
                positive_class=positive_class)
        stage_seconds["train_teacher"] = time.perf_counter() - start
        self.bus.publish("devloop:trained", model=self.teacher_name,
                         metrics=teacher_result.metrics)

        # (ii) XAI extraction into a deployable student.
        start = time.perf_counter()
        with self._span("devloop.distill",
                        max_depth=self.student_max_depth):
            distillation = distill_tree(
                teacher_result.model, train.X,
                max_depth=self.student_max_depth,
                min_samples_leaf=self.student_min_samples_leaf,
                seed=seed,
                n_classes=dataset.n_classes,
            )
            holdout = fidelity_report(teacher_result.model,
                                      distillation.student, test.X, test.y)
        stage_seconds["distill"] = time.perf_counter() - start
        self.bus.publish("devloop:distilled",
                         fidelity=holdout.label_fidelity,
                         leaves=distillation.n_leaves)

        # (iii) compile + resource check + P4 emission.
        start = time.perf_counter()
        with self._span("devloop.compile", tool=tool_name):
            quantizer = FeatureQuantizer.for_features(train.X)
            compiled = compile_tree(distillation.student,
                                    dataset.feature_names, quantizer,
                                    class_names=dataset.class_names,
                                    program_name=tool_name)
            resource_fit = self.resource_model.fit([compiled])
            p4_source = emit_p4(compiled.program)
            rules = tree_to_rules(distillation.student,
                                  dataset.feature_names,
                                  dataset.class_names)
        stage_seconds["compile"] = time.perf_counter() - start
        self.bus.publish("devloop:compiled", entries=compiled.n_entries,
                         tcam_bits=compiled.tcam_bits,
                         fits=resource_fit.fits)

        # (iii-b) static verification: the trust gate before anything
        # touches the campus network.  Errors refuse deployment.
        start = time.perf_counter()
        with self._span("devloop.verify", tool=tool_name):
            verification = verify_program(compiled.program,
                                          compile_result=compiled,
                                          resource_model=self.resource_model)
        stage_seconds["verify"] = time.perf_counter() - start
        self.bus.publish("devloop:verified", ok=verification.ok,
                         **verification.counts())
        if self.strict_verify and not verification.ok:
            raise ProgramVerificationError(verification)

        # (iii-c) optional repo hygiene gate: the same static-analysis
        # suite CI runs (privacy taint + parallel safety + patterns),
        # linted once per process and cached.
        if self.repo_lint:
            from repro.verify.lint import lint_package_cached

            start = time.perf_counter()
            with self._span("devloop.repo_lint"):
                lint_report = lint_package_cached()
            stage_seconds["repo_lint"] = time.perf_counter() - start
            self.bus.publish("devloop:repo-linted", ok=lint_report.ok,
                             **lint_report.counts())
            if self.strict_verify and not lint_report.ok:
                raise ProgramVerificationError(lint_report)

        tool = DeployableTool(
            name=tool_name,
            teacher=teacher_result.model,
            student=distillation.student,
            compiled=compiled,
            p4_source=p4_source,
            rules=rules,
            switch_config=switch_config or SwitchConfig(),
            class_names=list(dataset.class_names),
            feature_names=list(dataset.feature_names),
            verification=verification,
        )

        # (iv) road-test on the campus testbed.
        roadtest_report: Optional[RoadTestReport] = None
        if roadtest_factory is not None:
            start = time.perf_counter()

            def deploy_fn(network, config):
                return tool.deploy(network, config)

            with self._span("devloop.roadtest", tool=tool_name):
                pipeline = roadtest_factory(deploy_fn)
                roadtest_report = pipeline.run(seed=seed)
            stage_seconds["roadtest"] = time.perf_counter() - start
            self.bus.publish("devloop:roadtested",
                             deployed=roadtest_report.deployed)

        report = DevLoopReport(
            teacher_result=teacher_result,
            distillation=distillation,
            holdout_fidelity=holdout,
            resource_fit=resource_fit,
            roadtest=roadtest_report,
            verification=verification,
            stage_seconds=stage_seconds,
        )
        return tool, report

    def cross_validate(self, dataset: Dataset, k: int = 5,
                       positive_class: Optional[str] = None,
                       seed: int = 0, executor=None) -> Dict[str, Dict]:
        """k-fold cross-validation of the teacher as a small task graph.

        Fold tasks are independent; a summary task depends on all of
        them.  With a parallel executor the folds run in worker
        processes, yet the fold assignment (a seeded permutation) and
        the aggregation are identical to the serial run, so the summary
        does not depend on the worker count.
        """
        if k < 2:
            raise ValueError("cross-validation needs k >= 2")
        if k > len(dataset):
            raise ValueError(
                f"k={k} folds but only {len(dataset)} samples")
        from repro.parallel import Dep, ParallelExecutor, TaskGraph
        executor = executor if executor is not None else ParallelExecutor(0)
        order = np.random.default_rng(seed).permutation(len(dataset))
        folds = np.array_split(order, k)
        graph = TaskGraph()
        names: List[str] = []
        for i, test_idx in enumerate(folds):
            train_idx = np.concatenate(
                [fold for j, fold in enumerate(folds) if j != i])
            name = f"fold-{i}"
            graph.add(name, _cv_fold_task, self.teacher_name,
                      dataset.X, dataset.y, list(dataset.feature_names),
                      list(dataset.class_names), train_idx, test_idx,
                      positive_class)
            names.append(name)
        graph.add("summary", _cv_summary_task,
                  *[Dep(name) for name in names])
        summary = graph.run(executor)["summary"]
        self.bus.publish("devloop:cross_validated",
                         model=self.teacher_name, k=k, summary=summary)
        return summary

    def develop_per_class(self, dataset: Dataset,
                          classes: Optional[List[str]] = None,
                          tool_prefix: str = "detector", seed: int = 0,
                          executor=None,
                          benign_class: str = "benign") -> Dict[str, Dict]:
        """One-vs-rest development runs, one task graph node per class.

        Each class task distills and *verifies* its own detector
        (``develop()`` end to end, minus road-testing) inside a worker
        that builds its own :class:`DevelopmentLoop` and
        :class:`EventBus` — no live bus or switch ever crosses the
        process boundary.  Returns ``{class: summary dict}``; a class
        whose program fails strict verification reports
        ``verified=False`` with the diagnostic instead of raising.
        """
        if classes is None:
            classes = [name for name in dataset.class_names
                       if name != benign_class]
        unknown = [name for name in classes
                   if name not in dataset.class_names]
        if unknown:
            raise ValueError(f"unknown classes: {unknown}")
        if not classes:
            raise ValueError("no target classes to develop detectors for")
        from repro.parallel import Dep, ParallelExecutor, TaskGraph
        executor = executor if executor is not None else ParallelExecutor(0)
        loop_config = {
            "teacher_name": self.teacher_name,
            "student_max_depth": self.student_max_depth,
            "student_min_samples_leaf": self.student_min_samples_leaf,
            "strict_verify": self.strict_verify,
        }
        graph = TaskGraph()
        for name in classes:
            graph.add(f"class:{name}", _develop_class_task, loop_config,
                      dataset.X, dataset.y, list(dataset.feature_names),
                      list(dataset.class_names), name,
                      f"{tool_prefix}_{name}", seed)
        graph.add("summary", _per_class_summary_task,
                  *[Dep(f"class:{name}") for name in classes])
        summary = graph.run(executor)["summary"]
        self.bus.publish("devloop:per_class_developed",
                         classes=list(classes),
                         verified={name: entry["verified"]
                                   for name, entry in summary.items()})
        return summary


# -- parallel slow-path tasks -------------------------------------------------
#
# These run inside worker processes, so they are module-level on
# purpose: the executor refuses lambdas and closures, and anything a
# task needs that is not picklable (an EventBus, a resource model) is
# rebuilt inside the worker rather than captured from the parent.


def _cv_fold_task(teacher_name: str, X, y, feature_names, class_names,
                  train_idx, test_idx,
                  positive_class: Optional[str]) -> Dict[str, float]:
    """Fit and score one cross-validation fold; returns its metrics."""
    train = Dataset(X[train_idx], y[train_idx], list(feature_names),
                    list(class_names))
    test = Dataset(X[test_idx], y[test_idx], list(feature_names),
                   list(class_names))
    result = train_and_evaluate(teacher_name, train, test,
                                positive_class=positive_class)
    return dict(result.metrics)


def _cv_summary_task(*fold_metrics: Dict[str, float]) -> Dict[str, Dict]:
    """Aggregate fold metrics into per-metric mean/std/values."""
    keys = sorted({key for metrics in fold_metrics for key in metrics})
    summary: Dict[str, Dict] = {}
    for key in keys:
        values = [metrics[key] for metrics in fold_metrics
                  if key in metrics]
        summary[key] = {
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "folds": [float(value) for value in values],
        }
    return summary


def _develop_class_task(loop_config: Dict, X, y, feature_names, class_names,
                        target_class: str, tool_name: str,
                        seed: int) -> Dict:
    """Develop a one-vs-rest detector for ``target_class`` in a worker.

    Builds a private :class:`DevelopmentLoop` (with its own
    :class:`EventBus` and default resource model) so the parent's live
    objects stay out of the shipment, and returns a small picklable
    summary.  Strict-verification failures are reported, not raised:
    one unverifiable class must not torpedo its siblings' results.
    """
    y = np.asarray(y)
    positive = list(class_names).index(target_class)
    binary = Dataset(np.asarray(X), (y == positive).astype(int),
                     list(feature_names), ["rest", target_class])
    loop = DevelopmentLoop(bus=EventBus(), **loop_config)
    try:
        tool, report = loop.develop(binary, tool_name=tool_name,
                                    positive_class=target_class, seed=seed)
    except ProgramVerificationError as exc:
        return {"class": target_class, "verified": False,
                "error": str(exc)}
    return {
        "class": target_class,
        "verified": report.verification is None
        or bool(report.verification.ok),
        "teacher_metrics": dict(report.teacher_result.metrics),
        "holdout_fidelity": float(report.holdout_fidelity.label_fidelity),
        "n_leaves": int(report.distillation.n_leaves),
        "table_entries": int(tool.compiled.n_entries),
        "tcam_bits": int(tool.compiled.tcam_bits),
        "fits": bool(report.resource_fit.fits),
    }


def _per_class_summary_task(*class_reports: Dict) -> Dict[str, Dict]:
    """Key the per-class reports by class name (insertion = task order)."""
    return {report["class"]: report for report in class_reports}


def make_roadtest_factory(platform, scenario_builder: Callable,
                          base_config: SwitchConfig,
                          guardrails=None) -> Callable:
    """Standard road-test context over a platform's fresh networks.

    ``scenario_builder(seed) -> Scenario``; each phase gets a fresh
    campus from the platform with a derived seed.
    """
    rails = guardrails if guardrails is not None else standard_guardrails()

    def run_factory(seed: int):
        network = platform.fresh_network(seed)
        return network, scenario_builder(seed)

    def factory(deploy_fn):
        return RoadTestPipeline(
            run_factory=run_factory,
            deploy_fn=deploy_fn,
            base_config=base_config,
            guardrails=rails,
        )

    return factory
