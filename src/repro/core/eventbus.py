"""Minimal publish/subscribe bus for platform lifecycle events.

Stages of the development loop publish progress events ("trained",
"distilled", "compiled", "roadtest:shadow", ...) so experiments and
examples can trace what happened without coupling to internals.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class BusEvent:
    topic: str
    payload: Dict = field(default_factory=dict)


class EventBus:
    """Synchronous topic bus; subscribers may use '*' for everything."""

    def __init__(self):
        self._subscribers: Dict[str, List[Callable[[BusEvent], None]]] = \
            defaultdict(list)
        self.log: List[BusEvent] = []

    def subscribe(self, topic: str,
                  callback: Callable[[BusEvent], None]) -> None:
        self._subscribers[topic].append(callback)

    def publish(self, topic: str, **payload) -> BusEvent:
        event = BusEvent(topic=topic, payload=payload)
        self.log.append(event)
        for callback in self._subscribers.get(topic, []):
            callback(event)
        for callback in self._subscribers.get("*", []):
            callback(event)
        return event

    def topics_seen(self) -> List[str]:
        return [event.topic for event in self.log]
