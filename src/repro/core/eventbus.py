"""Minimal publish/subscribe bus for platform lifecycle events.

Stages of the development loop publish progress events ("trained",
"distilled", "compiled", "roadtest:shadow", ...) so experiments and
examples can trace what happened without coupling to internals.  The
chaos/resilience layers publish ``chaos:*`` and ``resilience:*`` events
here, making every injected fault and every recovery auditable.

Dispatch isolates subscribers: one raising callback can never abort the
fan-out for the callbacks behind it.  Failed deliveries are collected on
:attr:`EventBus.dead_letters` instead of propagating — the bus is
telemetry, and telemetry must not take the pipeline down with it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class BusEvent:
    topic: str
    payload: Dict = field(default_factory=dict)


@dataclass
class DeadLetter:
    """One failed delivery: the event, who raised, and what they raised."""

    topic: str
    subscriber: str
    error: str
    event: BusEvent


def _subscriber_name(callback: Callable) -> str:
    return getattr(callback, "__qualname__",
                   getattr(callback, "__name__", repr(callback)))


class EventBus:
    """Synchronous topic bus; subscribers may use '*' for everything."""

    def __init__(self, max_dead_letters: int = 10_000):
        self._subscribers: Dict[str, List[Callable[[BusEvent], None]]] = \
            defaultdict(list)
        self.log: List[BusEvent] = []
        self.dead_letters: List[DeadLetter] = []
        self.dead_letter_count = 0
        self.max_dead_letters = max_dead_letters

    def subscribe(self, topic: str,
                  callback: Callable[[BusEvent], None]) -> None:
        self._subscribers[topic].append(callback)

    def _dispatch(self, callback: Callable[[BusEvent], None],
                  event: BusEvent) -> None:
        try:
            callback(event)
        except Exception as exc:
            self.dead_letter_count += 1
            if len(self.dead_letters) < self.max_dead_letters:
                self.dead_letters.append(DeadLetter(
                    topic=event.topic,
                    subscriber=_subscriber_name(callback),
                    error=repr(exc),
                    event=event,
                ))

    def publish(self, topic: str, **payload) -> BusEvent:
        event = BusEvent(topic=topic, payload=payload)
        self.log.append(event)
        for callback in self._subscribers.get(topic, []):
            self._dispatch(callback, event)
        for callback in self._subscribers.get("*", []):
            self._dispatch(callback, event)
        return event

    def topics_seen(self) -> List[str]:
        return [event.topic for event in self.log]
