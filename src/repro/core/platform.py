"""The campus platform facade (Figure 1).

One :class:`CampusPlatform` builds the instrumented campus: network +
border tap + capture engine + privacy transforms + metadata extraction
+ sensors + data store.  Researchers then use it in the two roles the
paper proposes:

* **data source** — :meth:`collect` runs a scenario and fills the
  store; :meth:`build_dataset` runs the top-down featurization.
* **testbed** — :meth:`fresh_network` hands out new traffic days with
  the same configuration for road-testing deployed tools.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.capture.engine import CaptureEngine
from repro.capture.flows import FlowAssembler
from repro.capture.metadata import MetadataExtractor
from repro.capture.sensors import FirewallSensor, ServerLogSensor
from repro.capture.tap import BorderTap
from repro.chaos.resilience import DegradationLedger, TransientError, \
    retry
from repro.core.config import PlatformConfig
from repro.core.eventbus import EventBus
from repro.datastore.labels import Labeler
from repro.datastore.store import DataStore, ShardedDataStore
from repro.datastore.tiers import StreamingIngestor, TieredDataStore, \
    TieredShardedDataStore, TierPolicy
from repro.events.base import GroundTruth
from repro.events.scenario import Scenario, run_scenario
from repro.learning.dataset import Dataset
from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.netsim.campus import make_campus
from repro.netsim.network import CampusNetwork
from repro.parallel import ParallelExecutor
from repro.privacy.policy import PrivacyLevel, PrivacyPolicy, \
    make_ingest_transform


@dataclass
class CollectionResult:
    """What one :meth:`CampusPlatform.collect` produced."""

    ground_truth: GroundTruth
    packets_captured: int
    flows_stored: int
    logs_stored: int
    capture_loss_rate: float
    duration_s: float
    wall_seconds: float


class CampusPlatform:
    """Instrumented campus network + data store, ready for research."""

    def __init__(self, config: Optional[PlatformConfig] = None,
                 fault_injector=None, obs=None):
        self.config = config or PlatformConfig()
        self.bus = EventBus()
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.bind_bus(self.bus)
        self.degradation = DegradationLedger(bus=self.bus)
        # Observability is pay-for-what-you-use: nothing is built
        # unless the caller passes one in or opts in via the config,
        # and every layer below guards on ``obs is not None``.
        if obs is None and self.config.obs_enabled:
            from repro.obs import Observability
            obs = Observability()
        self.obs = obs
        if obs is not None:
            obs.attach_bus(self.bus)
        self.network = self._build_network(self.config.seed)
        if self.config.privacy_key is not None:
            self.privacy_policy = PrivacyPolicy.preset(
                self.config.privacy_level, key=self.config.privacy_key)
        else:
            self.privacy_policy = PrivacyPolicy.preset(
                self.config.privacy_level)
        # Parallel substrate: the executor is lazy (no pool until the
        # first parallel fan-out) and degrades to serial via the ledger.
        self.executor = ParallelExecutor(
            workers=self.config.workers, ledger=self.degradation,
            fault_injector=fault_injector, obs=obs)
        extractor = MetadataExtractor(self.network.topology)
        if self.config.streaming:
            policy = TierPolicy(
                memtable_records=self.config.streaming_memtable_records)
            if self.config.store_shards > 1:
                self.store = TieredShardedDataStore(
                    n_shards=self.config.store_shards,
                    metadata_extractor=extractor,
                    fault_injector=fault_injector,
                    window_s=self.config.window_s,
                    executor=self.executor, obs=obs, policy=policy,
                    spill_dir=self.config.streaming_spill_dir,
                )
            else:
                self.store = TieredDataStore(
                    metadata_extractor=extractor, policy=policy,
                    spill_dir=self.config.streaming_spill_dir,
                    fault_injector=fault_injector, obs=obs,
                )
        elif self.config.store_shards > 1:
            self.store = ShardedDataStore(
                n_shards=self.config.store_shards,
                metadata_extractor=extractor,
                segment_capacity=self.config.segment_capacity,
                fault_injector=fault_injector,
                window_s=self.config.window_s,
                executor=self.executor,
                obs=obs,
            )
        else:
            self.store = DataStore(
                metadata_extractor=extractor,
                segment_capacity=self.config.segment_capacity,
                fault_injector=fault_injector,
                obs=obs,
            )
        self.store.add_ingest_transform(make_ingest_transform(
            self.privacy_policy, self.network.topology.is_internal_ip,
        ))
        self._instrument(self.network)
        self.collections: List[CollectionResult] = []

    # -- construction -------------------------------------------------------

    def _build_network(self, seed: int) -> CampusNetwork:
        return make_campus(self.config.campus_profile, seed=seed,
                           start_time=self.config.start_time)

    def _instrument(self, network: CampusNetwork) -> None:
        """Attach tap(s), capture engine, assembler, and sensors."""
        self.capture = CaptureEngine(
            capacity_gbps=self.config.capture_capacity_gbps,
            buffer_bytes=self.config.capture_buffer_bytes,
            fault_injector=self.fault_injector,
            shard_router=getattr(self.store, "router", None),
            obs=self.obs)
        links = [network.topology.border_link]
        if self.config.monitor_internal:
            links.extend(
                edge for edge in network.topology.edges()
                if {edge[0][:4], edge[1][:4]} == {"dist", "core"}
            )
        self.tap = BorderTap(network, self.capture, links=links,
                             fault_injector=self.fault_injector,
                             bus=self.bus)
        self.assembler = FlowAssembler()
        if self.config.streaming:
            # capture → bounded queue → tiered store; queue-full
            # refusals are charged back into the engine's loss stats
            # by the ingestor itself, so no _guard wrapper here.
            self.ingestor = StreamingIngestor(
                self.store, engine=self.capture,
                queue_records=self.config.streaming_queue_records,
                obs=self.obs)
        else:
            self.ingestor = None
            self.capture.subscribe(self._guard(self.store.ingest_packets,
                                               stage="store",
                                               site="store.ingest_packets"))
        self.capture.subscribe(self.assembler.add_packets)
        self.sensors = []
        if self.config.enable_sensors:
            server_logs = ServerLogSensor(network, seed=self.config.seed)
            firewall = FirewallSensor(network)
            for sensor in (server_logs, firewall):
                sensor.subscribe(self._guard(self.store.ingest_log,
                                             stage="sensors",
                                             site="store.ingest_log"))
                self.sensors.append(sensor)

    def _guard(self, ingest_fn, stage: str, site: str):
        """Resilient ingest wiring: retry transients, then degrade.

        Fault-free platforms keep the raw callback — zero overhead on
        the hot path.  Under chaos, transient store errors are retried
        with backoff; a failure that outlasts every retry sheds that
        one batch/record into the degradation ledger instead of killing
        the capture fan-out.
        """
        if self.fault_injector is None:
            return ingest_fn
        retried = self.store.resilient_ingestor(ingest_fn, bus=self.bus,
                                                site=site)

        def guarded(batch):
            try:
                return retried(batch)
            except TransientError as exc:
                self.degradation.degrade(stage, "shed-batch", repr(exc))
                return None
        return guarded

    def fresh_network(self, seed: int) -> CampusNetwork:
        """A new, uninstrumented traffic day for testbed use."""
        return self._build_network(seed)

    def close(self) -> None:
        """Release the worker pool (no-op when running serial)."""
        self.executor.shutdown()

    # -- data source role -------------------------------------------------------

    def collect(self, scenario: Scenario,
                seed: Optional[int] = None) -> CollectionResult:
        """Run a scenario on the instrumented campus; fill the store."""
        if self.obs is None:
            return self._collect(scenario, seed)
        with self.obs.span("capture.collect", scenario=scenario.name) \
                as span:
            result = self._collect(scenario, seed)
            span.set(packets=result.packets_captured,
                     flows=result.flows_stored)
        return result

    def _collect(self, scenario: Scenario,
                 seed: Optional[int] = None) -> CollectionResult:
        seed = self.config.seed if seed is None else seed
        start_wall = time.perf_counter()
        packets_before = self.capture.stats.packets_captured
        self.bus.publish("collect:start", scenario=scenario.name, seed=seed)
        ground_truth = run_scenario(self.network, scenario, seed=seed)
        if self.ingestor is not None:
            # Labeling below needs every queued batch in the store —
            # but compaction must wait until after label_all(): labels
            # are applied to in-memory records, and a record spilled
            # to the cold tier first would lose its label (cold rows
            # are rebuilt from disk on every read).
            self.ingestor.drain(compact=False)
        flow_records = self.assembler.flush()
        if self.fault_injector is not None:
            flows_stored = retry(
                lambda: self.store.ingest_flows(flow_records),
                clock=self.store.clock, bus=self.bus,
                site="store.ingest_flows")
        else:
            flows_stored = self.store.ingest_flows(flow_records)
        Labeler(self.store, ground_truth).label_all()
        if self.ingestor is not None:
            # now that every record carries its curated label, let the
            # compactor merge/spill to debt-free — labels ride along
            # into the cold format.
            while self.store.compactor.run():
                pass
        result = CollectionResult(
            ground_truth=ground_truth,
            packets_captured=(self.capture.stats.packets_captured
                              - packets_before),
            flows_stored=flows_stored,
            logs_stored=self.store.count("logs"),
            capture_loss_rate=self.capture.stats.loss_rate,
            duration_s=scenario.duration_s,
            wall_seconds=time.perf_counter() - start_wall,
        )
        self.collections.append(result)
        self.bus.publish("collect:done",
                         packets=result.packets_captured,
                         flows=result.flows_stored)
        return result

    def build_dataset(self, ground_truth: Optional[GroundTruth] = None,
                      time_range: Optional[Tuple] = None,
                      class_names: Optional[List[str]] = None,
                      window_s: Optional[float] = None) -> Dataset:
        """Top-down featurization straight off the data store."""
        if ground_truth is None:
            if not self.collections:
                raise RuntimeError("no collections yet; call collect() first")
            ground_truth = self.collections[-1].ground_truth
        featurizer = SourceWindowFeaturizer(FeatureConfig(
            window_s=window_s or self.config.window_s))
        if self.obs is None:
            dataset = featurizer.from_store(
                self.store, ground_truth=ground_truth,
                time_range=time_range, class_names=class_names,
                executor=self.executor,
            )
        else:
            with self.obs.span("devloop.featurize") as span:
                dataset = featurizer.from_store(
                    self.store, ground_truth=ground_truth,
                    time_range=time_range, class_names=class_names,
                    executor=self.executor,
                )
                span.set(rows=len(dataset))
        self.bus.publish("dataset:built", rows=len(dataset),
                         classes=dataset.class_counts())
        return dataset

    # -- reporting -----------------------------------------------------------------

    def summary(self) -> Dict:
        """Store + capture health overview."""
        out = {
            "campus": self.config.campus_profile,
            "privacy": self.config.privacy_level.value,
            "store": self.store.summary(),
            "capture": {
                "offered": self.capture.stats.packets_offered,
                "captured": self.capture.stats.packets_captured,
                "loss_rate": self.capture.stats.loss_rate,
            },
            "collections": len(self.collections),
        }
        if self.ingestor is not None:
            out["tiers"] = self.store.tier_summary()
            out["streaming"] = {
                "queue_accepted": self.ingestor.queue.accepted_records,
                "queue_rejected": self.ingestor.queue.rejected_records,
                "ingested": self.ingestor.ingested_records,
            }
        if self.config.workers or getattr(self.store, "shards", None):
            out["parallel"] = {
                **self.executor.summary(),
                "shards": getattr(self.store, "n_shards", 1),
            }
        if self.obs is not None:
            out["obs"] = {
                "spans": len(self.obs.tracer.spans),
                "metrics": len(self.obs.metrics),
                "trace_signature": self.obs.tracer.tree_signature(),
            }
        if self.fault_injector is not None:
            stats = self.capture.stats
            out["chaos"] = {
                "faults": self.fault_injector.counts(),
                "fault_drop_rate": stats.fault_drop_rate,
                "store_transient_errors": self.store.transient_errors,
                "degradations": len(self.degradation.entries),
                "dead_letters": self.bus.dead_letter_count,
            }
        return out
