"""Border tap: binds a capture engine to an observed link."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.capture.engine import CaptureEngine
from repro.netsim.packets import PacketRecord


class BorderTap:
    """Optical tap on a network link feeding a capture engine.

    >>> from repro.netsim import make_campus
    >>> net = make_campus("tiny")
    >>> tap = BorderTap(net)          # defaults to the border link
    >>> tap.engine.stats.packets_offered
    0
    """

    def __init__(self, network, engine: Optional[CaptureEngine] = None,
                 link: Optional[Tuple[str, str]] = None,
                 links: Optional[List[Tuple[str, str]]] = None):
        self.network = network
        self.engine = engine or CaptureEngine()
        if links is not None:
            self.links = list(links)
        else:
            self.links = [link or network.topology.border_link]
        network.add_packet_observer(self._on_packets, links=self.links)

    @property
    def link(self) -> Tuple[str, str]:
        """The first (primary) monitored link."""
        return self.links[0]

    def _on_packets(self, packets: List[PacketRecord]) -> None:
        self.engine.ingest(packets)

    def subscribe(self, callback) -> None:
        """Convenience passthrough to the engine's captured stream."""
        self.engine.subscribe(callback)
