"""Border tap: binds a capture engine to an observed link.

With a fault injector attached, the tap models a stalling sensor read
path: reads that hit an injected :class:`SensorStallError` are retried
with bounded exponential backoff (on a virtual clock — no real
sleeping); a stall that outlasts every retry sheds that batch and the
tap keeps capturing, counting what it lost.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.capture.engine import CaptureEngine
from repro.chaos.faults import FaultKind, SensorStallError
from repro.chaos.resilience import RetryPolicy, VirtualClock, retry
from repro.netsim.packets import PacketRecord

#: default bounded-read policy: 3 quick retries, deterministic jitter
TAP_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.005,
                               multiplier=2.0, max_delay_s=0.05,
                               jitter=0.1, deadline_s=1.0)


class BorderTap:
    """Optical tap on a network link feeding a capture engine.

    >>> from repro.netsim import make_campus
    >>> net = make_campus("tiny")
    >>> tap = BorderTap(net)          # defaults to the border link
    >>> tap.engine.stats.packets_offered
    0
    """

    def __init__(self, network, engine: Optional[CaptureEngine] = None,
                 link: Optional[Tuple[str, str]] = None,
                 links: Optional[List[Tuple[str, str]]] = None,
                 fault_injector=None, retry_policy: Optional[RetryPolicy] = None,
                 bus=None):
        self.network = network
        self.engine = engine or CaptureEngine()
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or TAP_RETRY_POLICY
        self.bus = bus
        self._retry_clock = VirtualClock()
        self.stalls = 0            # injected stalls observed
        self.batches_shed = 0      # batches lost to unrecovered stalls
        if links is not None:
            self.links = list(links)
        else:
            self.links = [link or network.topology.border_link]
        network.add_packet_observer(self._on_packets, links=self.links)

    @property
    def link(self) -> Tuple[str, str]:
        """The first (primary) monitored link."""
        return self.links[0]

    def _on_packets(self, packets: List[PacketRecord]) -> None:
        if self.fault_injector is None:
            self.engine.ingest(packets)
            return

        def read():
            if self.fault_injector.should_fire(FaultKind.SENSOR_STALL,
                                               batch=len(packets)):
                self.stalls += 1
                raise SensorStallError("injected tap read stall")
            return self.engine.ingest(packets)

        try:
            retry(read, policy=self.retry_policy, clock=self._retry_clock,
                  bus=self.bus, site="tap.read")
        except SensorStallError:
            # stall outlasted every retry: shed this batch, keep capturing
            self.batches_shed += 1

    def subscribe(self, callback) -> None:
        """Convenience passthrough to the engine's captured stream."""
        self.engine.subscribe(callback)
