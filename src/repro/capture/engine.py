"""Capture engine with an explicit capacity model.

The paper claims lossless full-packet capture "at link speeds of up to
100 Gbps or higher" is available today (§5).  Rather than assume it,
the engine models a capture appliance with a sustained-write capacity
and a burst buffer, so experiment E5 can *measure* the loss rate as a
function of offered load and verify where losslessness holds.

Packets are accounted into fixed time bins by their wire timestamps
(the fluid simulator delivers them in per-flow batches, so arrival
order is not wall-clock order; binning by timestamp keeps accounting
exact and deterministic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.netsim.packets import PacketColumns, PacketRecord

GBPS = 1_000_000_000


@dataclass
class CaptureStats:
    """Counters exposed by the engine.

    Capacity losses (``packets_dropped``) and injected tap faults
    (``packets_fault_dropped`` et al.) are accounted separately: the
    first measures the appliance, the second measures the campus
    misbehaving in front of it.
    """

    packets_offered: int = 0
    packets_captured: int = 0
    packets_dropped: int = 0
    bytes_offered: int = 0
    bytes_captured: int = 0
    bytes_dropped: int = 0
    # injected tap-fault accounting (zero unless chaos is wired in)
    packets_fault_dropped: int = 0
    packets_duplicated: int = 0
    packets_reordered: int = 0
    packets_skewed: int = 0
    # downstream backpressure: packets the appliance captured but the
    # store's bounded ingest queue refused (zero unless streaming)
    packets_backpressure_dropped: int = 0
    bytes_backpressure_dropped: int = 0

    @property
    def loss_rate(self) -> float:
        if self.packets_offered == 0:
            return 0.0
        return self.packets_dropped / self.packets_offered

    @property
    def byte_loss_rate(self) -> float:
        if self.bytes_offered == 0:
            return 0.0
        return self.bytes_dropped / self.bytes_offered

    @property
    def fault_drop_rate(self) -> float:
        """Injected drops over *wire* packets (pre-duplication)."""
        wire = (self.packets_offered - self.packets_duplicated
                + self.packets_fault_dropped)
        if wire <= 0:
            return 0.0
        return self.packets_fault_dropped / wire

    def merge(self, other: "CaptureStats") -> None:
        """Fold another counter set into this one (shard rollup)."""
        self.packets_offered += other.packets_offered
        self.packets_captured += other.packets_captured
        self.packets_dropped += other.packets_dropped
        self.bytes_offered += other.bytes_offered
        self.bytes_captured += other.bytes_captured
        self.bytes_dropped += other.bytes_dropped
        self.packets_fault_dropped += other.packets_fault_dropped
        self.packets_duplicated += other.packets_duplicated
        self.packets_reordered += other.packets_reordered
        self.packets_skewed += other.packets_skewed
        self.packets_backpressure_dropped += \
            other.packets_backpressure_dropped
        self.bytes_backpressure_dropped += other.bytes_backpressure_dropped

    @classmethod
    def rollup(cls, parts: List["CaptureStats"]) -> "CaptureStats":
        """Aggregate per-shard counters into one view."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total


class CaptureEngine:
    """Continuous full-packet capture with capacity and burst buffer.

    Parameters
    ----------
    capacity_gbps:
        Sustained capture-to-disk rate.  ``None`` (or ``inf``) models
        the paper's ideal lossless appliance.
    buffer_bytes:
        Burst absorption: each bin may additionally consume leftover
        buffer credit accumulated during idle bins.
    bin_seconds:
        Accounting granularity.
    fault_injector:
        Optional :class:`~repro.chaos.faults.FaultInjector`; when set,
        tap faults (drop/duplicate/reorder/clock skew) perturb each
        batch before capacity accounting, and the perturbation is
        tallied in :class:`CaptureStats`.  ``None`` costs nothing on
        the hot path.
    shard_router:
        Optional :class:`~repro.parallel.sharding.ShardRouter`; when
        set, capacity accounting (offered/captured/dropped) is also
        kept per shard in :attr:`shard_stats`, matching how a sharded
        store partitions the same packets.  Batch-level tap-fault
        counters stay on the global :attr:`stats` only.
    obs:
        Optional :class:`~repro.obs.Observability`; metric objects are
        cached at construction so the per-batch cost is one ``is not
        None`` check plus a few attribute increments.  ``None`` (the
        default) costs nothing.
    """

    def __init__(self, capacity_gbps: Optional[float] = None,
                 buffer_bytes: float = 256e6, bin_seconds: float = 1.0,
                 fault_injector=None, shard_router=None, obs=None):
        if capacity_gbps is not None and capacity_gbps <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity_gbps = capacity_gbps
        self.buffer_bytes = float(buffer_bytes)
        self.bin_seconds = float(bin_seconds)
        self.fault_injector = fault_injector
        self.shard_router = shard_router
        self.stats = CaptureStats()
        self.shard_stats: List[CaptureStats] = [
            CaptureStats() for _ in range(shard_router.n_shards)
        ] if shard_router is not None else []
        self._bin_bytes: Dict[int, float] = {}
        self._subscribers: List[Callable[[List[PacketRecord]], None]] = []
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
            self._m_offered = metrics.counter(
                "repro_capture_packets_offered_total")
            self._m_captured = metrics.counter(
                "repro_capture_packets_captured_total")
            self._m_dropped = metrics.counter(
                "repro_capture_packets_dropped_total")
            self._m_fault_dropped = metrics.counter(
                "repro_capture_packets_fault_dropped_total")
            self._m_backpressure = metrics.counter(
                "repro_capture_packets_backpressure_dropped_total")
            self._m_bytes = metrics.counter(
                "repro_capture_bytes_captured_total")
            from repro.obs.metrics import COUNT_BUCKETS
            self._m_batch = metrics.histogram(
                "repro_capture_batch_packets", buckets=COUNT_BUCKETS)

    def _record_obs(self, offered: int, captured: int, dropped: int,
                    fault_dropped: int, captured_bytes: float) -> None:
        """One batch's deltas into the cached metric objects."""
        self._m_offered.inc(offered)
        self._m_captured.inc(captured)
        self._m_dropped.inc(dropped)
        if fault_dropped:
            self._m_fault_dropped.inc(fault_dropped)
        self._m_bytes.inc(captured_bytes)
        self._m_batch.observe(offered)

    def subscribe(self, callback: Callable[[List[PacketRecord]], None]) -> None:
        """Receive the captured (post-loss) packet batches."""
        self._subscribers.append(callback)

    def account_backpressure(self, packets) -> None:
        """Charge packets a downstream bounded queue refused to accept.

        The streaming ingestor calls this when the store's ingest queue
        is full, so backpressure losses land in the same stats surface
        as capacity drops — never silently.  The packets were already
        counted as captured; these counters record that they then failed
        to reach the store.  Accepts a record list or a
        :class:`~repro.netsim.packets.PacketColumns` batch.
        """
        if not len(packets):
            return
        if isinstance(packets, PacketColumns):
            rejected_bytes = float(packets.size.sum())
        else:
            rejected_bytes = sum(map(attrgetter("size"), packets))
        self.stats.packets_backpressure_dropped += len(packets)
        self.stats.bytes_backpressure_dropped += rejected_bytes
        if self.obs is not None:
            self._m_backpressure.inc(len(packets))

    @property
    def lossless(self) -> bool:
        return self.capacity_gbps is None or math.isinf(self.capacity_gbps)

    def _bin_budget(self) -> float:
        assert self.capacity_gbps is not None
        return self.capacity_gbps * GBPS / 8.0 * self.bin_seconds

    def ingest_columns(self, cols: PacketColumns):
        """Offer a columnar batch; returns the captured PacketColumns.

        The vectorized counterpart of :meth:`ingest` for the fluid
        engine's tap batches: stats are accounted from column sums and
        the batch flows through without materializing records.  Tap
        fault injection and shard routing operate on record objects, so
        when either is configured the batch falls back to the record
        path (correctness over speed; those features are chaos/parallel
        experiments, not million-user runs).
        """
        if self.fault_injector is not None or self.shard_router is not None:
            captured = self.ingest(list(cols.iter_records()))
            return PacketColumns.from_records(captured)
        n = len(cols)
        if n == 0:
            return cols
        offered_bytes = float(cols.size.sum())
        self.stats.packets_offered += n
        self.stats.bytes_offered += offered_bytes
        if self.lossless:
            self.stats.packets_captured += n
            self.stats.bytes_captured += offered_bytes
            if self.obs is not None:
                self._record_obs(n, n, 0, 0, offered_bytes)
            for subscriber in self._subscribers:
                subscriber(cols)
            return cols
        # Finite capacity: replay the sequential per-bin accounting.
        # Within one batch, packets hit each bin in batch order (stable
        # sort by bin), so the per-bin walk reproduces the
        # packet-at-a-time admit/drop decisions exactly.
        budget = self._bin_budget() + self.buffer_bytes
        bins = (cols.timestamp // self.bin_seconds).astype(np.int64)
        sizes = cols.size.astype(np.float64)
        keep = np.zeros(n, dtype=bool)
        order = np.argsort(bins, kind="stable")
        sorted_bins = bins[order]
        boundaries = np.concatenate(
            ([0], np.nonzero(np.diff(sorted_bins))[0] + 1, [n]))
        for i in range(len(boundaries) - 1):
            group = order[boundaries[i]:boundaries[i + 1]]
            bin_id = int(sorted_bins[boundaries[i]])
            used = self._bin_bytes.get(bin_id, 0.0)
            group_sizes = sizes[group]
            total = float(group_sizes.sum())
            if used + total <= budget:
                # Uncongested bin (the overwhelming majority): every
                # packet fits, no sequential walk needed.
                keep[group] = True
                self._bin_bytes[bin_id] = used + total
                continue
            # Congested bin: the admit decision is a sequential greedy
            # (a dropped packet consumes no budget, later smaller ones
            # may still fit), so replay it packet-at-a-time — exactly
            # what :meth:`ingest` does.
            admitted = np.zeros(len(group), dtype=bool)
            for j, packet_size in enumerate(group_sizes):
                if used + packet_size <= budget:
                    used += packet_size
                    admitted[j] = True
            keep[group] = admitted
            self._bin_bytes[bin_id] = used
        captured_bytes = float(sizes[keep].sum())
        n_kept = int(keep.sum())
        self.stats.packets_captured += n_kept
        self.stats.bytes_captured += captured_bytes
        self.stats.packets_dropped += n - n_kept
        self.stats.bytes_dropped += offered_bytes - captured_bytes
        if self.obs is not None:
            self._record_obs(n, n_kept, n - n_kept, 0, captured_bytes)
        captured = cols if n_kept == n else cols.take(np.nonzero(keep)[0])
        if n_kept:
            for subscriber in self._subscribers:
                subscriber(captured)
        return captured

    def ingest(self, packets: List[PacketRecord]) -> List[PacketRecord]:
        """Offer a batch to the appliance; returns the captured subset."""
        if not packets:
            return []
        fault_dropped = 0
        if self.fault_injector is not None:
            packets, perturbation = \
                self.fault_injector.perturb_packets(packets)
            fault_dropped = perturbation.dropped
            self.stats.packets_fault_dropped += perturbation.dropped
            self.stats.packets_duplicated += perturbation.duplicated
            self.stats.packets_reordered += perturbation.reordered
            self.stats.packets_skewed += perturbation.skewed
            if not packets:
                if self.obs is not None:
                    self._record_obs(0, 0, 0, fault_dropped, 0)
                return []
        self.stats.packets_offered += len(packets)
        offered_bytes = sum(map(attrgetter("size"), packets))
        self.stats.bytes_offered += offered_bytes

        shards = (self.shard_router.assign_records(packets)
                  if self.shard_router is not None else None)
        if shards is not None:
            for packet, shard in zip(packets, shards):
                per_shard = self.shard_stats[shard]
                per_shard.packets_offered += 1
                per_shard.bytes_offered += packet.size

        if self.lossless:
            # No drops: captured bytes are the offered bytes, no second
            # per-packet pass needed.
            captured = list(packets)
            self.stats.packets_captured += len(captured)
            self.stats.bytes_captured += offered_bytes
            if shards is not None:
                for packet, shard in zip(packets, shards):
                    per_shard = self.shard_stats[shard]
                    per_shard.packets_captured += 1
                    per_shard.bytes_captured += packet.size
            if self.obs is not None:
                self._record_obs(len(captured), len(captured), 0,
                                 fault_dropped, offered_bytes)
            for subscriber in self._subscribers:
                subscriber(captured)
            return captured
        captured = []
        dropped_bytes = 0
        budget = self._bin_budget()
        for position, packet in enumerate(packets):
            bin_id = int(packet.timestamp // self.bin_seconds)
            used = self._bin_bytes.get(bin_id, 0.0)
            per_shard = self.shard_stats[shards[position]] \
                if shards is not None else None
            # Burst buffer: allow one buffer's worth above line rate
            # per bin (a simple, conservative credit model).
            if used + packet.size <= budget + self.buffer_bytes:
                self._bin_bytes[bin_id] = used + packet.size
                captured.append(packet)
                if per_shard is not None:
                    per_shard.packets_captured += 1
                    per_shard.bytes_captured += packet.size
            else:
                self.stats.packets_dropped += 1
                dropped_bytes += packet.size
                if per_shard is not None:
                    per_shard.packets_dropped += 1
                    per_shard.bytes_dropped += packet.size

        self.stats.bytes_dropped += dropped_bytes
        self.stats.packets_captured += len(captured)
        self.stats.bytes_captured += offered_bytes - dropped_bytes
        if self.obs is not None:
            self._record_obs(len(packets), len(captured),
                             len(packets) - len(captured), fault_dropped,
                             offered_bytes - dropped_bytes)
        if captured:
            for subscriber in self._subscribers:
                subscriber(captured)
        return captured
