"""On-disk packet serialization (a pcap-like container).

The data store persists raw captures in a compact binary format:

* file header: magic, version, flags;
* per-packet record: timestamp (float64), addresses (packed IPv4),
  ports, protocol, sizes, flags, ttl, then length-prefixed payload
  fragment, flow id, and length-prefixed app/label/direction strings.

This is intentionally *not* libpcap-compatible — the record carries
simulator provenance (flow id, label) that real pcap cannot — but it
plays the same role: full fidelity, append-only, re-readable.
"""

from __future__ import annotations

import socket
import struct
from pathlib import Path
from typing import BinaryIO, Iterator, List, Union

from repro.netsim.packets import PacketRecord

MAGIC = b"RPCP"
VERSION = 1
_HEADER = struct.Struct("<4sHH")
_FIXED = struct.Struct("<dIIHHBIIBBi")


class PcapFormatError(Exception):
    """Raised when a capture file is malformed."""


def _ip_to_u32(ip: str) -> int:
    return struct.unpack("!I", socket.inet_aton(ip))[0]


def _u32_to_ip(value: int) -> str:
    return socket.inet_ntoa(struct.pack("!I", value))


def _write_str(fh: BinaryIO, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError("string too long for capture format")
    fh.write(struct.pack("<H", len(raw)))
    fh.write(raw)


def _read_str(fh: BinaryIO) -> str:
    (length,) = struct.unpack("<H", _read_exact(fh, 2))
    return _read_exact(fh, length).decode("utf-8")


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise PcapFormatError("truncated capture file")
    return data


def write_packets(path: Union[str, Path],
                  packets: List[PacketRecord]) -> int:
    """Serialize packets to ``path``; returns bytes written."""
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0))
        for p in packets:
            fh.write(_FIXED.pack(
                p.timestamp, _ip_to_u32(p.src_ip), _ip_to_u32(p.dst_ip),
                p.src_port, p.dst_port, p.protocol, p.size, p.payload_len,
                p.flags, p.ttl, p.flow_id,
            ))
            fh.write(struct.pack("<H", len(p.payload)))
            fh.write(p.payload)
            _write_str(fh, p.app)
            _write_str(fh, p.label)
            _write_str(fh, p.direction)
    return path.stat().st_size


def iter_packets(path: Union[str, Path]) -> Iterator[PacketRecord]:
    """Stream packets back from a capture file."""
    path = Path(path)
    with path.open("rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise PcapFormatError("missing file header")
        magic, version, _flags = _HEADER.unpack(header)
        if magic != MAGIC:
            raise PcapFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise PcapFormatError(f"unsupported version {version}")
        while True:
            fixed = fh.read(_FIXED.size)
            if not fixed:
                return
            if len(fixed) != _FIXED.size:
                raise PcapFormatError("truncated packet record")
            (ts, src, dst, sport, dport, proto, size, payload_len, flags,
             ttl, flow_id) = _FIXED.unpack(fixed)
            (frag_len,) = struct.unpack("<H", _read_exact(fh, 2))
            payload = _read_exact(fh, frag_len)
            app = _read_str(fh)
            label = _read_str(fh)
            direction = _read_str(fh)
            yield PacketRecord(
                timestamp=ts, src_ip=_u32_to_ip(src), dst_ip=_u32_to_ip(dst),
                src_port=sport, dst_port=dport, protocol=proto, size=size,
                payload_len=payload_len, flags=flags, ttl=ttl,
                payload=payload, flow_id=flow_id, app=app, label=label,
                direction=direction,
            )


def read_packets(path: Union[str, Path]) -> List[PacketRecord]:
    """Read a whole capture file into memory."""
    return list(iter_packets(path))
