"""Packet-to-flow assembly (NetFlow-style records).

The data store keeps both raw packets and assembled flow records; most
feature extraction works at flow granularity.  Assembly is keyed on the
direction-insensitive canonical 5-tuple with an idle timeout, the same
semantics as a router's flow cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netsim.packets import PacketRecord, TcpFlags

WELL_KNOWN_SERVICES = {
    22: "ssh", 23: "telnet", 25: "smtp", 53: "dns", 80: "http",
    110: "pop3", 123: "ntp", 143: "imap", 443: "https", 445: "smb",
    587: "smtp", 993: "imaps", 3306: "mysql", 3389: "rdp", 5432: "postgres",
    6379: "redis", 8080: "http-alt",
}


@dataclass
class FlowRecord:
    """Bidirectional flow summary assembled from packets."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int
    first_seen: float
    last_seen: float
    packets_fwd: int = 0
    packets_rev: int = 0
    bytes_fwd: int = 0
    bytes_rev: int = 0
    syn_count: int = 0
    fin_count: int = 0
    rst_count: int = 0
    min_ttl: int = 255
    label: str = "benign"
    app_hint: str = ""
    flow_ids: List[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(self.last_seen - self.first_seen, 0.0)

    @property
    def total_packets(self) -> int:
        return self.packets_fwd + self.packets_rev

    @property
    def total_bytes(self) -> int:
        return self.bytes_fwd + self.bytes_rev

    @property
    def service(self) -> str:
        """Best-effort service name from the lower well-known port."""
        for port in sorted((self.src_port, self.dst_port)):
            if port in WELL_KNOWN_SERVICES:
                return WELL_KNOWN_SERVICES[port]
        return "other"

    @property
    def byte_ratio(self) -> float:
        """Responder-to-initiator byte ratio (amplification signal)."""
        if self.bytes_fwd == 0:
            return float(self.bytes_rev)
        return self.bytes_rev / self.bytes_fwd


class FlowAssembler:
    """Builds :class:`FlowRecord` objects from a packet stream.

    The first packet observed for a canonical key defines the flow's
    forward direction (initiator = that packet's source).
    """

    def __init__(self, idle_timeout_s: float = 60.0):
        self.idle_timeout_s = float(idle_timeout_s)
        self._active: Dict[Tuple, FlowRecord] = {}
        self._initiator: Dict[Tuple, str] = {}
        self.finished: List[FlowRecord] = []

    def add_packet(self, packet: PacketRecord) -> None:
        key = packet.five_tuple().canonical()
        record = self._active.get(key)
        if record is not None and (
            packet.timestamp - record.last_seen > self.idle_timeout_s
        ):
            self.finished.append(record)
            record = None
        if record is None:
            record = FlowRecord(
                src_ip=packet.src_ip, dst_ip=packet.dst_ip,
                src_port=packet.src_port, dst_port=packet.dst_port,
                protocol=packet.protocol,
                first_seen=packet.timestamp, last_seen=packet.timestamp,
                label=packet.label, app_hint=packet.app,
            )
            self._active[key] = record
            self._initiator[key] = packet.src_ip

        forward = packet.src_ip == self._initiator[key]
        if forward:
            record.packets_fwd += 1
            record.bytes_fwd += packet.size
        else:
            record.packets_rev += 1
            record.bytes_rev += packet.size
        record.last_seen = max(record.last_seen, packet.timestamp)
        record.first_seen = min(record.first_seen, packet.timestamp)
        record.min_ttl = min(record.min_ttl, packet.ttl)
        if packet.flags & TcpFlags.SYN:
            record.syn_count += 1
        if packet.flags & TcpFlags.FIN:
            record.fin_count += 1
        if packet.flags & TcpFlags.RST:
            record.rst_count += 1
        if packet.label != "benign":
            record.label = packet.label
        if packet.flow_id not in record.flow_ids:
            record.flow_ids.append(packet.flow_id)

    def add_packets(self, packets: Iterable[PacketRecord]) -> None:
        for packet in packets:
            self.add_packet(packet)

    def flush(self) -> List[FlowRecord]:
        """Close all active flows; returns the complete record list."""
        self.finished.extend(self._active.values())
        self._active.clear()
        self._initiator.clear()
        return self.finished

    def records(self) -> List[FlowRecord]:
        """All finished plus in-progress records (non-destructive)."""
        return self.finished + list(self._active.values())
