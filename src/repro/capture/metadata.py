"""On-the-fly metadata extraction.

The paper's §5 emphasises that modern capture platforms generate "an
extensive set of on-the-fly generated metadata" and that all stored
data is "cleaned, curated, time-synchronized and (where possible)
labelled, but also linked and indexed".  The extractor turns each
captured packet into a tag dictionary: transport/service
identification, payload-derived protocol facts (DNS qname/qtype, HTTP
method and host, TLS SNI, SSH banner), directionality, and campus-side
attribution (which department the internal endpoint belongs to).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.capture.flows import WELL_KNOWN_SERVICES
from repro.netsim.packets import PacketColumns, PacketRecord, Protocol
from repro.netsim.traffic.payloads import decode_dns_qname

_BATCH_CACHE_LIMIT = 1 << 18


class MetadataExtractor:
    """Derives tags from packet headers and payload fragments."""

    def __init__(self, topology=None):
        self._topology = topology
        # memo caches for the batch path; tags are pure functions of the
        # cached keys, so entries never go stale (bounded, cleared on
        # overflow)
        self._base_cache: Dict[tuple, Dict[str, str]] = {}
        self._payload_cache: Dict[tuple, Dict[str, str]] = {}
        self._dept_cache: Dict[str, Optional[str]] = {}

    def extract_batch(self, packets: Sequence[PacketRecord]) \
            -> List[Dict[str, str]]:
        """Vectorized batch mode: one tag dict per packet.

        Real traffic repeats: the same handshake fragments, the same
        service ports, the same directions.  The header-derived base
        tags are memoized per (protocol, direction, service) and the
        payload-derived tags per (payload fragment, dns-context), so
        each distinct combination is computed once and every packet gets
        its own copy of the merged result.  Equivalent to
        ``[extract(p) for p in packets]``, at a fraction of the cost.
        """
        base_cache = self._base_cache
        payload_cache = self._payload_cache
        if len(base_cache) > _BATCH_CACHE_LIMIT:
            base_cache.clear()
        if len(payload_cache) > _BATCH_CACHE_LIMIT:
            payload_cache.clear()
        services = WELL_KNOWN_SERVICES
        topology = self._topology
        udp = int(Protocol.UDP)
        out: List[Dict[str, str]] = []
        append = out.append
        for packet in packets:
            src_port = packet.src_port
            dst_port = packet.dst_port
            low, high = (src_port, dst_port) if src_port <= dst_port \
                else (dst_port, src_port)
            service = services.get(low) or services.get(high) or "other"
            base_key = (packet.protocol, packet.direction, service)
            base = base_cache.get(base_key)
            if base is None:
                base = base_cache[base_key] = {
                    "proto": Protocol(packet.protocol).name.lower()
                    if packet.protocol in (1, 6, 17)
                    else str(packet.protocol),
                    "direction": packet.direction,
                    "service": service,
                }
            tags = dict(base)
            payload = packet.payload
            if payload:
                is_dns = packet.protocol == udp and \
                    (src_port == 53 or dst_port == 53)
                payload_key = (payload, is_dns)
                payload_tags = payload_cache.get(payload_key)
                if payload_tags is None:
                    payload_tags = payload_cache[payload_key] = \
                        self._dns_tags(payload) if is_dns else \
                        self._app_payload_tags(payload)
                tags.update(payload_tags)
            if topology is not None:
                internal_ip = (packet.dst_ip if packet.direction == "in"
                               else packet.src_ip)
                dept = self._department(internal_ip)
                if dept:
                    tags["department"] = dept
            append(tags)
        return out

    def extract_columns(self, cols: PacketColumns) -> List[Dict[str, str]]:
        """Columnar batch mode: one tag dict per row, no record objects.

        Row-for-row equivalent to :meth:`extract_batch` over
        ``cols.iter_records()`` — the fluid tap path calls this so tags
        come straight from the column arrays.  Header-derived base tags
        are computed once per distinct (protocol, direction, low-port,
        high-port) combination in the batch; payload and topology
        lookups reuse the same memo caches as the record path.
        """
        n = len(cols)
        if n == 0:
            return []
        base_cache = self._base_cache
        payload_cache = self._payload_cache
        if len(base_cache) > _BATCH_CACHE_LIMIT:
            base_cache.clear()
        if len(payload_cache) > _BATCH_CACHE_LIMIT:
            payload_cache.clear()
        services = WELL_KNOWN_SERVICES
        src_port = cols.src_port.astype(np.int64)
        dst_port = cols.dst_port.astype(np.int64)
        low = np.minimum(src_port, dst_port)
        high = np.maximum(src_port, dst_port)
        protocol = cols.protocol.astype(np.int64)
        dir_codes = np.asarray(cols.direction.codes)
        combos = np.stack([protocol, dir_codes, low, high], axis=1)
        uniq, inverse = np.unique(combos, axis=0, return_inverse=True)
        dir_values = cols.direction.values
        base_by_combo: List[Dict[str, str]] = []
        for proto, dcode, port_lo, port_hi in uniq:
            service = services.get(int(port_lo)) \
                or services.get(int(port_hi)) or "other"
            base_key = (int(proto), dir_values[int(dcode)], service)
            base = base_cache.get(base_key)
            if base is None:
                base = base_cache[base_key] = {
                    "proto": Protocol(int(proto)).name.lower()
                    if int(proto) in (1, 6, 17) else str(int(proto)),
                    "direction": dir_values[int(dcode)],
                    "service": service,
                }
            base_by_combo.append(base)
        out = [dict(base_by_combo[i]) for i in inverse]

        udp = int(Protocol.UDP)
        for i, payload in enumerate(cols.payload):
            if not payload:
                continue
            is_dns = protocol[i] == udp and \
                (src_port[i] == 53 or dst_port[i] == 53)
            payload_key = (payload, bool(is_dns))
            payload_tags = payload_cache.get(payload_key)
            if payload_tags is None:
                payload_tags = payload_cache[payload_key] = \
                    self._dns_tags(payload) if is_dns else \
                    self._app_payload_tags(payload)
            out[i].update(payload_tags)

        if self._topology is not None:
            in_code = cols.direction.code_of("in")
            for i in range(n):
                column = cols.dst_ip if dir_codes[i] == in_code \
                    else cols.src_ip
                dept = self._department(cols._ip_at(column, i))
                if dept:
                    out[i]["department"] = dept
        return out

    def _department(self, internal_ip: str) -> Optional[str]:
        dept = self._dept_cache.get(internal_ip)
        if dept is None and internal_ip not in self._dept_cache:
            node = self._topology.node_by_ip(internal_ip)
            dept = self._topology.department(node) if node is not None \
                else None
            if len(self._dept_cache) > _BATCH_CACHE_LIMIT:
                self._dept_cache.clear()
            self._dept_cache[internal_ip] = dept
        return dept

    def extract(self, packet: PacketRecord) -> Dict[str, str]:
        tags: Dict[str, str] = {
            "proto": Protocol(packet.protocol).name.lower()
            if packet.protocol in (1, 6, 17) else str(packet.protocol),
            "direction": packet.direction,
            "service": self._service(packet),
        }
        payload_tags = self._payload_tags(packet)
        tags.update(payload_tags)
        if self._topology is not None:
            internal_ip = (
                packet.dst_ip if packet.direction == "in" else packet.src_ip
            )
            node = self._topology.node_by_ip(internal_ip)
            if node is not None:
                dept = self._topology.department(node)
                if dept:
                    tags["department"] = dept
        return tags

    @staticmethod
    def _service(packet: PacketRecord) -> str:
        for port in sorted((packet.src_port, packet.dst_port)):
            if port in WELL_KNOWN_SERVICES:
                return WELL_KNOWN_SERVICES[port]
        return "other"

    def _payload_tags(self, packet: PacketRecord) -> Dict[str, str]:
        payload = packet.payload
        if not payload:
            return {}
        if packet.protocol == int(Protocol.UDP) and 53 in (
            packet.src_port, packet.dst_port
        ):
            return self._dns_tags(payload)
        return self._app_payload_tags(payload)

    @staticmethod
    def _app_payload_tags(payload: bytes) -> Dict[str, str]:
        if payload.startswith(b"\x16\x03") or payload.startswith(b"\x17\x03"):
            return MetadataExtractor._tls_tags(payload)
        if payload[:4] in (b"GET ", b"POST", b"HTTP"):
            return MetadataExtractor._http_tags(payload)
        if payload.startswith(b"SSH-"):
            return {"app_proto": "ssh",
                    "ssh_banner": payload.split(b"\r\n")[0].decode(
                        "ascii", errors="replace")}
        if payload[:3] in (b"220", b"EHL"):
            return {"app_proto": "smtp"}
        return {}

    @staticmethod
    def _dns_tags(payload: bytes) -> Dict[str, str]:
        tags: Dict[str, str] = {"app_proto": "dns"}
        if len(payload) < 12:
            return tags
        flags = struct.unpack(">H", payload[2:4])[0]
        tags["dns_qr"] = "response" if flags & 0x8000 else "query"
        qname = decode_dns_qname(payload)
        if qname:
            tags["dns_qname"] = qname
        # QTYPE follows the qname; ANY (255) marks amplification abuse.
        try:
            i = 12
            while i < len(payload) and payload[i] != 0:
                i += payload[i] + 1
            qtype = struct.unpack(">H", payload[i + 1:i + 3])[0]
            tags["dns_qtype"] = "ANY" if qtype == 255 else str(qtype)
        except (struct.error, IndexError):
            pass
        ancount = struct.unpack(">H", payload[6:8])[0]
        tags["dns_answers"] = str(ancount)
        return tags

    @staticmethod
    def _tls_tags(payload: bytes) -> Dict[str, str]:
        tags = {"app_proto": "tls"}
        if len(payload) > 4 and payload[0] == 0x16:
            sni = payload[4:].decode("ascii", errors="ignore").strip()
            if sni and all(c.isprintable() for c in sni):
                tags["tls_sni"] = sni
            tags["tls_record"] = (
                "client_hello" if payload[3:4] == b"\x01" else "server_hello"
            )
        else:
            tags["tls_record"] = "application_data"
        return tags

    @staticmethod
    def _http_tags(payload: bytes) -> Dict[str, str]:
        tags = {"app_proto": "http"}
        try:
            first_line = payload.split(b"\r\n", 1)[0].decode("ascii")
        except UnicodeDecodeError:
            return tags
        parts = first_line.split(" ")
        if parts and parts[0] in ("GET", "POST", "PUT", "HEAD", "DELETE"):
            tags["http_method"] = parts[0]
            if len(parts) > 1:
                tags["http_path"] = parts[1]
            for line in payload.split(b"\r\n")[1:]:
                if line.lower().startswith(b"host:"):
                    tags["http_host"] = line[5:].strip().decode(
                        "ascii", errors="replace")
                    break
        elif parts and parts[0].startswith("HTTP/"):
            tags["http_status"] = parts[1] if len(parts) > 1 else ""
        return tags
