"""On-the-fly metadata extraction.

The paper's §5 emphasises that modern capture platforms generate "an
extensive set of on-the-fly generated metadata" and that all stored
data is "cleaned, curated, time-synchronized and (where possible)
labelled, but also linked and indexed".  The extractor turns each
captured packet into a tag dictionary: transport/service
identification, payload-derived protocol facts (DNS qname/qtype, HTTP
method and host, TLS SNI, SSH banner), directionality, and campus-side
attribution (which department the internal endpoint belongs to).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.capture.flows import WELL_KNOWN_SERVICES
from repro.netsim.packets import PacketRecord, Protocol
from repro.netsim.traffic.payloads import decode_dns_qname


class MetadataExtractor:
    """Derives tags from packet headers and payload fragments."""

    def __init__(self, topology=None):
        self._topology = topology

    def extract(self, packet: PacketRecord) -> Dict[str, str]:
        tags: Dict[str, str] = {
            "proto": Protocol(packet.protocol).name.lower()
            if packet.protocol in (1, 6, 17) else str(packet.protocol),
            "direction": packet.direction,
            "service": self._service(packet),
        }
        payload_tags = self._payload_tags(packet)
        tags.update(payload_tags)
        if self._topology is not None:
            internal_ip = (
                packet.dst_ip if packet.direction == "in" else packet.src_ip
            )
            node = self._topology.node_by_ip(internal_ip)
            if node is not None:
                dept = self._topology.department(node)
                if dept:
                    tags["department"] = dept
        return tags

    @staticmethod
    def _service(packet: PacketRecord) -> str:
        for port in sorted((packet.src_port, packet.dst_port)):
            if port in WELL_KNOWN_SERVICES:
                return WELL_KNOWN_SERVICES[port]
        return "other"

    def _payload_tags(self, packet: PacketRecord) -> Dict[str, str]:
        payload = packet.payload
        if not payload:
            return {}
        if packet.protocol == int(Protocol.UDP) and 53 in (
            packet.src_port, packet.dst_port
        ):
            return self._dns_tags(payload)
        if payload.startswith(b"\x16\x03") or payload.startswith(b"\x17\x03"):
            return self._tls_tags(payload)
        if payload[:4] in (b"GET ", b"POST", b"HTTP"):
            return self._http_tags(payload)
        if payload.startswith(b"SSH-"):
            return {"app_proto": "ssh",
                    "ssh_banner": payload.split(b"\r\n")[0].decode(
                        "ascii", errors="replace")}
        if payload[:3] in (b"220", b"EHL"):
            return {"app_proto": "smtp"}
        return {}

    @staticmethod
    def _dns_tags(payload: bytes) -> Dict[str, str]:
        tags: Dict[str, str] = {"app_proto": "dns"}
        if len(payload) < 12:
            return tags
        flags = struct.unpack(">H", payload[2:4])[0]
        tags["dns_qr"] = "response" if flags & 0x8000 else "query"
        qname = decode_dns_qname(payload)
        if qname:
            tags["dns_qname"] = qname
        # QTYPE follows the qname; ANY (255) marks amplification abuse.
        try:
            i = 12
            while i < len(payload) and payload[i] != 0:
                i += payload[i] + 1
            qtype = struct.unpack(">H", payload[i + 1:i + 3])[0]
            tags["dns_qtype"] = "ANY" if qtype == 255 else str(qtype)
        except (struct.error, IndexError):
            pass
        ancount = struct.unpack(">H", payload[6:8])[0]
        tags["dns_answers"] = str(ancount)
        return tags

    @staticmethod
    def _tls_tags(payload: bytes) -> Dict[str, str]:
        tags = {"app_proto": "tls"}
        if len(payload) > 4 and payload[0] == 0x16:
            sni = payload[4:].decode("ascii", errors="ignore").strip()
            if sni and all(c.isprintable() for c in sni):
                tags["tls_sni"] = sni
            tags["tls_record"] = (
                "client_hello" if payload[3:4] == b"\x01" else "server_hello"
            )
        else:
            tags["tls_record"] = "application_data"
        return tags

    @staticmethod
    def _http_tags(payload: bytes) -> Dict[str, str]:
        tags = {"app_proto": "http"}
        try:
            first_line = payload.split(b"\r\n", 1)[0].decode("ascii")
        except UnicodeDecodeError:
            return tags
        parts = first_line.split(" ")
        if parts and parts[0] in ("GET", "POST", "PUT", "HEAD", "DELETE"):
            tags["http_method"] = parts[0]
            if len(parts) > 1:
                tags["http_path"] = parts[1]
            for line in payload.split(b"\r\n")[1:]:
                if line.lower().startswith(b"host:"):
                    tags["http_host"] = line[5:].strip().decode(
                        "ascii", errors="replace")
                    break
        elif parts and parts[0].startswith("HTTP/"):
            tags["http_status"] = parts[1] if len(parts) > 1 else ""
        return tags
