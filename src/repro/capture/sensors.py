"""Complementary data sources beyond the wire.

§5: the data store holds "complementary data from other available
sensors or sources (e.g., server logs, firewall rules, configuration
files, events)".  These sensors observe the *flow* stream (they live on
the end systems / middleboxes, not the tap) and emit timestamped
records the store links back to packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np


@dataclass
class LogRecord:
    """One line from a complementary sensor."""

    timestamp: float
    source: str           # e.g. "srv0:sshd", "firewall", "config"
    kind: str             # e.g. "auth-fail", "conn-blocked", "snapshot"
    message: str
    attrs: Dict[str, str] = field(default_factory=dict)
    record_id: int = 0


class _SensorBase:
    _ids = itertools.count(1)

    def __init__(self):
        self.records: List[LogRecord] = []
        self._subscribers: List[Callable[[LogRecord], None]] = []

    def subscribe(self, callback: Callable[[LogRecord], None]) -> None:
        self._subscribers.append(callback)

    def _emit(self, record: LogRecord) -> None:
        record.record_id = next(self._ids)
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)


class ServerLogSensor(_SensorBase):
    """sshd/web server logs on campus servers.

    Attached as a flow observer; emits ``auth-fail`` lines for
    brute-force SSH flows and ``access`` lines for normal server hits.
    """

    def __init__(self, network, seed: int = 0):
        super().__init__()
        self.network = network
        self.rng = np.random.default_rng(seed)
        self._server_ips = {
            network.topology.ip(s): s for s in network.topology.servers
        }
        network.add_flow_observer(self._on_flow)

    def _on_flow(self, flow) -> None:
        dst_ip = flow.key.dst_ip
        server = self._server_ips.get(dst_ip)
        if server is None:
            return
        if flow.key.dst_port == 22:
            failed = flow.label == "ssh-bruteforce" or self.rng.random() < 0.02
            kind = "auth-fail" if failed else "auth-ok"
            user = "root" if failed else f"user{flow.flow_id % 50}"
            self._emit(LogRecord(
                timestamp=flow.end_time,
                source=f"{server}:sshd",
                kind=kind,
                message=(f"sshd: {'Failed' if failed else 'Accepted'} "
                         f"password for {user} from {flow.key.src_ip}"),
                attrs={"src_ip": flow.key.src_ip, "dst_ip": dst_ip,
                       "user": user},
            ))
        elif flow.key.dst_port in (80, 443, 993, 587):
            self._emit(LogRecord(
                timestamp=flow.end_time,
                source=f"{server}:httpd",
                kind="access",
                message=f"access from {flow.key.src_ip} bytes={flow.fwd_bytes}",
                attrs={"src_ip": flow.key.src_ip, "dst_ip": dst_ip},
            ))


class FirewallSensor(_SensorBase):
    """Border firewall: logs connections to blocked ports.

    Real campus firewalls would *drop* these; ours logs them (monitor
    mode) so scan detection work has labeled complementary evidence.
    """

    BLOCKED_PORTS = {23, 445, 3389, 3306, 5432, 6379}

    def __init__(self, network):
        super().__init__()
        self.network = network
        network.add_flow_observer(self._on_flow)

    def _on_flow(self, flow) -> None:
        if flow.src_internal:
            return
        if flow.key.dst_port in self.BLOCKED_PORTS:
            self._emit(LogRecord(
                timestamp=flow.start_time,
                source="firewall",
                kind="conn-blocked",
                message=(f"blocked {flow.key.src_ip} -> {flow.key.dst_ip}"
                         f":{flow.key.dst_port}"),
                attrs={"src_ip": flow.key.src_ip, "dst_ip": flow.key.dst_ip,
                       "dst_port": str(flow.key.dst_port)},
            ))


class ConfigSnapshotSource(_SensorBase):
    """Periodic device-configuration snapshots (contextual metadata)."""

    def __init__(self, network, interval_s: float = 3600.0):
        super().__init__()
        self.network = network
        self.interval_s = float(interval_s)

    def start(self) -> None:
        self._snapshot()

    def _snapshot(self) -> None:
        network = self.network
        for link in network.links:
            a, b = link.key
            self._emit(LogRecord(
                timestamp=network.now,
                source="config",
                kind="snapshot",
                message=f"link {a}<->{b} capacity={link.capacity_bps:.0f} "
                        f"up={link.up}",
                attrs={"link_a": a, "link_b": b,
                       "capacity_bps": f"{link.capacity_bps:.0f}",
                       "up": str(link.up)},
            ))
        network.simulator.schedule(self.interval_s, self._snapshot,
                                   name="config-snapshot")
