"""Storage and cost model for campus-wide full-packet capture.

§5 anchors: a typical campus exchanges 10–20 Gbps with its upstream; a
10 Gbps deployment with about a week of retention costs "a few $100K";
the cost "increases proportionally with the size and number of the
upstream links and the duration of data retention".  The model below
is calibrated to reproduce those anchors and lets E5 sweep link speed
and retention.
"""

from __future__ import annotations

from dataclasses import dataclass

GBPS = 1_000_000_000
TB = 1_000_000_000_000
SECONDS_PER_DAY = 86_400.0


@dataclass
class CostEstimate:
    """Output of the cost model."""

    link_gbps: float
    utilization: float
    retention_days: float
    storage_tb: float
    appliance_usd: float
    storage_usd: float
    metadata_overhead_tb: float

    @property
    def total_usd(self) -> float:
        return self.appliance_usd + self.storage_usd


class CaptureCostModel:
    """Calibrated capture appliance + storage cost estimator.

    Parameters (defaults reproduce the paper's "$100K for 10 Gbps and
    ~a week" anchor at 35% average utilisation):

    appliance_usd_per_gbps:
        Capture head-end cost, linear in sustained line rate.
    storage_usd_per_tb:
        Enterprise storage cost per usable TB (incl. redundancy).
    metadata_fraction:
        Extra stored volume for indexes + on-the-fly metadata.
    """

    def __init__(self, appliance_usd_per_gbps: float = 6_000.0,
                 storage_usd_per_tb: float = 110.0,
                 metadata_fraction: float = 0.12):
        self.appliance_usd_per_gbps = float(appliance_usd_per_gbps)
        self.storage_usd_per_tb = float(storage_usd_per_tb)
        self.metadata_fraction = float(metadata_fraction)

    def bytes_per_day(self, link_gbps: float, utilization: float) -> float:
        """Raw capture volume for one day at the given avg utilisation."""
        if not 0 <= utilization <= 1:
            raise ValueError(f"utilization must be in [0,1]: {utilization}")
        return link_gbps * GBPS / 8.0 * utilization * SECONDS_PER_DAY

    def estimate(self, link_gbps: float = 10.0, utilization: float = 0.35,
                 retention_days: float = 7.0) -> CostEstimate:
        """Estimate storage volume and cost for a deployment."""
        raw_bytes = self.bytes_per_day(link_gbps, utilization) * retention_days
        metadata_bytes = raw_bytes * self.metadata_fraction
        storage_tb = (raw_bytes + metadata_bytes) / TB
        appliance = self.appliance_usd_per_gbps * link_gbps
        storage = storage_tb * self.storage_usd_per_tb
        return CostEstimate(
            link_gbps=link_gbps,
            utilization=utilization,
            retention_days=retention_days,
            storage_tb=storage_tb,
            appliance_usd=appliance,
            storage_usd=storage,
            metadata_overhead_tb=metadata_bytes / TB,
        )
