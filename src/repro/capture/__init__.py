"""Full-packet capture, flow assembly, metadata, sensors, and costs.

This subpackage stands in for the commercial capture appliance the
paper proposes deploying at the campus border (§5): enterprise-wide,
continuous, lossless, full packet capture, producing not just raw
packets but cleaned, linked, "on-the-fly" metadata, plus complementary
sensor feeds (server logs, firewall events, configuration snapshots).

* :mod:`repro.capture.tap` — attaches to an observed link.
* :mod:`repro.capture.engine` — line-rate capture with an explicit
  capacity/buffer model (so lossless-ness is measurable, not assumed).
* :mod:`repro.capture.pcapng` — on-disk packet serialization.
* :mod:`repro.capture.flows` — packet-to-flow-record assembly.
* :mod:`repro.capture.metadata` — protocol-aware metadata extraction.
* :mod:`repro.capture.sensors` — complementary log/event sources.
* :mod:`repro.capture.costmodel` — storage/cost model for §5's claims.
"""

from repro.capture.tap import BorderTap
from repro.capture.engine import CaptureEngine, CaptureStats
from repro.capture.flows import FlowAssembler, FlowRecord
from repro.capture.metadata import MetadataExtractor
from repro.capture.sensors import (
    ConfigSnapshotSource,
    FirewallSensor,
    LogRecord,
    ServerLogSensor,
)
from repro.capture.costmodel import CaptureCostModel, CostEstimate
from repro.capture.pcapng import read_packets, write_packets

__all__ = [
    "BorderTap",
    "CaptureEngine",
    "CaptureStats",
    "FlowAssembler",
    "FlowRecord",
    "MetadataExtractor",
    "LogRecord",
    "ServerLogSensor",
    "FirewallSensor",
    "ConfigSnapshotSource",
    "CaptureCostModel",
    "CostEstimate",
    "read_packets",
    "write_packets",
]
