"""Performance diagnosis: pinpointing root causes from telemetry.

§3: campus networks "are prone to network faults and outages and
experience performance issues ... In particular, there is a need to be
able to pinpoint performance problems and notify the service or cloud
provider(s) in case the root cause is not internal to the campus
network."

This subpackage closes that loop:

* :mod:`repro.diagnosis.telemetry` — periodic SNMP-style sampling of
  per-link utilisation and operational state.
* :mod:`repro.diagnosis.features` — per-(link, window) feature
  extraction with ground-truth labeling.
* :mod:`repro.diagnosis.localizer` — learned and rule-based root-cause
  classifiers plus internal/external attribution (the "who do we
  call" decision).
"""

from repro.diagnosis.telemetry import LinkSample, TelemetryCollector
from repro.diagnosis.features import (
    DIAGNOSIS_FEATURES,
    LinkWindowFeaturizer,
)
from repro.diagnosis.localizer import (
    Diagnosis,
    RootCauseLocalizer,
    RuleBasedLocalizer,
)

__all__ = [
    "TelemetryCollector",
    "LinkSample",
    "LinkWindowFeaturizer",
    "DIAGNOSIS_FEATURES",
    "RootCauseLocalizer",
    "RuleBasedLocalizer",
    "Diagnosis",
]
