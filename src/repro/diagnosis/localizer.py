"""Root-cause localization and internal/external attribution.

Two localizers share an interface:

* :class:`RuleBasedLocalizer` — the operator's current playbook:
  static thresholds over the same telemetry features.
* :class:`RootCauseLocalizer` — a decision-tree classifier trained on
  labeled incident telemetry (and therefore distillable/compilable
  like any other deployable model in this platform).

Both produce :class:`Diagnosis` objects that carry the paper's §3
"who do we call" bit: a problem whose bottleneck link is the border
uplink is *external* (notify the upstream provider); anything else is
internal to the campus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnosis.features import DIAGNOSIS_FEATURES, LinkWindowFeaturizer
from repro.learning.models import DecisionTreeClassifier

_INDEX = {name: i for i, name in enumerate(DIAGNOSIS_FEATURES)}


@dataclass
class Diagnosis:
    """One localized problem."""

    link: Tuple[str, str]
    window_start: float
    kind: str                 # congestion / link-flap / link-degraded
    confidence: float
    external: bool            # True => notify the upstream provider

    def render(self) -> str:
        where = "EXTERNAL (notify provider)" if self.external \
            else "internal"
        return (f"[t={self.window_start:.0f}] {self.link[0]}<->"
                f"{self.link[1]}: {self.kind} "
                f"(confidence {self.confidence:.2f}, {where})")


def _is_border_link(link: Tuple[str, str], topology) -> bool:
    border = topology.border_link
    return border is not None and set(link) == set(border)


class RuleBasedLocalizer:
    """Threshold playbook over telemetry windows."""

    def __init__(self, window_s: float = 10.0,
                 congestion_util: float = 0.9,
                 flap_transitions: int = 2,
                 degraded_ceiling: float = 0.5):
        self.featurizer = LinkWindowFeaturizer(window_s=window_s)
        self.congestion_util = congestion_util
        self.flap_transitions = flap_transitions
        self.degraded_ceiling = degraded_ceiling

    def _classify_vector(self, vector: Sequence[float]) -> Optional[str]:
        transitions = vector[_INDEX["state_transitions"]]
        down = vector[_INDEX["down_fraction"]]
        mean_util = vector[_INDEX["mean_util"]]
        dwell = vector[_INDEX["saturation_dwell"]]
        max_util = vector[_INDEX["max_util"]]
        pressure = vector[_INDEX["flows_per_gbps"]]
        if transitions >= self.flap_transitions or 0 < down < 1:
            return "link-flap"
        if max_util >= self.congestion_util:
            return "congestion"
        if dwell > 0.6 and max_util < self.degraded_ceiling and \
                pressure > 3.0:
            # pegged at a plateau far below nameplate under real demand
            return "link-degraded"
        return None

    def diagnose(self, collector, topology) -> List[Diagnosis]:
        out = []
        for window in self.featurizer.windows(collector, topology):
            kind = self._classify_vector(window.vector())
            if kind is None:
                continue
            out.append(Diagnosis(
                link=window.link,
                window_start=window.window_start,
                kind=kind,
                confidence=1.0,
                external=_is_border_link(window.link, topology),
            ))
        return out


class RootCauseLocalizer:
    """Learned localizer: a decision tree over telemetry windows."""

    def __init__(self, window_s: float = 10.0, max_depth: int = 5,
                 min_samples_leaf: int = 2):
        self.featurizer = LinkWindowFeaturizer(window_s=window_s)
        self.model = DecisionTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf)
        self.class_names: List[str] = []

    def fit(self, collector, ground_truth, topology) -> "RootCauseLocalizer":
        return self.fit_many([(collector, ground_truth, topology)])

    def fit_many(self, days: Sequence[Tuple]) -> "RootCauseLocalizer":
        """Train on several (collector, ground_truth, topology) days.

        Incidents are rare; pooling days gives the tree enough incident
        windows to carve out each class.  Incident windows are
        up-weighted so a handful of them is not absorbed into a large
        benign leaf.
        """
        from repro.learning.dataset import Dataset

        class_names: List[str] = ["benign"]
        for _, ground_truth, _ in days:
            for window in ground_truth.windows:
                if window.kind in ("linkflap", "degradation", "congestion") \
                        and window.label not in class_names:
                    class_names.append(window.label)
        class_names = [class_names[0]] + sorted(class_names[1:])

        datasets = [
            self.featurizer.to_dataset(collector, ground_truth, topology,
                                       class_names=class_names)
            for collector, ground_truth, topology in days
        ]
        dataset = Dataset.concatenate(datasets)
        if len(dataset) == 0:
            raise ValueError("no telemetry windows to train on")
        self.class_names = list(dataset.class_names)
        benign_index = self.class_names.index("benign")
        weight = np.where(dataset.y == benign_index, 1.0, 10.0)
        self.model.fit(dataset.X, dataset.y, sample_weight=weight,
                       n_classes=len(self.class_names))
        return self

    def diagnose(self, collector, topology,
                 min_confidence: float = 0.6) -> List[Diagnosis]:
        if not self.class_names:
            raise RuntimeError("localizer not fitted")
        out = []
        benign_index = (self.class_names.index("benign")
                        if "benign" in self.class_names else -1)
        for window in self.featurizer.windows(collector, topology):
            vector = np.asarray(window.vector()).reshape(1, -1)
            proba = self.model.predict_proba(vector)[0]
            predicted = int(np.argmax(proba))
            if predicted == benign_index:
                continue
            if proba[predicted] < min_confidence:
                continue
            out.append(Diagnosis(
                link=window.link,
                window_start=window.window_start,
                kind=self.class_names[predicted],
                confidence=float(proba[predicted]),
                external=_is_border_link(window.link, topology),
            ))
        return out

    @staticmethod
    def score(diagnoses: List[Diagnosis], ground_truth) -> Dict[str, float]:
        """Event-level precision/recall: an incident counts as found if
        any diagnosis of the right kind lands in its window."""
        incidents = [w for w in ground_truth.windows
                     if w.kind in ("congestion", "linkflap", "degradation")]
        found = 0
        for incident in incidents:
            for diagnosis in diagnoses:
                mid = diagnosis.window_start
                if incident.start_time - 10 <= mid <= incident.end_time + 10 \
                        and diagnosis.kind == incident.label:
                    found += 1
                    break
        correct = 0
        for diagnosis in diagnoses:
            for incident in incidents:
                if incident.start_time - 10 <= diagnosis.window_start \
                        <= incident.end_time + 10 \
                        and diagnosis.kind == incident.label:
                    correct += 1
                    break
        return {
            "incidents": float(len(incidents)),
            "recall": found / len(incidents) if incidents else 0.0,
            "precision": correct / len(diagnoses) if diagnoses else 0.0,
            "diagnoses": float(len(diagnoses)),
        }
