"""SNMP-style link telemetry.

A real campus polls interface counters every few seconds; the
collector does the same against the simulator's links, recording
utilisation (against *nominal* capacity — a silently degraded link
shows up as saturation far below nameplate, exactly as SNMP would show
it), operational state, and the number of active flows (a demand
proxy akin to active-session counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class LinkSample:
    """One poll of one link."""

    timestamp: float
    link: Tuple[str, str]
    rate_bps: float
    nominal_capacity_bps: float
    up: bool
    active_flows: int

    @property
    def utilization(self) -> float:
        if self.nominal_capacity_bps <= 0:
            return 0.0
        return self.rate_bps / self.nominal_capacity_bps


class TelemetryCollector:
    """Polls every link on a fixed interval."""

    def __init__(self, network, interval_s: float = 1.0):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval_s = float(interval_s)
        self.samples: Dict[Tuple[str, str], List[LinkSample]] = {}
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._poll()

    def stop(self) -> None:
        self._running = False

    def _poll(self) -> None:
        if not self._running:
            return
        now = self.network.now
        for link in self.network.links:
            sample = LinkSample(
                timestamp=now,
                link=link.key,
                rate_bps=link.current_rate_bps,
                nominal_capacity_bps=link.nominal_capacity_bps,
                up=link.up,
                active_flows=len(link.active_flows),
            )
            self.samples.setdefault(link.key, []).append(sample)
        self.network.simulator.schedule(self.interval_s, self._poll,
                                        name="telemetry-poll")

    def series(self, link: Tuple[str, str]) -> List[LinkSample]:
        key = tuple(sorted(link))
        return self.samples.get(key, [])

    @property
    def total_samples(self) -> int:
        return sum(len(s) for s in self.samples.values())
