"""Per-(link, window) diagnosis features and labeling.

The feature set is deliberately what an operator's NMS can actually
compute from interface polls: utilisation statistics, saturation
dwell, flap counts, and demand pressure.  Labels come from the
incident ground truth: a window is labeled with an incident kind if it
overlaps the incident window *and* the link is implicated (the failed
link itself, or a link whose department hosts the congestion).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnosis.telemetry import LinkSample
from repro.learning.dataset import Dataset

DIAGNOSIS_FEATURES = [
    "mean_util",
    "max_util",
    "util_stddev",
    "saturation_dwell",     # fraction of polls with util > 0.9 * max seen
    "high_util_fraction",   # fraction of polls with util > 0.85
    "down_fraction",        # fraction of polls with link down
    "state_transitions",    # up/down flips within the window
    "mean_active_flows",
    "flows_per_gbps",       # demand pressure normalised by capacity
]


@dataclass
class LinkWindow:
    """Aggregated polls for one link in one time window."""

    link: Tuple[str, str]
    window_start: float
    samples: List[LinkSample]

    def vector(self) -> List[float]:
        utils = np.asarray([s.utilization for s in self.samples])
        ups = np.asarray([s.up for s in self.samples])
        flows = np.asarray([s.active_flows for s in self.samples])
        capacity_gbps = self.samples[0].nominal_capacity_bps / 1e9
        transitions = int(np.sum(ups[1:] != ups[:-1]))
        return [
            float(utils.mean()),
            float(utils.max()),
            float(utils.std()),
            float(np.mean(utils > 0.9 * max(utils.max(), 1e-9))),
            float(np.mean(utils > 0.85)),
            float(np.mean(~ups)),
            float(transitions),
            float(flows.mean()),
            float(flows.mean() / max(capacity_gbps, 1e-9)),
        ]


class LinkWindowFeaturizer:
    """Windows telemetry and labels it from incident ground truth.

    Only *infrastructure* links (switch-to-switch trunks) are windowed
    by default: a host's access line saturating is normal behaviour,
    and real NMS deployments monitor trunks, not every desktop port.
    """

    def __init__(self, window_s: float = 10.0,
                 infrastructure_only: bool = True):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = float(window_s)
        self.infrastructure_only = infrastructure_only

    def _monitored(self, link: Tuple[str, str], topology) -> bool:
        if not self.infrastructure_only or topology is None:
            return True
        for node in link:
            if node in topology.graph and topology.kind(node).is_endpoint:
                return False
        return True

    def windows(self, collector, topology=None) -> List[LinkWindow]:
        out: List[LinkWindow] = []
        for link, samples in collector.samples.items():
            if not self._monitored(link, topology):
                continue
            buckets: Dict[float, List[LinkSample]] = defaultdict(list)
            for sample in samples:
                start = math.floor(sample.timestamp / self.window_s) \
                    * self.window_s
                buckets[start].append(sample)
            for start, bucket in sorted(buckets.items()):
                out.append(LinkWindow(link=link, window_start=start,
                                      samples=bucket))
        return out

    def _label(self, window: LinkWindow, ground_truth, topology) -> str:
        mid = window.window_start + self.window_s / 2.0
        a, b = window.link
        for event in ground_truth.windows:
            if not event.contains(mid):
                continue
            if event.kind in ("linkflap", "degradation"):
                if set(event.victims) == {a, b}:
                    return event.label
            elif event.kind == "congestion":
                dept = event.details.get("department")
                dept_a = topology.department(a) if a in topology.graph \
                    else None
                dept_b = topology.department(b) if b in topology.graph \
                    else None
                # only the department's trunks, and only when actually
                # loaded (the elephants bottleneck on one of them)
                if dept in (dept_a, dept_b):
                    utils = [s.utilization for s in window.samples]
                    if max(utils) > 0.5:
                        return event.label
        return "benign"

    def to_dataset(self, collector, ground_truth, topology,
                   class_names: Optional[List[str]] = None) -> Dataset:
        """Vectorise and label every monitored (link, window)."""
        windows = self.windows(collector, topology)
        if class_names is None:
            labels = {"benign"} | {
                w.label for w in ground_truth.windows
                if w.kind in ("linkflap", "degradation", "congestion")
            }
            class_names = sorted(labels)
        index = {name: i for i, name in enumerate(class_names)}
        X, y, keys = [], [], []
        for window in windows:
            X.append(window.vector())
            label = self._label(window, ground_truth, topology)
            y.append(index.get(label, index.get("benign", 0)))
            keys.append((window.window_start, window.link))
        if not X:
            X = np.zeros((0, len(DIAGNOSIS_FEATURES)))
            y = np.zeros((0,), dtype=int)
        return Dataset(np.asarray(X, dtype=float),
                       np.asarray(y, dtype=int),
                       list(DIAGNOSIS_FEATURES), class_names, keys=keys)
