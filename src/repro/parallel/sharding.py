"""Deterministic shard routing: time-window x flow-hash.

A :class:`ShardRouter` assigns every packet to one of ``n_shards``
partitions from two coordinates: the feature window its timestamp
falls in, and a direction-insensitive hash of its flow key.  Both are
computed from packet *values* only — no Python ``hash()`` (which is
salted per process), no object identity — so the same packet routes to
the same shard in every process, on every run, whether it arrives as a
:class:`~repro.netsim.packets.PacketRecord` or inside a
:class:`~repro.netsim.packets.PacketColumns` batch.

Keying on (window, flow) keeps a flow's packets within one window on
one shard — the locality the windowed featurizer and per-shard zone
maps want — while spreading both long flows (across windows) and busy
windows (across flows) over all shards.
"""

from __future__ import annotations

import math
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.packets import DictColumn, PacketColumns, ip_to_u32

_MASK64 = (1 << 64) - 1
_PHI = 0x9E3779B97F4A7C15          # 2^64 / golden ratio
_MIX1 = 0xFF51AFD7ED558CCD         # splitmix64 finalizer constants
_MIX2 = 0xC4CEB9FE1A85EC53
_FLOW_SALT = 0x632BE59BD9B4E019


def _ip_key(ip: str) -> int:
    """Stable 32-bit key for an address: uint32 when canonical, CRC32
    of the raw text otherwise (the same fallback rule the columnar
    encoder uses, so record-path and column-path routing agree)."""
    try:
        return ip_to_u32(ip)
    except ValueError:
        return zlib.crc32(ip.encode("utf-8", "surrogateescape"))


def _mix64(value: int) -> int:
    """splitmix64 finalizer (scalar); the vector twin is :func:`_mix64_arr`."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * _MIX1) & _MASK64
    value ^= value >> 33
    value = (value * _MIX2) & _MASK64
    value ^= value >> 33
    return value


def _mix64_arr(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 (wraps like the
    scalar path: numpy unsigned arithmetic is modular)."""
    values = values.astype(np.uint64, copy=True)
    values ^= values >> np.uint64(33)
    values *= np.uint64(_MIX1)
    values ^= values >> np.uint64(33)
    values *= np.uint64(_MIX2)
    values ^= values >> np.uint64(33)
    return values


class ShardRouter:
    """Deterministic (time-window x flow-hash) -> shard assignment.

    Parameters
    ----------
    n_shards:
        Number of partitions; 1 collapses to "everything on shard 0".
    window_s:
        Window length used for the time coordinate — normally the
        platform's feature window, so one (window, flow) cell never
        straddles shards.
    """

    def __init__(self, n_shards: int, window_s: float = 5.0):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not window_s > 0:
            raise ValueError("window_s must be positive")
        self.n_shards = int(n_shards)
        self.window_s = float(window_s)

    # -- scalar (record) path ------------------------------------------------

    def _window_index(self, timestamp: float) -> int:
        if math.isnan(timestamp) or math.isinf(timestamp):
            return 0
        return int(math.floor(timestamp / self.window_s))

    def shard_of(self, packet) -> int:
        """Shard id for one packet record."""
        if self.n_shards == 1:
            return 0
        a = ((_ip_key(packet.src_ip) << 16) | (int(packet.src_port)
                                               & 0xFFFF)) & _MASK64
        b = ((_ip_key(packet.dst_ip) << 16) | (int(packet.dst_port)
                                               & 0xFFFF)) & _MASK64
        lo, hi = (a, b) if a <= b else (b, a)
        flow = (lo * _PHI + hi * _FLOW_SALT
                + int(packet.protocol)) & _MASK64
        widx = self._window_index(packet.timestamp) & _MASK64
        return int(_mix64(flow ^ (widx * _PHI)) % self.n_shards)

    def assign_records(self, packets: Sequence) -> List[int]:
        """Shard id per record, aligned with the input order."""
        return [self.shard_of(p) for p in packets]

    def shards_for_flow(self, src_ip: str, dst_ip: str, src_port: int,
                        dst_port: int, protocol: int,
                        start: Optional[float], end: Optional[float],
                        max_windows: int = 4096) -> Optional[set]:
        """Exact shard candidates for one flow over a bounded range.

        A query fixing the full 5-tuple pins the flow hash; with both
        time bounds finite, enumerating the windows in range and
        recomputing each window's shard (the same math as
        :meth:`shard_of`) yields every shard a matching packet *could*
        have routed to — pruning the rest before any scatter is exact,
        not heuristic.  Returns None when the range is unbounded,
        non-finite, or spans more than ``max_windows`` windows (at
        that point most shards are candidates anyway).
        """
        if self.n_shards == 1:
            return {0}
        if start is None or end is None:
            return None
        if not (math.isfinite(start) and math.isfinite(end)) or end < start:
            return None
        first = self._window_index(start)
        last = self._window_index(end)
        if last - first + 1 > max_windows:
            return None
        a = ((_ip_key(src_ip) << 16) | (int(src_port) & 0xFFFF)) & _MASK64
        b = ((_ip_key(dst_ip) << 16) | (int(dst_port) & 0xFFFF)) & _MASK64
        lo, hi = (a, b) if a <= b else (b, a)
        flow = (lo * _PHI + hi * _FLOW_SALT + int(protocol)) & _MASK64
        shards: set = set()
        for widx in range(first, last + 1):
            shards.add(int(_mix64(flow ^ ((widx & _MASK64) * _PHI))
                           % self.n_shards))
            if len(shards) == self.n_shards:
                break
        return shards

    # -- vectorized (columns) path -------------------------------------------

    def _ip_keys_arr(self, column) -> np.ndarray:
        if isinstance(column, DictColumn):
            table = np.fromiter((_ip_key(v) for v in column.values),
                                dtype=np.uint64, count=len(column.values))
            return table[column.codes]
        return column.astype(np.uint64)

    def assign_columns(self, cols: PacketColumns) -> np.ndarray:
        """Shard id per row of a columnar batch (matches
        :meth:`shard_of` on the materialized records exactly)."""
        n = len(cols)
        if self.n_shards == 1 or n == 0:
            return np.zeros(n, dtype=np.int64)
        ts = cols.timestamp
        widx = np.floor(ts / self.window_s)
        widx = np.where(np.isfinite(widx), widx, 0.0)
        # Python ints wrap via & _MASK64; int64->uint64 astype wraps the
        # same way for the negative window indexes.
        widx_u = widx.astype(np.int64).astype(np.uint64)
        sp = cols.src_port.astype(np.uint64) & np.uint64(0xFFFF)
        dp = cols.dst_port.astype(np.uint64) & np.uint64(0xFFFF)
        a = (self._ip_keys_arr(cols.src_ip) << np.uint64(16)) | sp
        b = (self._ip_keys_arr(cols.dst_ip) << np.uint64(16)) | dp
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        proto = cols.protocol.astype(np.uint64)
        flow = lo * np.uint64(_PHI) + hi * np.uint64(_FLOW_SALT) + proto
        mixed = _mix64_arr(flow ^ (widx_u * np.uint64(_PHI)))
        return (mixed % np.uint64(self.n_shards)).astype(np.int64)

    # -- partitioning helpers ------------------------------------------------

    def partition_positions(self, assignments: np.ndarray) \
            -> List[np.ndarray]:
        """Row positions per shard, each ascending (input order kept)."""
        assignments = np.asarray(assignments)
        return [np.flatnonzero(assignments == shard)
                for shard in range(self.n_shards)]

    def partition_columns(self, cols: PacketColumns) \
            -> List[Tuple[np.ndarray, Optional[PacketColumns]]]:
        """Split a batch into per-shard (positions, column slice) pairs.

        Positions are ascending, so each slice preserves the batch's
        arrival order; empty shards get ``(empty, None)``.
        """
        out: List[Tuple[np.ndarray, Optional[PacketColumns]]] = []
        for positions in self.partition_positions(self.assign_columns(cols)):
            out.append((positions,
                        cols.take(positions) if len(positions) else None))
        return out
