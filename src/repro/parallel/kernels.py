"""Worker-side kernels and their parent-side scatter orchestrators.

Every function named ``_*_kernel`` runs inside a worker process: it
attaches a :class:`~repro.parallel.shm.ColumnsShipment`, computes on
the shared column views, and returns a small picklable result.  The
``scatter_*`` companions run in the parent: they decide eligibility,
pack the column blocks into shared memory, fan the tasks out through a
:class:`~repro.parallel.executor.ParallelExecutor`, and always unlink
the blocks before returning.

Eligibility is conservative — any shape the kernel cannot reproduce
bit-identically (residual predicates, tag filters, record-backed
segments, no shared memory) returns None and the caller takes its
serial path.  Parallelism changes wall-clock, never answers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datastore.query import Query, columnar_positions
from repro.learning.features import _block_examples
from repro.netsim.packets import PacketColumns
from repro.obs.runtime import worker_obs
from repro.parallel.executor import ParallelExecutor
from repro.parallel.shm import ColumnsShipment, pack_columns, shm_available


def _observed_attach(shipment: ColumnsShipment):
    """Attach a shipment, timing it when a worker context is active.

    Returns ``(shm, cols, worker)`` — ``worker`` is the active
    :class:`~repro.obs.runtime.WorkerObs` or None, so the kernel can
    time its compute phase with the same context.
    """
    worker = worker_obs()
    if worker is None:
        return shipment.attach() + (None,)
    started = worker.tracer.clock.now()
    shm, cols = shipment.attach()
    worker.metrics.histogram("repro_parallel_shm_attach_seconds").observe(
        worker.tracer.clock.now() - started)
    return shm, cols, worker


def _observe_kernel(worker, kernel: str, started: float) -> None:
    worker.metrics.histogram("repro_parallel_kernel_seconds",
                             kernel=kernel).observe(
        worker.tracer.clock.now() - started)


def _observed_pack(cols: PacketColumns, executor: ParallelExecutor,
                   with_payload: bool = False):
    """Pack a column block into shared memory, timing the ship when the
    parent executor carries an Observability."""
    obs = executor.obs
    if obs is None:
        return pack_columns(cols, with_payload=with_payload)
    started = obs.clock.now()
    handle, shipment = pack_columns(cols, with_payload=with_payload)
    obs.metrics.histogram("repro_parallel_shm_pack_seconds").observe(
        obs.clock.now() - started)
    return handle, shipment

#: fields the vectorized scan kernel can evaluate without records
_SCANNABLE_FIELDS = frozenset({
    "timestamp", "src_port", "dst_port", "protocol", "size", "payload_len",
    "flags", "ttl", "flow_id", "src_ip", "dst_ip", "direction", "app",
    "label",
})


# -- query scan ---------------------------------------------------------------


def _query_scan_kernel(shipment: ColumnsShipment, time_range,
                       where: Dict, where_items=None,
                       gather: bool = False) -> Optional[np.ndarray]:
    """Vectorized row selection over one shipped block; ascending
    positions (or None if a field resists vectorized evaluation).

    ``where_items``/``gather`` carry the planner's per-segment
    predicate order and gather decision into the worker."""
    shm, cols, worker = _observed_attach(shipment)
    try:
        if worker is None:
            return columnar_positions(cols, time_range, where,
                                      where_items=where_items,
                                      gather=gather)
        started = worker.tracer.clock.now()
        positions = columnar_positions(cols, time_range, where,
                                       where_items=where_items,
                                       gather=gather)
        _observe_kernel(worker, "query_scan", started)
        return positions
    finally:
        shm.close()


def scatter_query(segments, query: Query, executor: ParallelExecutor,
                  segment_orders: Optional[Dict[int, Tuple[list, bool]]]
                  = None) -> Optional[List[Tuple[object, np.ndarray]]]:
    """Per-segment scan positions computed in workers.

    Returns ``[(segment, positions), ...]`` for the contributing
    segments, or None when the query (or any segment) is ineligible
    for the records-free kernel.  ``segment_orders`` optionally maps
    ``segment_id`` to the planner's ``(where_items, gather)`` choice
    for that segment.
    """
    if query.tags or query.predicate is not None:
        return None
    if not shm_available():
        return None
    for fld, value in query.where.items():
        if fld not in _SCANNABLE_FIELDS:
            return None
        if not isinstance(value, (str, int, float)):
            return None

    jobs: List[Tuple[object, PacketColumns]] = []
    for segment in segments:
        if not segment.records:
            continue
        if query.time_range is not None and not segment.overlaps(
                *query.time_range):
            continue
        cols = segment.columns()
        if cols is None:
            return None
        jobs.append((segment, cols))
    if not jobs:
        return []

    handles = []
    try:
        tasks = []
        for segment, cols in jobs:
            handle, shipment = _observed_pack(cols, executor)
            handles.append(handle)
            where_items, gather = (None, False) if segment_orders is None \
                else segment_orders.get(segment.segment_id, (None, False))
            tasks.append((shipment, query.time_range, dict(query.where),
                          where_items, gather))
        outs = executor.map_tasks(_query_scan_kernel, tasks)
    finally:
        for handle in handles:
            handle.close()
            handle.unlink()
    if any(out is None for out in outs):
        return None
    return [(segment, positions)
            for (segment, _), positions in zip(jobs, outs)]


# -- featurize ----------------------------------------------------------------


def _featurize_kernel(shipment: ColumnsShipment, time_range, window_s: float,
                      use_payload: bool, resp_mask, any_mask, tagged_mask,
                      curated_codes, curated_values):
    """Partial window aggregation of one shipped block (records-free)."""
    shm, cols, worker = _observed_attach(shipment)
    try:
        if worker is None:
            return _block_examples(cols, time_range, window_s, use_payload,
                                   resp_mask, any_mask, tagged_mask,
                                   curated_codes, curated_values)
        started = worker.tracer.clock.now()
        out = _block_examples(cols, time_range, window_s, use_payload,
                              resp_mask, any_mask, tagged_mask,
                              curated_codes, curated_values)
        _observe_kernel(worker, "featurize", started)
        return out
    finally:
        shm.close()


def scatter_featurize(blocks, time_range, window_s: float, use_payload: bool,
                      executor: ParallelExecutor) -> Optional[List]:
    """Per-segment partial examples computed in workers.

    ``blocks`` is ``[(segment, cols, aux), ...]`` as prepared by
    :meth:`SourceWindowFeaturizer.examples_merged`; the per-row aux
    arrays (DNS tag verdicts, curated label codes) ride the pickle
    channel while the columns go through shared memory.  Returns the
    per-block partial results, or None when shipping is unavailable.
    """
    if not shm_available():
        return None
    handles = []
    try:
        tasks = []
        for _, cols, aux in blocks:
            handle, shipment = _observed_pack(cols, executor)
            handles.append(handle)
            tasks.append((shipment, time_range, window_s, use_payload, *aux))
        return executor.map_tasks(_featurize_kernel, tasks)
    finally:
        for handle in handles:
            handle.close()
            handle.unlink()


# -- metadata extraction ------------------------------------------------------


def _extract_kernel(shipment: ColumnsShipment) -> List[Dict[str, str]]:
    """Tag extraction for one shipped block.

    Builds a fresh topology-free extractor inside the worker — live
    platform objects never cross the boundary — and materializes
    records off the shared views (payloads were shipped alongside).
    """
    from repro.capture.metadata import MetadataExtractor
    shm, cols, worker = _observed_attach(shipment)
    try:
        if worker is None:
            return MetadataExtractor().extract_batch(
                list(cols.iter_records()))
        started = worker.tracer.clock.now()
        tags = MetadataExtractor().extract_batch(list(cols.iter_records()))
        _observe_kernel(worker, "extract", started)
        return tags
    finally:
        shm.close()


def scatter_extract(cols: PacketColumns, executor: ParallelExecutor,
                    min_chunk: int = 2_000) -> Optional[List[Dict[str, str]]]:
    """Metadata extraction fanned out over row chunks of one batch.

    Only valid for topology-free extraction (the caller checks): tags
    are then a pure function of each packet, so chunking cannot change
    them.  Returns the per-row tag dicts in input order, or None when
    the batch is too small to be worth shipping or shm is unavailable.
    """
    n = len(cols)
    if not shm_available() or n < 2 * min_chunk or cols.payload is None:
        return None
    chunks = max(2, min(executor.workers * 2, n // min_chunk))
    bounds = np.linspace(0, n, chunks + 1).astype(int)
    handles = []
    try:
        tasks = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            handle, shipment = _observed_pack(cols.slice(int(lo), int(hi)),
                                              executor, with_payload=True)
            handles.append(handle)
            tasks.append((shipment,))
        outs = executor.map_tasks(_extract_kernel, tasks)
    finally:
        for handle in handles:
            handle.close()
            handle.unlink()
    tags: List[Dict[str, str]] = []
    for out in outs:
        tags.extend(out)
    return tags
