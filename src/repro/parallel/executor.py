"""Process-pool executor with a serial fallback and chaos gates.

:class:`ParallelExecutor` is the one place the repo touches
:mod:`concurrent.futures`.  It owns three guarantees:

* **Determinism** — ``map_tasks`` returns results in task order, and
  every kernel shipped through it is a pure function of its arguments,
  so ``workers=0`` (in-process serial), ``workers=1`` and ``workers=N``
  produce bit-identical results.
* **Graceful degradation** — a worker crash, a broken pool, or an
  unpicklable argument never fails the caller: the batch re-runs
  serially in the parent and the fallback is recorded in the
  :class:`~repro.chaos.resilience.DegradationLedger`.
* **Pickling hygiene** — tasks must be module-level functions; lambdas
  and closures are rejected eagerly (they cannot cross a process
  boundary), and live platform objects (``EventBus``,
  ``EmulatedSwitch``) are refused as arguments rather than dragged
  through pickle.  The REP305 lint rule enforces the same discipline
  statically.

Chaos integration: when a :class:`~repro.chaos.faults.FaultInjector`
arms :data:`~repro.chaos.faults.FaultKind.WORKER_CRASH`, the parent
draws a deterministic per-task decision from the injector's substream
and ships a crash marker with the task; the marked task raises
*inside the worker*, exercising the real recovery path on a replayable
schedule.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.faults import FaultKind

#: live platform objects that must never be captured into worker tasks
#: (checked by type name to avoid import cycles with repro.core/deploy).
_UNSHIPPABLE_TYPES = frozenset({"EventBus", "EmulatedSwitch"})

#: consecutive pool failures before the executor stops trying.
_MAX_POOL_FAILURES = 2


class WorkerCrashError(RuntimeError):
    """A worker task died (injected by chaos, or a real pool break)."""


class NonShippableTaskError(TypeError):
    """A task cannot cross the process boundary as submitted."""


def _task_shell(fn: Callable, args: Tuple, crash: bool,
                with_obs: bool = False):
    """Worker-side wrapper: the injected-crash gate fires here, inside
    the worker, before the kernel runs.

    When the parent runs with observability, the shell activates a
    process-local :class:`~repro.obs.runtime.WorkerObs` around the task
    and ships ``(result, payload)`` home; the parent merges the payload
    (exact histogram merge, span adoption) in task order.
    """
    if crash:
        raise WorkerCrashError("chaos: injected worker crash")
    if not with_obs:
        return fn(*args)
    from repro.obs import runtime
    worker = runtime.activate()
    try:
        with worker.tracer.span("parallel.task",
                                fn=getattr(fn, "__name__", repr(fn))):
            result = fn(*args)
        return result, worker.to_payload()
    finally:
        runtime.deactivate()


class ParallelExecutor:
    """Deterministic fan-out of module-level task functions.

    Parameters
    ----------
    workers:
        Process count; ``0`` means run everything serially in-process
        (the guaranteed-available fallback).
    ledger:
        Optional degradation ledger; every parallel->serial fallback is
        recorded under stage ``"parallel"``.
    fault_injector:
        Optional chaos injector; arms deterministic worker crashes.
    obs:
        Optional :class:`~repro.obs.Observability`.  When set, each
        ``map_tasks`` call runs under a ``parallel.map_tasks`` span,
        worker tasks record into process-local registries whose
        payloads the parent merges on completion (histogram merges
        exact, spans adopted in task order), and a batch whose workers
        died records ``obs / worker-metrics-lost`` in the ledger.
    """

    def __init__(self, workers: int = 0, ledger=None, fault_injector=None,
                 obs=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)
        self.ledger = ledger
        self.fault_injector = fault_injector
        self.obs = obs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_failures = 0
        self.tasks_run = 0
        self.tasks_in_workers = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when tasks may actually reach worker processes."""
        return self.workers > 0 and self._pool_failures < _MAX_POOL_FAILURES

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError) as exc:
                self._note_failure(f"pool unavailable: {exc!r}")
                return None
        return self._pool

    def _note_failure(self, reason: str) -> None:
        self._pool_failures += 1
        if self.ledger is not None:
            self.ledger.degrade("parallel", "serial-fallback", reason)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_parallel_serial_fallback_total").inc()

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def shutdown(self) -> None:
        """Release worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- shippability --------------------------------------------------------

    @staticmethod
    def assert_shippable(fn: Callable, tasks: Sequence[Tuple]) -> None:
        """Reject tasks that cannot cross the process boundary.

        Lambdas/closures fail eagerly with a pointed message (REP305
        catches them statically too); live platform objects in the
        arguments are refused rather than pickled.
        """
        qualname = getattr(fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise NonShippableTaskError(
                f"parallel task {qualname!r} is a lambda/closure; workers "
                f"cannot import it — use a module-level function [REP305]")
        for args in tasks:
            for arg in args:
                if type(arg).__name__ in _UNSHIPPABLE_TYPES:
                    raise NonShippableTaskError(
                        f"parallel task argument of type "
                        f"{type(arg).__name__} must not cross a process "
                        f"boundary; pass plain data and rebuild the "
                        f"object inside the worker")

    # -- execution -----------------------------------------------------------

    def _crash_plan(self, n: int) -> List[bool]:
        injector = self.fault_injector
        if injector is None or not injector.armed(FaultKind.WORKER_CRASH):
            return [False] * n
        return [injector.should_fire(FaultKind.WORKER_CRASH, task=i)
                for i in range(n)]

    def map_tasks(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Run ``fn(*task)`` for every task; results in task order.

        Serial when ``workers=0``; otherwise fans out over the pool and
        degrades to a serial re-run of the whole batch on any worker or
        pool failure (recorded in the ledger).  Injected worker crashes
        take the same recovery path as real ones.
        """
        tasks = list(tasks)
        self.tasks_run += len(tasks)
        if not tasks:
            return []
        obs = self.obs
        if obs is None:
            return self._run_batch(fn, tasks, None)
        with obs.span("parallel.map_tasks",
                      fn=getattr(fn, "__name__", repr(fn)),
                      tasks=len(tasks)):
            return self._run_batch(fn, tasks, obs)

    def _run_batch(self, fn: Callable, tasks: List[Tuple], obs) -> List:
        if not self.parallel:
            return [fn(*args) for args in tasks]
        self.assert_shippable(fn, tasks)
        crashes = self._crash_plan(len(tasks))
        pool = self._ensure_pool()
        if pool is None:
            return [fn(*args) for args in tasks]
        with_obs = obs is not None
        try:
            futures = [pool.submit(_task_shell, fn, args, crash, with_obs)
                       for args, crash in zip(tasks, crashes)]
            outs = [future.result() for future in futures]
        except (WorkerCrashError, BrokenProcessPool, pickle.PicklingError,
                OSError) as exc:
            for future in futures:
                future.cancel()
            if isinstance(exc, BrokenProcessPool):
                self._discard_pool()
            self._note_failure(f"worker batch failed: {exc!r}")
            if with_obs and self.ledger is not None:
                # whatever the dead workers had buffered is gone; the
                # serial re-run below records in-process instead
                self.ledger.degrade(
                    "obs", "worker-metrics-lost",
                    f"batch of {len(tasks)} tasks re-ran serially: "
                    f"{exc!r}")
            return [fn(*args) for args in tasks]
        self.tasks_in_workers += len(tasks)
        if not with_obs:
            return outs
        results = []
        for result, payload in outs:    # task order: merge deterministic
            results.append(result)
            obs.metrics.merge_payload(payload["metrics"])
            obs.tracer.adopt(payload["spans"])
            obs.tracer.dropped += payload.get("spans_dropped", 0)
        obs.metrics.counter("repro_parallel_tasks_in_workers_total").inc(
            len(tasks))
        return results

    def summary(self) -> dict:
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "tasks_run": self.tasks_run,
            "tasks_in_workers": self.tasks_in_workers,
            "pool_failures": self._pool_failures,
        }
