"""Zero-copy shipping of columnar batches via shared memory.

A shipment packs a set of numpy arrays into one
:mod:`multiprocessing.shared_memory` block; the picklable descriptor
(block name + per-array dtype/shape/offset) crosses the process
boundary instead of the data, and workers attach numpy *views* onto
the same physical pages.  Only small residual state — dictionary
column value tables, payload fragments when a kernel needs them — ever
rides the pickle channel.

Lifecycle: the **parent** packs, hands descriptors to tasks, and
unlinks once results are in; **workers** attach read-only and close on
exit.  :func:`shm_available` gates every caller: platforms without
POSIX shared memory (or sandboxes that forbid it) degrade to the
serial code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.packets import (
    NUMERIC_FIELDS,
    DictColumn,
    PacketColumns,
)

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:          # pragma: no cover - platform without shm
    _shared_memory = None

_STRING_COLUMNS = ("direction", "app", "label")
_available: Optional[bool] = None


def shm_available() -> bool:
    """True when this platform can create and attach shared memory."""
    global _available
    if _available is None:
        if _shared_memory is None:
            _available = False
        else:
            try:
                block = _shared_memory.SharedMemory(create=True, size=16)
                block.close()
                block.unlink()
                _available = True
            except (OSError, ValueError):
                _available = False
    return _available


def _untrack(shm) -> None:
    """Keep a borrowed block out of this process's resource tracker.

    Attaching registers the block as if this process owned it, and a
    *spawn*-started worker's private tracker would unlink the block
    when the worker exits — even though the parent still owns it
    (bpo-39959).  Fork-started workers share the parent's tracker, so
    there the duplicate registration is a no-op and unregistering would
    instead erase the parent's claim (making its later ``unlink``
    trip the tracker).  Ownership stays with the parent either way.
    """
    try:
        import multiprocessing
        from multiprocessing import resource_tracker
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError, KeyError):   # pragma: no cover
        pass


@dataclass
class ArrayShipment:
    """Picklable descriptor of arrays packed into one shm block."""

    shm_name: str
    total_bytes: int
    #: name -> (dtype string, shape tuple, byte offset)
    layout: Dict[str, Tuple[str, Tuple[int, ...], int]]

    def attach(self) -> Tuple[object, Dict[str, np.ndarray]]:
        """Open the block and return (handle, name -> array view).

        The caller must keep the handle alive as long as the views are
        in use, then ``handle.close()``.
        """
        shm = _shared_memory.SharedMemory(name=self.shm_name)
        _untrack(shm)
        arrays = {
            name: np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=shm.buf, offset=offset)
            for name, (dtype, shape, offset) in self.layout.items()
        }
        return shm, arrays


def pack_arrays(arrays: Dict[str, np.ndarray]) \
        -> Tuple[object, ArrayShipment]:
    """Copy arrays into one fresh shm block; returns (handle, shipment).

    The handle belongs to the caller: ``close()`` + ``unlink()`` when
    every consumer is done (``ArrayShipment.unlink`` does both).
    """
    layout: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        # 8-byte alignment keeps every view's dtype happy.
        offset = (offset + 7) & ~7
        layout[name] = (array.dtype.str, array.shape, offset)
        offset += array.nbytes
    shm = _shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, array in arrays.items():
        dtype, shape, start = layout[name]
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                          offset=start)
        view[...] = array
    return shm, ArrayShipment(shm_name=shm.name, total_bytes=offset,
                              layout=layout)


def attach_arrays(shipment: ArrayShipment) \
        -> Tuple[object, Dict[str, np.ndarray]]:
    """Worker-side convenience alias for :meth:`ArrayShipment.attach`."""
    return shipment.attach()


@dataclass
class ColumnsShipment:
    """A :class:`PacketColumns` batch split into shm + pickle parts.

    Arrays (numeric columns, uint32 addresses, dictionary codes, and —
    when ``with_payload`` — the payload blob/offsets) live in the shm
    block; the small value tables ride along in this dataclass.
    Payloads are optional because most kernels (query masks, featurize
    aggregation) never touch them.
    """

    arrays: ArrayShipment
    #: column name -> value table for dictionary-encoded columns
    dict_values: Dict[str, List[str]] = field(default_factory=dict)
    n_rows: int = 0
    with_payload: bool = False

    def attach(self) -> Tuple[object, PacketColumns]:
        """Rebuild a :class:`PacketColumns` over shared views.

        ``payload`` is ``None`` unless the shipment carried payloads —
        kernels that never materialize records never notice.
        """
        shm, arrays = self.arrays.attach()
        columns: Dict[str, object] = {}
        for fld in NUMERIC_FIELDS:
            columns[fld] = arrays[fld]
        for fld in ("src_ip", "dst_ip"):
            if fld in self.dict_values:
                columns[fld] = DictColumn(arrays[fld + ".codes"],
                                          list(self.dict_values[fld]))
            else:
                columns[fld] = arrays[fld]
        for fld in _STRING_COLUMNS:
            columns[fld] = DictColumn(arrays[fld + ".codes"],
                                      list(self.dict_values[fld]))
        payload = None
        if self.with_payload:
            blob = arrays["payload.blob"].tobytes()
            bounds = arrays["payload.offsets"]
            payload = [blob[bounds[i]:bounds[i + 1]]
                       for i in range(self.n_rows)]
        columns["payload"] = payload
        return shm, PacketColumns(**columns)


def pack_columns(cols: PacketColumns, with_payload: bool = False) \
        -> Tuple[object, ColumnsShipment]:
    """Pack a batch for worker shipment; returns (handle, shipment)."""
    arrays: Dict[str, np.ndarray] = {
        fld: getattr(cols, fld) for fld in NUMERIC_FIELDS
    }
    dict_values: Dict[str, List[str]] = {}
    for fld in ("src_ip", "dst_ip"):
        column = getattr(cols, fld)
        if isinstance(column, DictColumn):
            arrays[fld + ".codes"] = column.codes
            dict_values[fld] = list(column.values)
        else:
            arrays[fld] = column
    for fld in _STRING_COLUMNS:
        column = getattr(cols, fld)
        arrays[fld + ".codes"] = column.codes
        dict_values[fld] = list(column.values)
    if with_payload:
        offsets = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum([len(p) for p in cols.payload], out=offsets[1:])
        blob = b"".join(cols.payload)
        arrays["payload.blob"] = np.frombuffer(blob, dtype=np.uint8) \
            if blob else np.zeros(0, dtype=np.uint8)
        arrays["payload.offsets"] = offsets
    shm, shipment = pack_arrays(arrays)
    return shm, ColumnsShipment(arrays=shipment, dict_values=dict_values,
                                n_rows=len(cols), with_payload=with_payload)
