"""Process-parallel execution substrate.

The capture -> store -> featurize -> train pipeline is embarrassingly
parallel across time windows and flow-hash shards; this package
provides the pieces that exploit it on one machine:

* :mod:`repro.parallel.sharding` — the deterministic shard router
  (time-window x flow-hash) shared by the sharded store, the capture
  engine's per-shard accounting, and the benchmarks.
* :mod:`repro.parallel.shm` — zero-copy shipping of columnar batches
  to worker processes via :mod:`multiprocessing.shared_memory`.
* :mod:`repro.parallel.executor` — a process-pool executor with a
  serial fallback (``workers=0``), deterministic chaos-injected worker
  crashes, and graceful degradation recorded in the
  :class:`~repro.chaos.resilience.DegradationLedger`.
* :mod:`repro.parallel.taskgraph` — a small dependency-aware task
  graph (a la Estee) that schedules ready waves onto the executor.
* :mod:`repro.parallel.kernels` — the module-level worker functions
  (query scan, featurize aggregation, metadata extraction) that cross
  the process boundary.

Determinism contract: every parallel path in this package produces
results bit-identical to its serial reference — parallelism changes
wall-clock, never answers.
"""

from repro.parallel.executor import (
    NonShippableTaskError,
    ParallelExecutor,
    WorkerCrashError,
)
from repro.parallel.sharding import ShardRouter
from repro.parallel.shm import (
    ColumnsShipment,
    attach_arrays,
    pack_arrays,
    shm_available,
)
from repro.parallel.taskgraph import Dep, Task, TaskGraph

__all__ = [
    "ColumnsShipment",
    "Dep",
    "NonShippableTaskError",
    "ParallelExecutor",
    "ShardRouter",
    "Task",
    "TaskGraph",
    "WorkerCrashError",
    "attach_arrays",
    "pack_arrays",
    "shm_available",
]
