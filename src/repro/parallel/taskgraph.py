"""Dependency-aware task graph scheduled in ready waves.

A small, deterministic cousin of the Estee scheduler simulator's task
graphs: tasks name their dependencies, the graph topologically peels
off *waves* of ready tasks, and each wave is fanned out through a
:class:`~repro.parallel.executor.ParallelExecutor`.  Results of
dependencies are substituted into successor arguments via :class:`Dep`
placeholders, so task functions stay plain module-level functions of
picklable values — the executor's shippability rules apply unchanged.

Used by the devloop slow path: cross-validation folds are independent
tasks, per-event-class distillation fans out one task per class, and a
summary task depends on all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.parallel.executor import ParallelExecutor


@dataclass(frozen=True)
class Dep:
    """Placeholder argument: replaced by the named task's result."""

    name: str


@dataclass
class Task:
    """One node: a module-level function plus (possibly Dep) arguments."""

    name: str
    fn: Callable
    args: Tuple = ()
    deps: Tuple[str, ...] = field(default_factory=tuple)


class TaskGraph:
    """Insertion-ordered DAG of tasks run in ready waves.

    Determinism: within a wave, tasks run (and results bind) in
    insertion order, so the execution schedule is a pure function of
    the graph — independent of worker timing.
    """

    def __init__(self):
        self._tasks: Dict[str, Task] = {}

    def add(self, name: str, fn: Callable, *args,
            deps: Sequence[str] = ()) -> Task:
        """Register a task; ``Dep(name)`` args imply dependencies."""
        if name in self._tasks:
            raise ValueError(f"duplicate task {name!r}")
        implied = [a.name for a in args if isinstance(a, Dep)]
        task = Task(name=name, fn=fn, args=tuple(args),
                    deps=tuple(dict.fromkeys([*deps, *implied])))
        self._tasks[name] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def _check(self) -> None:
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown {dep!r}")

    @staticmethod
    def _bind(task: Task, results: Dict[str, object]) -> Tuple:
        return tuple(results[a.name] if isinstance(a, Dep) else a
                     for a in task.args)

    def run(self, executor: ParallelExecutor) -> Dict[str, object]:
        """Execute the graph; returns name -> result for every task."""
        self._check()
        results: Dict[str, object] = {}
        pending = dict(self._tasks)
        while pending:
            wave = [t for t in pending.values()
                    if all(d in results for d in t.deps)]
            if not wave:
                cycle = ", ".join(sorted(pending))
                raise ValueError(f"task graph has a cycle among: {cycle}")
            # One executor batch per wave; tasks in a wave share no deps.
            if len({t.fn for t in wave}) == 1 and len(wave) > 1:
                outs = executor.map_tasks(
                    wave[0].fn, [self._bind(t, results) for t in wave])
            else:
                outs = [executor.map_tasks(t.fn,
                                           [self._bind(t, results)])[0]
                        for t in wave]
            for task, out in zip(wave, outs):
                results[task.name] = out
                del pending[task.name]
        return results
