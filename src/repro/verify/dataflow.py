"""Intra-procedural forward dataflow over the :mod:`repro.verify.cfg` IR.

Two layers:

* :func:`solve_forward` — a generic worklist fixpoint solver.  A
  :class:`ForwardProblem` supplies the lattice operations (``bottom``,
  ``entry_state``, ``join``, ``equals``) and a per-block ``transfer``;
  the solver iterates blocks in reverse postorder until the out-states
  stop changing.  Termination is the problem's responsibility: states
  must form a finite-height lattice and ``transfer`` must be monotone
  (every shipped problem here is a union-of-finite-sets lattice, where
  both hold by construction).

* :class:`GenKillProblem` / :class:`ReachingDefinitions` — the classic
  bit-vector instantiation: per-block ``gen``/``kill`` sets with union
  join, precomputed once so the fixpoint is pure set arithmetic.
  Reaching definitions is both a useful pass in its own right and the
  reference semantics the hypothesis suite cross-checks the taint
  engine against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Generic, Iterable, List, Tuple, TypeVar

from repro.verify.cfg import CFG, BranchStmt

__all__ = [
    "ForwardProblem",
    "solve_forward",
    "GenKillProblem",
    "Definition",
    "ReachingDefinitions",
    "assigned_names",
]

State = TypeVar("State")


class ForwardProblem(Generic[State]):
    """Interface a forward dataflow problem implements."""

    def bottom(self) -> State:
        """The no-information state (identity of ``join``)."""
        raise NotImplementedError

    def entry_state(self) -> State:
        """State flowing into the CFG entry block."""
        raise NotImplementedError

    def join(self, states: List[State]) -> State:
        """Combine predecessor out-states at a merge point."""
        raise NotImplementedError

    def equals(self, a: State, b: State) -> bool:
        return bool(a == b)

    def transfer(self, cfg: CFG, block_id: int, state: State) -> State:
        """Out-state of ``block_id`` given its in-state."""
        raise NotImplementedError


def solve_forward(cfg: CFG, problem: ForwardProblem
                  ) -> Dict[int, Tuple[object, object]]:
    """Run ``problem`` to fixpoint; returns block id -> (in, out)."""
    order = cfg.rpo()
    position = {bid: i for i, bid in enumerate(order)}
    in_states: Dict[int, object] = {}
    out_states: Dict[int, object] = {
        bid: problem.bottom() for bid in cfg.blocks}

    from heapq import heappush, heappop
    work: List[Tuple[int, int]] = []
    queued = set()

    def push(bid: int) -> None:
        if bid in position and bid not in queued:
            queued.add(bid)
            heappush(work, (position[bid], bid))

    for bid in order:
        push(bid)

    iterations = 0
    limit = max(64, 16 * len(order) * max(1, len(order)))
    while work:
        iterations += 1
        if iterations > limit:  # defensive: monotone problems converge
            raise RuntimeError(
                f"dataflow fixpoint for {cfg.name!r} exceeded "
                f"{limit} iterations; non-monotone transfer?")
        _, bid = heappop(work)
        queued.discard(bid)
        preds = [p for p in cfg.blocks[bid].preds if p in position]
        if bid == cfg.entry:
            in_state = problem.entry_state()
        else:
            in_state = problem.join(
                [out_states[p] for p in preds]) if preds \
                else problem.bottom()
        out_state = problem.transfer(cfg, bid, in_state)
        in_states[bid] = in_state
        if not problem.equals(out_state, out_states[bid]):
            out_states[bid] = out_state
            for succ in cfg.blocks[bid].succs:
                push(succ)

    return {bid: (in_states.get(bid, problem.bottom()), out_states[bid])
            for bid in cfg.blocks if bid in position}


Element = TypeVar("Element")


class GenKillProblem(ForwardProblem[FrozenSet[Element]]):
    """May-analysis over sets: ``out = gen | (in - kill)``, union join.

    Subclasses populate ``self.gen``/``self.kill`` per block id before
    solving (both default to empty for unlisted blocks).
    """

    def __init__(self):
        self.gen: Dict[int, FrozenSet[Element]] = {}
        self.kill: Dict[int, FrozenSet[Element]] = {}

    def bottom(self) -> FrozenSet[Element]:
        return frozenset()

    def entry_state(self) -> FrozenSet[Element]:
        return frozenset()

    def join(self, states: List[FrozenSet[Element]]) -> FrozenSet[Element]:
        out: FrozenSet[Element] = frozenset()
        for state in states:
            out |= state
        return out

    def transfer(self, cfg: CFG, block_id: int,
                 state: FrozenSet[Element]) -> FrozenSet[Element]:
        gen = self.gen.get(block_id, frozenset())
        kill = self.kill.get(block_id, frozenset())
        return gen | (state - kill)


@dataclass(frozen=True)
class Definition:
    """One definition site: ``name`` bound at ``line`` in ``block``."""

    name: str
    block: int
    index: int
    line: int


def assigned_names(stmt) -> List[str]:
    """Names a statement binds (its "definition" footprint).

    Covers assignment forms, loop targets, ``with ... as``, imports,
    nested ``def``/``class`` bindings, and ``except ... as e``.
    Attribute/subscript targets define no *name* and are skipped.
    """
    node = stmt.node if isinstance(stmt, BranchStmt) else stmt
    names: List[str] = []

    def targets(t) -> None:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                targets(elt)
        elif isinstance(t, ast.Starred):
            targets(t.value)

    if isinstance(node, ast.Assign):
        for t in node.targets:
            targets(t)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets(node.target)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets(node.target)
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            names.append((alias.asname or alias.name).split(".")[0])
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.append(node.name)
    elif isinstance(node, ast.ExceptHandler):
        if node.name:
            names.append(node.name)
    elif isinstance(node, (ast.NamedExpr,)):
        targets(node.target)
    return names


class ReachingDefinitions(GenKillProblem):
    """Which definitions of each name may reach each program point."""

    def __init__(self, cfg: CFG, parameters: Iterable[str] = ()):
        super().__init__()
        self.cfg = cfg
        self.all_defs: List[Definition] = []
        by_name: Dict[str, List[Definition]] = {}

        param_defs = [Definition(name=p, block=cfg.entry, index=i, line=0)
                      for i, p in enumerate(parameters)]
        for definition in param_defs:
            self.all_defs.append(definition)
            by_name.setdefault(definition.name, []).append(definition)

        per_block: Dict[int, List[Definition]] = {}
        for bid, block in cfg.blocks.items():
            defs: List[Definition] = []
            for idx, stmt in enumerate(block.stmts):
                for name in assigned_names(stmt):
                    definition = Definition(name=name, block=bid,
                                            index=idx, line=stmt.lineno)
                    defs.append(definition)
                    self.all_defs.append(definition)
                    by_name.setdefault(name, []).append(definition)
            per_block[bid] = defs
        per_block.setdefault(cfg.entry, []).extend(param_defs)

        for bid, defs in per_block.items():
            # last definition of each name in the block survives
            last: Dict[str, Definition] = {}
            for definition in defs:
                last[definition.name] = definition
            gen = frozenset(last.values())
            killed = set()
            for name in last:
                killed |= {d for d in by_name[name] if d not in gen}
            self.gen[bid] = gen
            self.kill[bid] = frozenset(killed)

    def solve(self) -> Dict[int, Tuple[FrozenSet[Definition],
                                       FrozenSet[Definition]]]:
        return solve_forward(self.cfg, self)  # type: ignore[return-value]
