"""Resource pre-check: fit the target *before* deployment.

Runs the same accounting as
:class:`repro.deploy.resources.SwitchResourceModel` but reports
``REP2xx`` diagnostics instead of failing late inside the devloop or
the E4 packing experiment.  Errors mean the program cannot run on the
target at all; warnings flag budget pressure and pathological
range-to-ternary expansion worth fixing before campus IT reviews the
artifact.
"""

from __future__ import annotations

from typing import List, Optional

from repro.deploy.ir import ternary_cost
from repro.deploy.resources import SwitchResourceModel
from repro.verify.diagnostics import Diagnostic, diag

#: One range key costs at most 2*width - 2 rows (30 at 16 bits), so a
#: routine tree entry with two range constraints lands around 10^2;
#: crossing this threshold means several near-worst-case range keys
#: multiplied together — almost always a quantization bug.
EXPANSION_WARN_THRESHOLD = 512

#: Warn when a single program eats more than this share of the TCAM.
TCAM_PRESSURE_FRACTION = 0.8


def resource_precheck(compile_result,
                      model: Optional[SwitchResourceModel] = None
                      ) -> List[Diagnostic]:
    """Diagnose one :class:`~repro.deploy.compiler.CompileResult`."""
    model = model or SwitchResourceModel()
    program = compile_result.program
    out: List[Diagnostic] = []

    need_tcam = compile_result.tcam_bits
    need_sram = compile_result.n_entries * 64
    avail_sram = model.sram_bits_total - model.sketch_sram_bits
    table_slots = model.n_stages * model.max_tables_per_stage

    if need_tcam > model.tcam_bits_total:
        out.append(diag(
            "REP201",
            f"needs {need_tcam} TCAM bits but the target has "
            f"{model.tcam_bits_total}", program=program.name))
    elif model.tcam_bits_total and \
            need_tcam / model.tcam_bits_total > TCAM_PRESSURE_FRACTION:
        out.append(diag(
            "REP205",
            f"uses {need_tcam / model.tcam_bits_total:.0%} of the "
            f"TCAM budget on its own", program=program.name))

    if need_sram > avail_sram:
        out.append(diag(
            "REP202",
            f"needs {need_sram} SRAM bits but only {avail_sram} remain "
            f"after the {model.sketch_sram_bits}-bit sketch reservation",
            program=program.name))

    if len(program.tables) > table_slots:
        out.append(diag(
            "REP203",
            f"declares {len(program.tables)} tables but the target has "
            f"{table_slots} table slots", program=program.name))

    for table in program.tables:
        for index, entry in enumerate(table.entries):
            cost = ternary_cost(entry, table.key_widths)
            if cost >= EXPANSION_WARN_THRESHOLD:
                out.append(diag(
                    "REP204",
                    f"entry expands into {cost} TCAM rows "
                    f"(threshold {EXPANSION_WARN_THRESHOLD})",
                    program=program.name, table=table.name, entry=index))

    if not any(d.code in ("REP201", "REP202", "REP203") for d in out):
        out.append(diag(
            "REP206",
            f"target fits {model.max_concurrent(compile_result)} "
            f"concurrent copies", program=program.name))
    return out
