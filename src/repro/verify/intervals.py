"""Interval reasoning over the EXACT/RANGE/TERNARY/LPM match lattice.

The semantic passes in :mod:`repro.verify.program` reason about table
entries as axis-aligned hyperrectangles: each key field contributes an
inclusive integer interval, and an entry's matched region is their
product.  EXACT, RANGE, and LPM matches are always intervals; a
TERNARY match is an interval exactly when its mask is a prefix mask
(contiguous high bits).  Non-prefix ternary masks are reported as not
representable and the passes handle them conservatively — an entry
that cannot be represented is never flagged, and never used to cover
another entry, so every finding stays sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.deploy.ir import FieldMatch, MatchKind, TableEntry

Interval = Tuple[int, int]               # inclusive [lo, hi]
Rect = Dict[str, Interval]               # field name -> interval


def is_prefix_mask(mask: int, width: int) -> bool:
    """True when ``mask`` has the form 1...10...0 within ``width`` bits."""
    full = (1 << width) - 1
    if mask & ~full:
        return False
    inverted = (~mask) & full
    return (inverted & (inverted + 1)) == 0


def match_interval(match: FieldMatch, width: int) -> Optional[Interval]:
    """The interval a match accepts, or None if not representable."""
    full_hi = (1 << width) - 1
    if match.kind is MatchKind.EXACT:
        return (match.value, match.value)
    if match.kind is MatchKind.RANGE:
        return (match.lo, match.hi)
    if match.kind is MatchKind.LPM:
        shift = width - match.prefix_len
        base = (match.value >> shift) << shift if shift < width else 0
        return (base, base + (1 << shift) - 1)
    if match.kind is MatchKind.TERNARY:
        if not is_prefix_mask(match.mask, width):
            return None
        base = match.value & match.mask
        return (base, base | ((~match.mask) & full_hi))
    raise ValueError(f"unknown match kind {match.kind}")


def entry_rect(entry: TableEntry, key_fields: Sequence[str],
               widths: Dict[str, int]) -> Optional[Rect]:
    """An entry's matched region as a full-dimensional rectangle.

    Fields the entry does not constrain span their full width.  Returns
    None when any constrained field is not interval-representable.
    """
    rect: Rect = {}
    for name in key_fields:
        width = widths.get(name, 32)
        match = entry.matches.get(name)
        if match is None:
            rect[name] = (0, (1 << width) - 1)
            continue
        interval = match_interval(match, width)
        if interval is None:
            return None
        rect[name] = interval
    return rect


def rect_intersect(a: Rect, b: Rect) -> Optional[Rect]:
    out: Rect = {}
    for name, (alo, ahi) in a.items():
        blo, bhi = b[name]
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo > hi:
            return None
        out[name] = (lo, hi)
    return out


def rect_subtract(rect: Rect, cutter: Rect,
                  order: Sequence[str]) -> List[Rect]:
    """``rect`` minus ``cutter`` as disjoint rectangles.

    The classic sweep: walk dimensions in ``order``, peeling off the
    part of ``rect`` below and above the cutter's interval, narrowing
    to the overlap before moving to the next dimension.
    """
    overlap = rect_intersect(rect, cutter)
    if overlap is None:
        return [rect]
    pieces: List[Rect] = []
    current = dict(rect)
    for name in order:
        lo, hi = current[name]
        clo, chi = overlap[name]
        if lo < clo:
            piece = dict(current)
            piece[name] = (lo, clo - 1)
            pieces.append(piece)
        if chi < hi:
            piece = dict(current)
            piece[name] = (chi + 1, hi)
            pieces.append(piece)
        current[name] = (clo, chi)
    return pieces


def subtract_all(region: List[Rect], cutters: Sequence[Rect],
                 order: Sequence[str]) -> List[Rect]:
    """Residual of a rectangle union after removing every cutter."""
    residual = list(region)
    for cutter in cutters:
        next_residual: List[Rect] = []
        for rect in residual:
            next_residual.extend(rect_subtract(rect, cutter, order))
        residual = next_residual
        if not residual:
            break
    return residual


def interval_union_gaps(intervals: List[Interval],
                        width: int) -> List[Interval]:
    """Sub-ranges of [0, 2^width - 1] covered by none of ``intervals``."""
    full_hi = (1 << width) - 1
    if not intervals:
        return [(0, full_hi)]
    merged: List[Interval] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    gaps: List[Interval] = []
    cursor = 0
    for lo, hi in merged:
        if lo > cursor:
            gaps.append((cursor, lo - 1))
        cursor = max(cursor, hi + 1)
        if cursor > full_hi:
            break
    if cursor <= full_hi:
        gaps.append((cursor, full_hi))
    return gaps
