"""Diagnostics framework for the verification layer.

Every check in :mod:`repro.verify` — program structure, table
semantics, resource pre-checks, and the repo-wide AST lint — reports
its findings through the same vocabulary: a :class:`Diagnostic` with a
stable ``REPxxx`` code, a :class:`Severity`, a human message, and a
:class:`SourceLocation` that can point into a switch program
(program/table/entry/field) or into a source file (file/line).

Codes are allocated in blocks:

* ``REP0xx`` — structural program errors (malformed entries)
* ``REP1xx`` — semantic table findings (dead entries, overlaps)
* ``REP2xx`` — resource pre-check findings (budget misfits)
* ``REP3xx`` — repo-wide AST lint rules (single-node pattern rules)
* ``REP4xx`` — privacy taint-flow findings (dataflow over the CFG/IR)
* ``REP5xx`` — parallel-safety findings (shipped-function analysis)

Dataflow findings (REP4xx/REP5xx) carry a *flow trace*: an ordered
tuple of :class:`TraceStep` hops from the source read, through each
assignment, to the sink call, so a diagnostic is actionable without
re-running the analysis.

The registry below is the single source of truth for code -> (default
severity, title); ``repro verify`` and the docs render from it.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: code -> (default severity, one-line title).  Stable: codes are
#: append-only and never reused for a different meaning.
REP_CODES: Dict[str, Tuple[Severity, str]] = {
    # -- structural (REP0xx) --
    "REP001": (Severity.ERROR,
               "match value or mask exceeds declared key width"),
    "REP002": (Severity.ERROR,
               "range bounds invalid or exceed declared key width"),
    "REP003": (Severity.ERROR,
               "LPM prefix length outside [0, key width]"),
    "REP004": (Severity.ERROR,
               "entry references a key field the table does not declare"),
    "REP005": (Severity.ERROR,
               "entry or default references an unknown action"),
    "REP006": (Severity.ERROR,
               "action parameters missing, mistyped, or unexpected"),
    "REP007": (Severity.ERROR,
               "table key field has a missing or non-positive width"),
    # -- semantic (REP1xx) --
    "REP101": (Severity.WARNING,
               "entry is shadowed: fully covered by higher-priority "
               "entries and can never win a lookup"),
    "REP102": (Severity.WARNING,
               "ambiguous overlap between same-priority entries with "
               "different outcomes"),
    "REP103": (Severity.INFO,
               "default action is unreachable: entries cover the full "
               "key space"),
    "REP104": (Severity.INFO,
               "per-feature coverage gap: some key values match no entry"),
    "REP105": (Severity.INFO,
               "entry uses a non-interval ternary mask; excluded from "
               "semantic interval analysis"),
    "REP106": (Severity.INFO,
               "table too large for exhaustive semantic analysis"),
    # -- resources (REP2xx) --
    "REP201": (Severity.ERROR,
               "program TCAM demand exceeds the target's total budget"),
    "REP202": (Severity.ERROR,
               "program SRAM demand exceeds the target's available budget"),
    "REP203": (Severity.ERROR,
               "program needs more table slots than the target offers"),
    "REP204": (Severity.WARNING,
               "entry has pathological range-to-ternary expansion"),
    "REP205": (Severity.WARNING,
               "program consumes a large fraction of the TCAM budget"),
    "REP206": (Severity.INFO,
               "concurrent-copy headroom on the target"),
    # -- AST lint (REP3xx) --
    "REP300": (Severity.ERROR, "unparseable python module"),
    "REP301": (Severity.ERROR, "mutable default argument"),
    "REP302": (Severity.ERROR, "bare except clause"),
    "REP303": (Severity.ERROR,
               "unseeded module-level random generator call in "
               "seed-disciplined code"),
    "REP304": (Severity.ERROR,
               "wall-clock time.time() inside simulator code"),
    "REP305": (Severity.ERROR,
               "non-picklable lambda in a parallel task submission"),
    "REP306": (Severity.ERROR,
               "direct wall-clock read inside observability code; "
               "time must come through the injectable clock"),
    "REP307": (Severity.ERROR,
               "direct call to a segment-scan internal outside the "
               "planner/executor modules; go through the query planner"),
    "REP308": (Severity.ERROR,
               "direct segment-list mutation outside the store/tiering "
               "layer; go through evict_segment or the compactor"),
    "REP309": (Severity.ERROR,
               "per-packet record materialization inside the fluid "
               "engine's hot path; packets must stay columnar "
               "(PacketColumns.from_arrays) from tap to store"),
    # -- privacy taint flow (REP4xx) --
    "REP401": (Severity.ERROR,
               "raw privacy-sensitive value reaches an export/print "
               "sink without passing a repro.privacy sanitizer"),
    "REP402": (Severity.ERROR,
               "tainted value passed to a function whose parameter "
               "flows to an export/print sink (inter-procedural)"),
    "REP403": (Severity.ERROR,
               "raw privacy-sensitive value crosses a federation "
               "boundary (SiteGateway send / release envelope) without "
               "passing a repro.privacy sanitizer"),
    # -- parallel safety (REP5xx) --
    "REP501": (Severity.ERROR,
               "function shipped to worker processes mutates "
               "module-level mutable state (lost on fork/spawn)"),
    "REP502": (Severity.ERROR,
               "closure or nested function shipped to worker "
               "processes; closures cannot be pickled"),
    "REP503": (Severity.WARNING,
               "import-scope RNG/lock object used inside a function "
               "shipped to worker processes"),
}


@dataclass(frozen=True)
class TraceStep:
    """One hop in a dataflow trace: source read, assignment, or sink."""

    file: str
    line: int
    note: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.note}"

    def to_json(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points.

    Program diagnostics fill ``program``/``table``/``entry``/``field``;
    lint diagnostics fill ``file``/``line`` (and ``symbol``, the
    enclosing function's qualified name, which anchors baseline
    fingerprints so they survive unrelated line drift).  All parts are
    optional so one type serves both worlds.
    """

    program: Optional[str] = None
    table: Optional[str] = None
    entry: Optional[int] = None
    field: Optional[str] = None
    file: Optional[str] = None
    line: Optional[int] = None
    symbol: Optional[str] = None

    def render(self) -> str:
        if self.file is not None:
            if self.line is not None:
                return f"{self.file}:{self.line}"
            return self.file
        parts = []
        if self.program is not None:
            parts.append(self.program)
        if self.table is not None:
            parts.append(self.table)
        where = "/".join(parts) if parts else "<program>"
        if self.entry is not None:
            where += f"[{self.entry}]"
        if self.field is not None:
            where += f".{self.field}"
        return where

    def to_json(self) -> Dict[str, object]:
        return {k: v for k, v in self.__dict__.items() if v is not None}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one verification pass."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    #: dataflow findings attach the full source->sink hop sequence.
    trace: Tuple[TraceStep, ...] = ()

    @property
    def title(self) -> str:
        return REP_CODES[self.code][1]

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselines: ``code:file:symbol``.

        Deliberately excludes line numbers (and therefore the trace)
        so a committed baseline entry survives edits elsewhere in the
        file; all same-code findings in one function share one entry.
        """
        return (f"{self.code}:{self.location.file or '<none>'}:"
                f"{self.location.symbol or '<module>'}")

    def render(self) -> str:
        head = (f"{self.severity.value:7s} {self.code} "
                f"{self.location.render()}: {self.message}")
        if not self.trace:
            return head
        steps = "\n".join(f"      {i + 1}. {step.render()}"
                          for i, step in enumerate(self.trace))
        return f"{head}\n    flow:\n{steps}"

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_json(),
        }
        if self.trace:
            record["trace"] = [step.to_json() for step in self.trace]
        return record


def diag(code: str, message: str, *,
         severity: Optional[Severity] = None,
         program: Optional[str] = None, table: Optional[str] = None,
         entry: Optional[int] = None, field: Optional[str] = None,
         file: Optional[str] = None,
         line: Optional[int] = None,
         symbol: Optional[str] = None,
         trace: Tuple[TraceStep, ...] = ()) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the registry."""
    if code not in REP_CODES:
        raise KeyError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=severity or REP_CODES[code][0],
        message=message,
        location=SourceLocation(program=program, table=table, entry=entry,
                                field=field, file=file, line=line,
                                symbol=symbol),
        trace=tuple(trace),
    )


@dataclass
class DiagnosticReport:
    """Accumulated findings, with text and JSON reporters."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: findings silenced by inline ``# rep: ignore[...]`` comments.
    suppressed: int = 0
    #: findings matched against the committed baseline file.
    baselined: int = 0

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when nothing error-level was found."""
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    # -- reporters -----------------------------------------------------------

    def render_text(self, min_severity: Severity = Severity.INFO) -> str:
        lines = []
        shown = [d for d in
                 sorted(self.diagnostics, key=lambda d: d.severity.rank)
                 if d.severity.rank <= min_severity.rank]
        for diagnostic in shown:
            lines.append(diagnostic.render())
        counts = self.counts()
        subject = f"{self.subject}: " if self.subject else ""
        tail = ""
        if self.suppressed or self.baselined:
            tail = (f" ({self.suppressed} suppressed inline, "
                    f"{self.baselined} baselined)")
        lines.append(f"{subject}{counts['error']} error(s), "
                     f"{counts['warning']} warning(s), "
                     f"{counts['info']} info{tail}")
        return "\n".join(lines)

    # `render` aliases `render_text` so report-producing commands can
    # share the CLI `_emit_report` helper with chaos/obs reports.
    def render(self) -> str:
        return self.render_text()

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro.diagnostics/v1",
            "subject": self.subject,
            "ok": self.ok,
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)


class ProgramVerificationError(Exception):
    """Raised when a program with error-level diagnostics is about to
    cross a trust boundary (deployment, switch load)."""

    def __init__(self, report: DiagnosticReport):
        self.report = report
        codes = ", ".join(sorted({d.code for d in report.errors}))
        super().__init__(
            f"verification failed for {report.subject or 'program'}: "
            f"{len(report.errors)} error(s) [{codes}]"
        )
