"""REP4xx privacy taint analysis over the shared CFG/dataflow IR.

The flow property ROADMAP item 3 needs stated statically: *no raw
packet/flow identifier leaves the platform except through*
:mod:`repro.privacy`.  Concretely:

* **sources** — reads of configured privacy-sensitive attributes
  (``record.src_ip``, ``pkt.dst_ip``, ``record.payload``) and calls
  matching configured source patterns;
* **sinks** — calls matching configured export patterns: ``print``,
  ``*.write`` / ``*.write_text`` / ``*.writelines``, ``json.dump``,
  the obs JSONL exporters — anything file- or wire-bound;
* **sanitizers** — calls matching configured patterns for the
  :mod:`repro.privacy` APIs (``*.anonymize``, ``*.anonymize_ip``,
  ``*.scrub*``, ...) plus declassifying aggregations (``len``,
  ``sum``): their result is clean no matter the arguments.

Per function, a forward dataflow over the CFG tracks which local names
may hold source-derived values; every hop (source read, assignment,
call propagation) is recorded so a finding carries the complete
source->sink trace.  Comparisons declassify (a boolean reveals one
bit, which the k-anonymity layer governs, not taint analysis).

Across functions, a module-granular call graph propagates
:class:`FunctionSummary` facts to a fixpoint: which parameters flow to
a sink inside the callee (*taint-in*), which parameters flow to the
return value, and whether the return value is source-tainted
independent of the arguments (*taint-out*).  Call sites then report
**REP402** when a tainted value is passed to a taint-in parameter, and
propagate taint through taint-out results — so a leak spread across
helper functions in different modules is still one diagnostic with one
trace.

Only direct calls to module-level functions resolve (methods and
higher-order uses stay conservative: unknown calls propagate argument
taint into their result but are never sinks), which keeps the analysis
fast and the false-positive surface small.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, \
    Set, Tuple

from repro.verify.cfg import CFG, BranchStmt, build_cfg
from repro.verify.dataflow import ForwardProblem, solve_forward
from repro.verify.diagnostics import Diagnostic, TraceStep, diag

__all__ = [
    "TaintRules",
    "Taint",
    "FunctionSummary",
    "ProjectIndex",
    "TaintAnalysis",
    "dotted_name",
]

#: hop-trace cap: long enough for any honest pipeline, short enough to
#: bound the lattice (termination of the per-function fixpoint).
MAX_HOPS = 16

#: summary-propagation rounds across the call graph; module-granular
#: summaries stabilize in 2-3 rounds on this codebase.
MAX_SUMMARY_ROUNDS = 5


def dotted_name(node) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(parts[::-1])
    return None


def _match_any(name: Optional[str], patterns: Sequence[str]) -> bool:
    if not name:
        return False
    return any(fnmatchcase(name, pattern) for pattern in patterns)


@dataclass
class TaintRules:
    """Compiled source/sink/sanitizer sets (from ``[tool.repro.lint]``)."""

    source_fields: Set[str] = field(
        default_factory=lambda: {"src_ip", "dst_ip", "payload"})
    source_calls: List[str] = field(default_factory=list)
    sinks: List[str] = field(default_factory=lambda: [
        "print", "*.write", "*.write_text", "*.writelines",
        "json.dump", "write_jsonl", "append_jsonl",
    ])
    sanitizers: List[str] = field(default_factory=lambda: [
        "*.anonymize", "*.anonymize_ip", "*.shared_prefix_len",
        "*.scrub*", "*.hexdigest", "hash", "len", "sum", "bool",
    ])
    #: federation boundary APIs (gateway sends, release envelope
    #: constructors): a tainted argument here is REP403, not REP401 —
    #: the value is about to leave the site, not just the process.
    boundary_sinks: List[str] = field(default_factory=lambda: [
        "*.send_count", "*.send_histogram", "*.send_heavy_hitters",
        "*.send_schema", "*.send_examples",
        "CountRelease", "HistogramRelease", "HeavyHittersRelease",
        "SchemaRelease", "ExamplesRelease",
    ])

    def is_sink(self, name: Optional[str]) -> bool:
        return _match_any(name, self.sinks)

    def is_boundary_sink(self, name: Optional[str]) -> bool:
        return _match_any(name, self.boundary_sinks)

    def is_sanitizer(self, name: Optional[str]) -> bool:
        return _match_any(name, self.sanitizers)

    def is_source_call(self, name: Optional[str]) -> bool:
        return _match_any(name, self.source_calls)


@dataclass(frozen=True)
class Taint:
    """One tainted fact attached to a value.

    ``kind`` is ``"source"`` (a concrete privacy-sensitive read, with
    its origin site) or ``"param"`` (symbolic: "parameter *i* of the
    function under analysis", used to compute summaries).  ``path``
    holds the (line, note) hops walked since the origin; joins keep
    the shortest path per origin so traces stay minimal and the
    lattice stays finite.
    """

    kind: str
    origin: str
    file: str
    line: int
    param: int = -1
    path: Tuple[Tuple[int, str], ...] = ()

    @property
    def key(self) -> Tuple:
        return (self.kind, self.origin, self.file, self.line, self.param)

    def hop(self, line: int, note: str) -> "Taint":
        if len(self.path) >= MAX_HOPS:
            return self
        if self.path and self.path[-1] == (line, note):
            return self
        return replace(self, path=self.path + ((line, note),))

    def trace(self, sink_file: str, sink_line: int,
              sink_note: str) -> Tuple[TraceStep, ...]:
        steps = [TraceStep(self.file, self.line, self.origin)]
        for line, note in self.path:
            steps.append(TraceStep(self.file, line, note))
        steps.append(TraceStep(sink_file, sink_line, sink_note))
        return tuple(steps)


#: a value's taint: origin key -> Taint (shortest path per origin).
TaintSet = Dict[Tuple, Taint]


def _merge(into: TaintSet, other: TaintSet) -> TaintSet:
    for key, taint in other.items():
        existing = into.get(key)
        if existing is None or len(taint.path) < len(existing.path):
            into[key] = taint
    return into


def _hop_all(taints: TaintSet, line: int, note: str) -> TaintSet:
    return {key: t.hop(line, note) for key, t in taints.items()}


@dataclass
class FunctionSummary:
    """Interprocedural facts about one module-level function."""

    #: source taints that may flow to the return value (taint-out).
    returns_source: Tuple[Taint, ...] = ()
    #: parameter indices that may flow to the return value.
    param_to_return: FrozenSet[int] = frozenset()
    #: parameter index -> (sink line, sink name) reached inside.
    param_to_sink: Dict[int, Tuple[int, str]] = field(default_factory=dict)

    def signature(self) -> Tuple:
        return (tuple(sorted(t.key for t in self.returns_source)),
                tuple(sorted(self.param_to_return)),
                tuple(sorted(self.param_to_sink.items())))


@dataclass
class FunctionInfo:
    """One analyzable function body."""

    rel_path: str
    qualname: str
    node: ast.stmt  # FunctionDef | AsyncFunctionDef
    top_level: bool
    _cfg: Optional[CFG] = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node, name=self.qualname)
        return self._cfg

    @property
    def params(self) -> List[str]:
        a = self.node.args
        names = [p.arg for p in getattr(a, "posonlyargs", [])]
        names += [p.arg for p in a.args]
        if a.vararg:
            names.append(a.vararg.arg)
        names += [p.arg for p in a.kwonlyargs]
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names


class ProjectIndex:
    """Module-granular symbol index + call-graph resolution.

    Built once per engine run from the parsed-module cache; resolves
    ``name`` / ``alias.name`` call chains to project functions through
    ``import`` / ``from ... import`` bindings, following re-exports
    (e.g. a package ``__init__`` importing from a submodule) to a
    bounded depth.
    """

    def __init__(self, modules: Dict[str, ast.Module],
                 package: str = "repro"):
        self.package = package
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.all_functions: List[FunctionInfo] = []
        self.module_trees = modules
        #: rel_path -> local name -> ("fn", rel, name) | ("mod", rel)
        self._imports: Dict[str, Dict[str, Tuple]] = {}
        self._module_by_qual: Dict[str, str] = {}
        for rel in modules:
            qual = self._qualname_for(rel)
            self._module_by_qual[qual] = rel
        for rel, tree in modules.items():
            self._index_module(rel, tree)

    def _qualname_for(self, rel_path: str) -> str:
        stem = rel_path[:-3] if rel_path.endswith(".py") else rel_path
        if stem.endswith("/__init__"):
            stem = stem[: -len("/__init__")]
        if stem == "__init__":
            return self.package
        return f"{self.package}." + stem.replace("/", ".")

    def _rel_for_module(self, module_qual: str) -> Optional[str]:
        return self._module_by_qual.get(module_qual)

    def _index_module(self, rel: str, tree: ast.Module) -> None:
        imports: Dict[str, Tuple] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(rel, node.name, node, top_level=True)
                self.functions[(rel, node.name)] = info
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._rel_for_module(alias.name)
                    if target is not None:
                        imports[alias.asname
                                or alias.name.split(".")[0]] = \
                            ("mod", target)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                target = self._rel_for_module(node.module)
                for alias in node.names:
                    if target is not None:
                        imports[alias.asname or alias.name] = \
                            ("fn", target, alias.name)
                    else:
                        submodule = self._rel_for_module(
                            f"{node.module}.{alias.name}")
                        if submodule is not None:
                            imports[alias.asname or alias.name] = \
                                ("mod", submodule)
        # function-local imports (``from repro.x import f`` inside a
        # body) resolve too; module-level bindings take precedence.
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module is None or node.level:
                continue
            target = self._rel_for_module(node.module)
            if target is None:
                continue
            for alias in node.names:
                imports.setdefault(alias.asname or alias.name,
                                   ("fn", target, alias.name))
        self._imports[rel] = imports

        # every function body (methods, nested defs) is analyzable
        def walk(node, prefix: str, top: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    if top and not prefix:
                        info = self.functions[(rel, child.name)]
                    else:
                        info = FunctionInfo(rel, qualname, child,
                                            top_level=False)
                    self.all_functions.append(info)
                    walk(child, f"{qualname}.", False)
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.", False)
                else:
                    walk(child, prefix, top)

        walk(tree, "", True)

    def resolve(self, rel: str, name: str,
                depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve a dotted call chain in ``rel`` to a project function."""
        if depth > 5:
            return None
        parts = name.split(".")
        imports = self._imports.get(rel, {})
        if len(parts) == 1:
            if (rel, parts[0]) in self.functions:
                return self.functions[(rel, parts[0])]
            binding = imports.get(parts[0])
            if binding and binding[0] == "fn":
                _, target_rel, target_name = binding
                return self.resolve(target_rel, target_name, depth + 1)
            return None
        if len(parts) == 2:
            binding = imports.get(parts[0])
            if binding and binding[0] == "mod":
                return self.resolve(binding[1], parts[1], depth + 1)
        return None


class _TaintState(ForwardProblem):
    """Forward problem: name -> TaintSet, union join, strong updates."""

    def __init__(self, analysis: "_FunctionAnalysis"):
        self.analysis = analysis

    def bottom(self) -> Dict[str, TaintSet]:
        return {}

    def entry_state(self) -> Dict[str, TaintSet]:
        state: Dict[str, TaintSet] = {}
        for i, param in enumerate(self.analysis.info.params):
            taint = Taint(kind="param", origin=f"parameter {param!r}",
                          file=self.analysis.info.rel_path, line=0,
                          param=i)
            state[param] = {taint.key: taint}
        return state

    def join(self, states: List[Dict[str, TaintSet]]
             ) -> Dict[str, TaintSet]:
        out: Dict[str, TaintSet] = {}
        for state in states:
            for name, taints in state.items():
                _merge(out.setdefault(name, {}), taints)
        return out

    def equals(self, a, b) -> bool:
        if a.keys() != b.keys():
            return False
        for name in a:
            if a[name].keys() != b[name].keys():
                return False
            for key in a[name]:
                if a[name][key].path != b[name][key].path:
                    return False
        return True

    def transfer(self, cfg: CFG, block_id: int,
                 state: Dict[str, TaintSet]) -> Dict[str, TaintSet]:
        local = {name: dict(taints) for name, taints in state.items()}
        for stmt in cfg.blocks[block_id].stmts:
            self.analysis.exec_stmt(stmt, local, report=False)
        return local


@dataclass
class _Finding:
    code: str
    message: str
    line: int
    trace: Tuple[TraceStep, ...]


class _FunctionAnalysis:
    """Analyze one function: fixpoint, then a reporting scan."""

    def __init__(self, info: FunctionInfo, rules: TaintRules,
                 index: ProjectIndex,
                 summaries: Dict[Tuple[str, str], FunctionSummary]):
        self.info = info
        self.rules = rules
        self.index = index
        self.summaries = summaries
        self.summary = FunctionSummary()
        self.findings: List[_Finding] = []
        self._param_to_sink: Dict[int, Tuple[int, str]] = {}
        self._param_to_return: Set[int] = set()
        self._returns_source: Dict[Tuple, Taint] = {}

    def run(self, report: bool) -> FunctionSummary:
        cfg = self.info.cfg
        problem = _TaintState(self)
        states = solve_forward(cfg, problem)
        for bid in cfg.rpo():
            in_state, _ = states[bid]
            local = {name: dict(taints)
                     for name, taints in in_state.items()}
            for stmt in cfg.blocks[bid].stmts:
                self.exec_stmt(stmt, local, report=report)
        self.summary = FunctionSummary(
            returns_source=tuple(self._returns_source.values()),
            param_to_return=frozenset(self._param_to_return),
            param_to_sink=dict(self._param_to_sink),
        )
        return self.summary

    # -- statement execution -------------------------------------------------

    def exec_stmt(self, stmt, state: Dict[str, TaintSet],
                  report: bool) -> None:
        node = stmt.node if isinstance(stmt, BranchStmt) else stmt
        if isinstance(stmt, BranchStmt):
            if isinstance(node, (ast.If, ast.While)):
                self.eval(node.test, state, report)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                taints = self.eval(node.iter, state, report)
                self._bind_target(node.target, _hop_all(
                    taints, node.lineno, "iterated into loop target"),
                    state)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    taints = self.eval(item.context_expr, state, report)
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars, _hop_all(
                            taints, node.lineno, "bound by with"), state)
            elif isinstance(node, ast.ExceptHandler):
                if node.name:
                    state[node.name] = {}
            elif isinstance(node, ast.Match):
                self.eval(node.subject, state, report)
            return
        if isinstance(node, ast.Assign):
            taints = self.eval(node.value, state, report)
            for target in node.targets:
                self._assign_target(target, taints, state, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                taints = self.eval(node.value, state, report)
                self._assign_target(node.target, taints, state,
                                    node.lineno)
        elif isinstance(node, ast.AugAssign):
            taints = self.eval(node.value, state, report)
            if isinstance(node.target, ast.Name):
                merged = dict(state.get(node.target.id, {}))
                _merge(merged, _hop_all(
                    taints, node.lineno,
                    f"augmented into {node.target.id!r}"))
                state[node.target.id] = merged
            else:
                self._assign_target(node.target, taints, state,
                                    node.lineno)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                taints = self.eval(node.value, state, report)
                for taint in taints.values():
                    if taint.kind == "source":
                        hopped = taint.hop(node.lineno, "returned")
                        key = taint.key
                        prev = self._returns_source.get(key)
                        if prev is None or \
                                len(hopped.path) < len(prev.path):
                            self._returns_source[key] = hopped
                    elif taint.kind == "param":
                        self._param_to_return.add(taint.param)
        elif isinstance(node, ast.Expr):
            self.eval(node.value, state, report)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.eval(node.exc, state, report)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def binds a callable; if its summary says the
            # return value is source-tainted, a *reference* to it
            # escaping into an unknown call (``key_fn=extract_ip``)
            # carries that taint along.
            qualname = f"{self.info.qualname}.{node.name}"
            summary = self.summaries.get((self.info.rel_path, qualname))
            state[node.name] = self._reference_taints(
                node.name, summary, node.lineno)
        elif isinstance(node, ast.ClassDef):
            state[node.name] = {}
        elif isinstance(node, ast.Assert):
            self.eval(node.test, state, report)

    def _assign_target(self, target, taints: TaintSet,
                       state: Dict[str, TaintSet], line: int) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = _hop_all(
                taints, line, f"assigned to {target.id!r}")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, taints, state, line)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taints, state, line)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # weak update: storing a tainted value into a container or
            # object taints the container name itself.
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and taints:
                merged = dict(state.get(base.id, {}))
                _merge(merged, _hop_all(
                    taints, line, f"stored into {base.id!r}"))
                state[base.id] = merged

    def _bind_target(self, target, taints: TaintSet,
                     state: Dict[str, TaintSet]) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = dict(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taints, state)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taints, state)

    # -- expression evaluation -----------------------------------------------

    def eval(self, node, state: Dict[str, TaintSet],
             report: bool) -> TaintSet:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return {}
        if isinstance(node, ast.Name):
            if node.id in state:
                return dict(state.get(node.id, {}))
            return self._function_reference(node.id, node.lineno)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, state, report)
            out: TaintSet = dict(
                _hop_all(base, node.lineno,
                         f"via attribute .{node.attr}"))
            if node.attr in self.rules.source_fields:
                expr = dotted_name(node) or f"<expr>.{node.attr}"
                taint = Taint(kind="source",
                              origin=f"read of {expr} "
                                     f"(privacy-sensitive field)",
                              file=self.info.rel_path, line=node.lineno)
                out[taint.key] = taint
            return out
        if isinstance(node, ast.Call):
            return self._eval_call(node, state, report)
        if isinstance(node, ast.Compare):
            # comparisons declassify: a boolean is not the raw value
            self.eval(node.left, state, report)
            for comparator in node.comparators:
                self.eval(comparator, state, report)
            return {}
        if isinstance(node, ast.NamedExpr):
            taints = self.eval(node.value, state, report)
            self._assign_target(node.target, taints, state, node.lineno)
            return dict(taints)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            out: TaintSet = {}
            inner = {name: dict(t) for name, t in state.items()}
            for gen in node.generators:
                taints = self.eval(gen.iter, inner, report)
                self._bind_target(gen.target, _hop_all(
                    taints, node.lineno, "comprehension target"), inner)
            if isinstance(node, ast.DictComp):
                _merge(out, self.eval(node.key, inner, report))
                _merge(out, self.eval(node.value, inner, report))
            else:
                _merge(out, self.eval(node.elt, inner, report))
            return out
        # generic: union of child expression taints
        out = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _merge(out, self.eval(child, state, report))
        return out

    def _function_reference(self, name: str, line: int) -> TaintSet:
        """Taint carried by a bare reference to a project function."""
        info = self.index.resolve(self.info.rel_path, name)
        if info is None:
            return {}
        summary = self.summaries.get((info.rel_path, info.qualname))
        return self._reference_taints(name, summary, line)

    def _reference_taints(self, name: str,
                          summary: Optional[FunctionSummary],
                          line: int) -> TaintSet:
        out: TaintSet = {}
        if summary is None:
            return out
        for taint in summary.returns_source:
            carried = Taint(
                kind="source",
                origin=f"{taint.origin}, escaping via reference to "
                       f"{name}()",
                file=self.info.rel_path, line=line)
            out[carried.key] = carried
        return out

    def _call_args(self, node: ast.Call, state, report
                   ) -> List[Tuple[Optional[str], TaintSet]]:
        evaluated: List[Tuple[Optional[str], TaintSet]] = []
        for arg in node.args:
            evaluated.append((None, self.eval(arg, state, report)))
        for keyword in node.keywords:
            evaluated.append((keyword.arg,
                              self.eval(keyword.value, state, report)))
        return evaluated

    def _eval_call(self, node: ast.Call, state, report) -> TaintSet:
        name = dotted_name(node.func)
        args = self._call_args(node, state, report)
        self._taint_receiver(node, name, args, state)

        if self.rules.is_sanitizer(name):
            return {}

        if self.rules.is_boundary_sink(name):
            self._check_sink(node, name or "<call>", args, report,
                             code="REP403",
                             verb="crosses the federation boundary at")
            return {}

        if self.rules.is_sink(name):
            self._check_sink(node, name or "<call>", args, report)
            return {}

        result: TaintSet = {}
        if self.rules.is_source_call(name):
            taint = Taint(kind="source",
                          origin=f"call of privacy source {name}()",
                          file=self.info.rel_path, line=node.lineno)
            result[taint.key] = taint

        callee = self.index.resolve(self.info.rel_path, name) \
            if name else None
        if callee is not None:
            summary = self.summaries.get(
                (callee.rel_path, callee.qualname))
            if summary is not None:
                self._apply_summary(node, name, callee, summary, args,
                                    result, report)
                return result

        # unknown call: conservatively propagate arguments + receiver
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, state, report)
            _merge(result, _hop_all(
                receiver, node.lineno,
                f"through method .{node.func.attr}()"))
        for _, taints in args:
            _merge(result, _hop_all(
                taints, node.lineno,
                f"through call {name or '<call>'}()"))
        return result

    def _taint_receiver(self, node: ast.Call, name: Optional[str],
                        args, state: Dict[str, TaintSet]) -> None:
        """Container mutation: ``acc.append(tainted)`` taints ``acc``.

        Applied to any method call on a plain name whose arguments are
        tainted (weak update) — sanitizers excepted, since
        ``pan.anonymize(ip)`` must not taint ``pan``.
        """
        if not isinstance(node.func, ast.Attribute):
            return
        base = node.func.value
        if not isinstance(base, ast.Name):
            return
        if self.rules.is_sanitizer(name) or self.rules.is_sink(name) \
                or self.rules.is_boundary_sink(name):
            return
        incoming: TaintSet = {}
        for _, taints in args:
            _merge(incoming, taints)
        if not incoming:
            return
        merged = dict(state.get(base.id, {}))
        _merge(merged, _hop_all(
            incoming, node.lineno,
            f"stored into {base.id!r} via .{node.func.attr}()"))
        state[base.id] = merged

    def _param_index(self, callee: FunctionInfo, position: int,
                     keyword: Optional[str]) -> Optional[int]:
        params = callee.params
        if keyword is not None:
            return params.index(keyword) if keyword in params else None
        return position if position < len(params) else None

    def _apply_summary(self, node: ast.Call, name: Optional[str],
                       callee: FunctionInfo, summary: FunctionSummary,
                       args, result: TaintSet, report: bool) -> None:
        position = -1
        for keyword, taints in args:
            if keyword is None:
                position += 1
            if not taints:
                continue
            index = self._param_index(callee, position, keyword)
            if index is None:
                # unmapped argument: stay conservative
                _merge(result, _hop_all(
                    taints, node.lineno, f"through call {name}()"))
                continue
            if index in summary.param_to_sink:
                sink_line, sink_name = summary.param_to_sink[index]
                for taint in taints.values():
                    if taint.kind == "source":
                        if report:
                            where = (f"{callee.rel_path}:{sink_line}")
                            self.findings.append(_Finding(
                                code="REP402",
                                message=(
                                    f"tainted value passed to "
                                    f"{name}() whose parameter "
                                    f"{callee.params[index]!r} reaches "
                                    f"sink {sink_name}() at {where} "
                                    f"without a repro.privacy "
                                    f"sanitizer"),
                                line=node.lineno,
                                trace=taint.trace(
                                    self.info.rel_path, node.lineno,
                                    f"passed to {name}() -> sink "
                                    f"{sink_name}() at {where}"),
                            ))
                    else:
                        self._note_param_sink(taint.param,
                                              node.lineno,
                                              f"{name}->{sink_name}")
            if index in summary.param_to_return:
                _merge(result, _hop_all(
                    taints, node.lineno,
                    f"through {name}() (argument flows to return)"))
        for taint in summary.returns_source:
            carried = Taint(
                kind="source",
                origin=f"{taint.origin} inside {name}() "
                       f"[{callee.rel_path}:{taint.line}]",
                file=self.info.rel_path, line=node.lineno,
                path=((node.lineno, f"returned by {name}()"),))
            result[carried.key] = carried

    def _note_param_sink(self, param: int, line: int,
                         sink_name: str) -> None:
        if param >= 0 and param not in self._param_to_sink:
            self._param_to_sink[param] = (line, sink_name)

    def _check_sink(self, node: ast.Call, name: str, args,
                    report: bool, code: str = "REP401",
                    verb: str = "reaches sink") -> None:
        for _, taints in args:
            for taint in taints.values():
                if taint.kind == "source":
                    if report:
                        self.findings.append(_Finding(
                            code=code,
                            message=(f"{taint.origin} {verb} "
                                     f"{name}() without a "
                                     f"repro.privacy sanitizer"),
                            line=node.lineno,
                            trace=taint.trace(
                                self.info.rel_path, node.lineno,
                                f"{verb} {name}()"),
                        ))
                else:
                    self._note_param_sink(taint.param, node.lineno,
                                          name)


class TaintAnalysis:
    """Whole-project REP4xx pass over the parsed-module cache."""

    def __init__(self, modules: Dict[str, ast.Module],
                 rules: Optional[TaintRules] = None,
                 index: Optional[ProjectIndex] = None,
                 report_scope: Optional[Iterable[str]] = None,
                 exempt_scope: Iterable[str] = ()):
        self.modules = modules
        self.rules = rules or TaintRules()
        self.index = index or ProjectIndex(modules)
        self.report_scope = list(report_scope) if report_scope else None
        self.exempt_scope = list(exempt_scope)
        self.summaries: Dict[Tuple[str, str], FunctionSummary] = {}

    def _in_scope(self, rel: str) -> bool:
        def matches(prefixes: List[str]) -> bool:
            return any(rel == p or rel.startswith(p.rstrip("/") + "/")
                       for p in prefixes)
        if matches(self.exempt_scope):
            return False
        if self.report_scope is None:
            return True
        return matches(self.report_scope)

    def run(self) -> List[Diagnostic]:
        # phase 1: propagate summaries across the call graph
        for _ in range(MAX_SUMMARY_ROUNDS):
            changed = False
            for info in self.index.all_functions:
                analysis = _FunctionAnalysis(info, self.rules,
                                             self.index, self.summaries)
                summary = analysis.run(report=False)
                key = (info.rel_path, info.qualname)
                previous = self.summaries.get(key)
                if previous is None or \
                        previous.signature() != summary.signature():
                    self.summaries[key] = summary
                    changed = True
            if not changed:
                break

        # phase 2: report with stable summaries
        findings: List[Diagnostic] = []
        for info in self.index.all_functions:
            if not self._in_scope(info.rel_path):
                continue
            analysis = _FunctionAnalysis(info, self.rules, self.index,
                                         self.summaries)
            analysis.run(report=True)
            seen: Set[Tuple] = set()
            for found in analysis.findings:
                identity = (found.code, found.line, found.message)
                if identity in seen:
                    continue
                seen.add(identity)
                findings.append(diag(
                    found.code, found.message, file=info.rel_path,
                    line=found.line, symbol=info.qualname,
                    trace=found.trace))
        findings.sort(key=lambda d: (d.location.file or "",
                                     d.location.line or 0, d.code))
        return findings
